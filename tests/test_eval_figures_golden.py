"""Golden-file regression test for the figure drivers.

Pins the exact numbers the headline figure functions produce on a fixed
3-workload mini-roster.  The simulator is deterministic, so any diff here
means the *semantics* changed — a new pass, an energy-model edit, a
machine-loop change — and the golden file documents exactly which figures
moved and by how much.

Regenerate intentionally with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_eval_figures_golden.py

and review the JSON diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval import figures

GOLDEN = Path(__file__).parent / "golden" / "figures_mini.json"
MINI = ("crc32", "sha", "bitcount")


def _norm(value):
    """JSON-comparable form: tuples → lists, floats rounded to 9 dp."""
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {str(k): _norm(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _snapshot() -> dict:
    return _norm(
        {
            "fig08_energy": figures.fig08_energy(MINI),
            "fig12_nospec": figures.fig12_nospec(MINI),
            "fig14_table2_aggressiveness": figures.fig14_table2_aggressiveness(
                MINI
            ),
            "fig15_sensitivity": figures.fig15_sensitivity(MINI),
            "fig17_dts": figures.fig17_dts(MINI),
            "fig18_thumb": figures.fig18_thumb(MINI),
        }
    )


@pytest.mark.slow
def test_figures_match_golden():
    snapshot = _snapshot()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    assert GOLDEN.is_file(), (
        "golden file missing — regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN.read_text())
    assert snapshot == golden, (
        "figure outputs drifted from tests/golden/figures_mini.json; if the "
        "change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and "
        "commit the diff"
    )


@pytest.mark.slow
def test_golden_figures_agree_between_engines(monkeypatch):
    """The pinned numbers must not depend on which Machine engine ran."""
    from repro.eval import harness

    monkeypatch.setenv("REPRO_MACHINE_LEGACY", "1")
    harness.clear_caches()
    try:
        legacy = _snapshot()
    finally:
        harness.clear_caches()
    monkeypatch.delenv("REPRO_MACHINE_LEGACY")
    fast = _snapshot()
    assert legacy == fast
