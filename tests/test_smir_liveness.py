"""SIR/SMIR liveness rules (Eqs. 1–2) at both IR and machine level."""

from repro.core import CompilerConfig, compile_binary, set_global_inputs
from repro.frontend import compile_source
from repro.ir.liveness import compute_liveness
from repro.passes import prepare_cfg_module, squeeze_module
from repro.profiler import BitwidthProfile, compute_squeeze_plan
from repro.sir import regions_of

SOURCE = """
u32 keep; u32 sink;
void main() {
    u32 anchor = keep;          // live across the speculative region
    u32 x = 0;
    do { x += 1; } while (x < 200);
    sink = anchor + x;
    out(anchor + x);
}
"""


def _squeezed():
    module = compile_source(SOURCE)
    prepare_cfg_module(module)
    set_global_inputs(module, {"keep": 7})
    profile = BitwidthProfile.collect(module, "main")
    plans = {
        n: compute_squeeze_plan(f, profile, "avg")
        for n, f in module.functions.items()
    }
    squeeze_module(module, plans)
    return module


def test_handler_inputs_live_through_region_eq2():
    """Values a handler extends must be live across the whole region under
    the SIR liveness mode (Eq. 2), even if the region body never reads
    them."""
    module = _squeezed()
    func = module.function("main")
    info = compute_liveness(func, sir=True)
    for region in regions_of(func):
        if region.handler is None:
            continue
        handler_uses = {
            op
            for inst in region.handler.instructions
            for op in inst.operands
            if hasattr(op, "parent")
        }
        for block in region.blocks:
            for value in handler_uses:
                if value.parent in region.blocks:
                    continue  # region-internal (none, per Theorem 3.1)
                assert value in info.live_out[block] or value in info.live_in[
                    block
                ], (value.name, block.name)


def test_machine_preserves_cross_region_value():
    """End-to-end: `anchor` survives the speculative loop and the
    misspeculation path at machine level (the Eq. 2 allocation rule)."""
    for config in (CompilerConfig.bitspec("avg"), CompilerConfig.bitspec("min")):
        binary = compile_binary(SOURCE, config, profile_inputs={"keep": 7})
        for keep in (7, 123456):
            result = binary.run({"keep": keep})
            assert result.output == [(keep + 200) & 0xFFFFFFFF], config.name


def test_misspec_with_memory_state():
    """Stores before a misspeculation re-execute idempotently (Eq. 4)."""
    source = """
    u32 buf[8]; u32 bound; u32 sink;
    void main() {
        u32 x = 0;
        for (u32 i = 0; i < 8; i += 1) {
            x += bound;          // misspeculates when bound is large
            buf[i] = x;          // store in a speculative function body
        }
        u32 s = 0;
        for (u32 i = 0; i < 8; i += 1) { s += buf[i]; }
        sink = s;
        out(s);
    }
    """
    binary = compile_binary(
        source, CompilerConfig.bitspec("max"), profile_inputs={"bound": 3}
    )
    for bound in (3, 1000):
        result = binary.run({"bound": bound})
        expected = sum(bound * (i + 1) for i in range(8)) & 0xFFFFFFFF
        assert result.output == [expected], bound
