"""Harness internals and the report generator."""

import pytest

from repro.core import CompilerConfig
from repro.eval.harness import (
    BENCHMARKS,
    _config_key,
    clear_caches,
    get_binary,
    run,
)


def test_benchmark_roster_matches_registry():
    from repro.workloads import workload_names

    assert sorted(BENCHMARKS) == workload_names()


def test_config_key_distinguishes_settings():
    a = _config_key(CompilerConfig.bitspec("max"))
    b = _config_key(CompilerConfig.bitspec("min"))
    c = _config_key(CompilerConfig.bitspec("max", bitmask_elision=False))
    assert a != b and a != c


def test_config_key_ignores_name():
    a = _config_key(CompilerConfig.baseline())
    b = _config_key(CompilerConfig.baseline(name="renamed"))
    assert a == b


def test_binary_cache_shared_across_run_inputs():
    clear_caches()
    binary = get_binary("bitcount", CompilerConfig.baseline())
    first = run("bitcount", CompilerConfig.baseline(), run_kind="train")
    second = run("bitcount", CompilerConfig.baseline(), run_kind="alt")
    assert first.binary is binary and second.binary is binary
    assert first.sim.output != second.sim.output  # different inputs


def test_dts_records_carry_scaled_energy():
    record = run("bitcount", CompilerConfig.dts(), run_kind="train")
    assert record.dts_energy is not None
    assert record.total_energy == record.dts_energy.total
    assert record.total_energy < record.energy.total


def test_timesqueezing_total_energy_without_dts_breakdown():
    """Regression: a timesqueezing record whose ``dts_energy`` was never
    populated (built by hand, or deserialized from an old cache entry) must
    derive it from the sim instead of crashing on ``None.total``."""
    import dataclasses

    from repro.arch.dts import DTSModel
    from repro.eval.harness import RunRecord

    full = run("bitcount", CompilerConfig.dts(), run_kind="train")
    bare = RunRecord(
        workload=full.workload,
        config=full.config,
        sim=full.sim,
        binary=full.binary,
        correct=full.correct,
        energy=full.energy,
        dts_energy=None,
    )
    assert bare.total_energy == DTSModel().apply(full.sim).total
    assert bare.total_energy == full.total_energy
    assert bare.dts_energy is not None  # derived lazily, then kept

    # ... but with no sim to derive from, the failure must be explicit.
    simless = dataclasses.replace(bare, sim=None, dts_energy=None)
    with pytest.raises(ValueError, match="timesqueezing"):
        simless.total_energy


@pytest.mark.slow
def test_report_generator_smoke(monkeypatch):
    """The report pipeline produces markdown with the key sections.

    Figure functions are monkeypatched onto tiny subsets to keep this fast.
    """
    from repro.eval import figures, report

    small = ("bitcount",)
    for name in (
        "fig01_bitwidth_selection",
        "fig08_energy",
        "fig12_nospec",
        "fig14_table2_aggressiveness",
        "fig15_sensitivity",
        "fig17_dts",
        "fig18_thumb",
    ):
        fn = getattr(figures, name)
        monkeypatch.setattr(figures, name, (lambda f: lambda *a, **k: f(small))(fn))
    text = report.generate_report()
    for heading in ("Figure 1", "Figure 8", "Table 2", "Figure 17", "Figure 18"):
        assert heading in text
    assert "bitcount" in text
