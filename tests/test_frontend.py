"""MiniC front-end: lexer, parser, codegen semantics."""

import pytest

from conftest import run_source
from repro.frontend import CodegenError, LexError, ParseError, compile_source, parse, tokenize
from repro.ir import verify_module


class TestLexer:
    def test_tokens(self):
        toks = tokenize("u32 x = 0x1F + 'a'; // comment\n y <<= 2;")
        kinds = [t.kind for t in toks]
        assert kinds[0] == "kw"
        assert "<<=" in kinds
        values = [t.value for t in toks if t.kind == "num"]
        assert values == [0x1F, ord("a"), 2]

    def test_block_comments(self):
        toks = tokenize("a /* multi\nline */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_char_escapes(self):
        toks = tokenize(r"'\n' '\0' '\\'")
        assert [t.value for t in toks[:-1]] == [10, 0, 92]

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("a $ b")
        with pytest.raises(LexError):
            tokenize("/* unterminated")
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestParser:
    def test_precedence(self):
        prog = parse("void main() { u32 x = 1 + 2 * 3; out(x); }")
        assert prog.functions[0].name == "main"

    def test_global_forms(self):
        prog = parse("u32 a; u8 b[4] = {1,2,3,4}; u32 c = 7;")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]
        assert prog.globals[1].init == [1, 2, 3, 4]
        assert prog.globals[2].init == [7]

    def test_syntax_errors(self):
        for bad in (
            "void main() { u32 x = ; }",
            "void main() { if x { } }",
            "u32 f(u32) { return 0; }",
            "void main() { 1 = 2; }",
        ):
            with pytest.raises(ParseError):
                parse(bad)


class TestCodegenSemantics:
    """Each snippet's out() stream checked against a Python-computed value."""

    def test_arithmetic_and_wrapping(self):
        # MiniC has no C-style integer promotion: u8 op u8 wraps at 8 bits.
        out = run_source(
            """
            void main() {
                u8 a = 200;
                u8 b = 100;
                out(a + b);            // 8-bit arithmetic wraps
                u8 c = a + b;
                out(c);
                out((u32)a * (u32)b);  // widen explicitly for full product
                u32 big = 0xFFFFFFFF;
                out(big + 2);
            }
            """
        )
        assert out == [(200 + 100) & 0xFF, (200 + 100) & 0xFF, 20000, 1]

    def test_division_and_modulo(self):
        out = run_source(
            """
            void main() {
                out(17 / 5);
                out(17 % 5);
                s32 a = -17;
                out((u32)(a / 5));
                out((u32)(a % 5));
            }
            """
        )
        # C semantics: trunc toward zero
        assert out == [3, 2, (-3) & 0xFFFFFFFF, (-2) & 0xFFFFFFFF]

    def test_shifts_signed_unsigned(self):
        out = run_source(
            """
            void main() {
                u32 x = 0x80000000;
                out(x >> 4);
                s32 y = (s32)0x80000000;
                out((u32)(y >> 4));
                out(1 << 31);
            }
            """
        )
        assert out == [0x08000000, 0xF8000000, 0x80000000]

    def test_comparisons_and_bool(self):
        out = run_source(
            """
            void main() {
                u32 a = 5;
                s32 b = -1;
                out(a > 3);
                out(b < 0);
                u32 t = (a == 5) + (a != 5);
                out(t);
                out(!a);
                out(!(a - 5));
            }
            """
        )
        assert out == [1, 1, 1, 0, 1]

    def test_short_circuit(self):
        out = run_source(
            """
            u32 calls;
            u32 bump() { calls += 1; return 1; }
            void main() {
                u32 a = 0;
                if (a && bump()) { out(99); }
                out(calls);
                if (a || bump()) { out(42); }
                out(calls);
            }
            """
        )
        assert out == [0, 42, 1]

    def test_ternary_lazy(self):
        out = run_source(
            """
            void main() {
                u32 d = 0;
                out(d == 0 ? 7 : 100 / d);  // must not trap
            }
            """
        )
        assert out == [7]

    def test_loops_break_continue(self):
        out = run_source(
            """
            void main() {
                u32 s = 0;
                for (u32 i = 0; i < 10; i += 1) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    s += i;
                }
                out(s);
                u32 j = 0;
                while (1) { j += 1; if (j >= 4) { break; } }
                out(j);
                u32 k = 10;
                do { k -= 2; } while (k > 3);
                out(k);
            }
            """
        )
        assert out == [0 + 1 + 2 + 4 + 5 + 6, 4, 2]

    def test_arrays_and_pointers(self):
        out = run_source(
            """
            u16 data[8];
            u32 sum_from(u16 *p, u32 n) {
                u32 s = 0;
                for (u32 i = 0; i < n; i += 1) { s += p[i]; }
                return s;
            }
            void main() {
                for (u32 i = 0; i < 8; i += 1) { data[i] = i * 1000; }
                out(sum_from(data, 8));
                out(sum_from(&data[4], 4));
                u32 local[4];
                local[0] = 5; local[1] = 6; local[2] = 7; local[3] = 8;
                u32 t = 0;
                for (u32 i = 0; i < 4; i += 1) { t += local[i]; }
                out(t);
            }
            """
        )
        expected_all = sum((i * 1000) & 0xFFFF for i in range(8))
        expected_tail = sum((i * 1000) & 0xFFFF for i in range(4, 8))
        assert out == [expected_all, expected_tail, 26]

    def test_u64_arithmetic(self):
        out = run_source(
            """
            void main() {
                u64 a = 0xFFFFFFFF;
                u64 b = a + a;
                out((u32)b);
                out((u32)(b >> 32));
                u64 c = a * 3;
                out((u32)(c >> 32));
                out(a < b);
                u64 d = b - a - a;
                out((u32)d);
            }
            """
        )
        assert out == [0xFFFFFFFE, 1, 2, 1, 0]

    def test_recursion(self):
        out = run_source(
            """
            u32 ack(u32 m, u32 n) {
                if (m == 0) { return n + 1; }
                if (n == 0) { return ack(m - 1, 1); }
                return ack(m - 1, ack(m, n - 1));
            }
            void main() { out(ack(2, 3)); }
            """
        )
        assert out == [9]

    def test_global_scalars(self):
        out = run_source(
            """
            u32 counter = 5;
            void bump() { counter += 3; }
            void main() { bump(); bump(); out(counter); }
            """
        )
        assert out == [11]

    def test_compound_assignment_ops(self):
        out = run_source(
            """
            void main() {
                u32 x = 100;
                x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
                x <<= 2; x >>= 1; x |= 0x10; x &= 0x1E; x ^= 0x3;
                out(x);
            }
            """
        )
        x = 100
        x += 5; x -= 3; x *= 2; x //= 4; x %= 13
        x <<= 2; x >>= 1; x |= 0x10; x &= 0x1E; x ^= 0x3
        assert out == [x]

    def test_unary_ops(self):
        out = run_source(
            """
            void main() {
                u32 x = 5;
                out(-x);
                out(~x);
                s32 y = -8;
                out((u32)-y);
            }
            """
        )
        assert out == [(-5) & 0xFFFFFFFF, (~5) & 0xFFFFFFFF, 8]

    def test_scoping_shadows(self):
        out = run_source(
            """
            void main() {
                u32 x = 1;
                if (x) { u32 y = 10; out(y); }
                if (x) { u32 y = 20; out(y); }
                out(x);
            }
            """
        )
        assert out == [10, 20, 1]


class TestCodegenErrors:
    @pytest.mark.parametrize(
        "source, message",
        [
            ("void main() { out(nope); }", "undefined"),
            ("void main() { u32 x; u32 x; }", "redeclaration"),
            ("void main() { break; }", "break outside"),
            ("void main() { continue; }", "continue outside"),
            ("u32 f() { return 1; } void main() { f(1); }", "expects"),
            ("void main() { unknown(); }", "unknown"),
            ("u32 a[4]; void main() { a = 3; }", "without index"),
            ("void main() { u32 x = 0; out(x[0]); }", "cannot index"),
        ],
    )
    def test_rejects(self, source, message):
        with pytest.raises(CodegenError, match=message):
            compile_source(source)

    def test_all_outputs_verified(self):
        module = compile_source(
            "u32 g; void main() { g = 3; out(g); }"
        )
        verify_module(module)
