"""More property-based differential tests: arrays, stores, and calls."""

from hypothesis import given, settings, strategies as st

from repro.core import CompilerConfig, compile_binary
from repro.interp.memory import read_global


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(0, 255), min_size=4, max_size=24),
    stride=st.integers(1, 5),
    bias=st.integers(0, 200),
)
def test_array_shuffle_matches_python(values, stride, bias):
    """A strided in-place array transform, checked element-for-element in
    memory after the run (not just through out())."""
    n = len(values)
    source = f"""
    u8 buf[24]; u32 n; u32 sink;
    void main() {{
        for (u32 i = 0; i < n; i += 1) {{
            buf[i] = buf[(i * {stride}) % n] + {bias};
        }}
        u32 c = 0;
        for (u32 i = 0; i < n; i += 1) {{ c += buf[i]; }}
        sink = c;
        out(c);
    }}
    """
    inputs = {"buf": values, "n": n}
    expected_buf = list(values) + [0] * (24 - n)
    for i in range(n):
        expected_buf[i] = (expected_buf[(i * stride) % n] + bias) & 0xFF
    expected_sum = sum(expected_buf[:n]) & 0xFFFFFFFF

    for config in (CompilerConfig.baseline(), CompilerConfig.bitspec("min")):
        binary = compile_binary(source, config, profile_inputs=inputs)
        result = binary.run(inputs)
        assert result.output == [expected_sum], config.name
        final = read_global(
            result.memory, binary.module, binary.linked.global_addresses, "buf"
        )
        assert final == expected_buf, config.name


@settings(max_examples=15, deadline=None)
@given(
    a=st.integers(0, 2**16),
    b=st.integers(0, 2**16),
    depth=st.integers(0, 6),
)
def test_call_tree_matches_python(a, b, depth):
    """A recursive combinator: exercises calling convention, callee-saved
    discipline and per-call speculation under all ISAs."""
    source = """
    u32 x0; u32 y0; u32 d0; u32 sink;
    u32 mix(u32 x, u32 y, u32 d) {
        if (d == 0) { return (x ^ y) + 1; }
        u32 left = mix(y, x + 1, d - 1);
        u32 right = mix(x >> 1, y, d - 1);
        return left + right * 3;
    }
    void main() {
        sink = mix(x0, y0, d0);
        out(sink);
    }
    """

    def mix(x, y, d):
        if d == 0:
            return ((x ^ y) + 1) & 0xFFFFFFFF
        left = mix(y, (x + 1) & 0xFFFFFFFF, d - 1)
        right = mix(x >> 1, y, d - 1)
        return (left + right * 3) & 0xFFFFFFFF

    inputs = {"x0": a, "y0": b, "d0": depth}
    expected = [mix(a, b, depth)]
    for config in (
        CompilerConfig.baseline(),
        CompilerConfig.bitspec("max"),
        CompilerConfig.thumb(),
    ):
        binary = compile_binary(source, config, profile_inputs=inputs)
        assert binary.run(inputs).output == expected, config.name
