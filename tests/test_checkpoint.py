"""The snapshot-resume contract: checkpointed runs are bit-identical.

For every corpus program and smoke-roster workload, on the legacy and
fast engines:

    run(checkpoint_at=N) -> snapshot; run(resume_from=snapshot)

must equal one uninterrupted run in *every* SimResult field (energy
counters and final memory image included) — the resume-equals-straight-
run contract from "Correctness of Speculative Optimizations with
Dynamic Deoptimization" (PAPERS.md), enforced bit-for-bit.  The
batching engines (``compiled``/``ooo``) degrade to the predecoded
stepper; the OoO committed view must still agree.

Also pinned here: the on-disk snapshot format (atomic save, load,
corruption rejection), multi-hop resume chains, snapshot reuse, and the
mismatch guards (wrong engine, wrong binary, fault composition).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.arch.checkpoint import Snapshot, SnapshotError, program_fingerprint
from repro.arch.machine import Machine, committed_view
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval.harness import get_binary
from repro.fuzz.corpus import load_program
from repro.passes.expander import ExpanderConfig
from repro.workloads import get_workload

from test_machine_predecode import assert_sims_identical

CORPUS_DIR = Path(__file__).parent / "corpus"

FULL_CORPUS = tuple(sorted(p.stem for p in CORPUS_DIR.glob("*.json")))

SMOKE_CORPUS = ("seed000", "seed009", "regression-shl-slice-carry")

SMOKE_WORKLOADS = ("crc32", "sha", "bitcount")

#: the engines with native snapshot support
CKPT_ENGINES = ("legacy", "fast")


def _corpus_binary(name: str, config=None):
    program = load_program(CORPUS_DIR / f"{name}.json")
    expander = (
        ExpanderConfig() if program.expander_enabled else ExpanderConfig.disabled()
    )
    config = dataclasses.replace(
        config or CompilerConfig.bitspec("max"), expander=expander
    )
    binary = compile_binary(
        program.source, config, profile_inputs=program.inputs_profile
    )
    return binary, program.inputs_run


def _machine(binary, inputs, engine):
    if inputs:
        set_global_inputs(binary.module, inputs)
    return Machine(binary.linked, binary.module, engine=engine)


def _cuts(n: int):
    """Boundary positions worth probing for an n-instruction run."""
    return sorted({0, 1, n // 3, n // 2, max(n - 1, 0)})


def assert_resume_identical(binary, inputs, engine, label):
    ref = _machine(binary, inputs, engine).run()
    for cut in _cuts(ref.instructions):
        snap = _machine(binary, inputs, engine).run(checkpoint_at=cut)
        assert isinstance(snap, Snapshot), f"{label}@{cut}: expected snapshot"
        assert snap.instructions == cut
        assert snap.engine == engine
        sim = _machine(binary, inputs, engine).run(resume_from=snap)
        assert_sims_identical(sim, ref, f"{label}@{cut}")


# -- corpus -------------------------------------------------------------------


@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
@pytest.mark.parametrize("name", SMOKE_CORPUS)
def test_corpus_smoke_resume(name, ckpt_engine):
    binary, inputs = _corpus_binary(name)
    assert_resume_identical(binary, inputs, ckpt_engine, f"{name}/{ckpt_engine}")


@pytest.mark.slow
@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
@pytest.mark.parametrize("name", FULL_CORPUS)
def test_corpus_full_resume(name, ckpt_engine):
    binary, inputs = _corpus_binary(name)
    assert_resume_identical(binary, inputs, ckpt_engine, f"{name}/{ckpt_engine}")


# -- workload roster ----------------------------------------------------------


@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
@pytest.mark.parametrize("workload_name", SMOKE_WORKLOADS)
def test_workload_smoke_resume(workload_name, ckpt_engine):
    binary = get_binary(workload_name, CompilerConfig.bitspec("max"))
    inputs = get_workload(workload_name).inputs("test", 0)
    ref = _machine(binary, inputs, ckpt_engine).run()
    cut = ref.instructions // 2
    snap = _machine(binary, inputs, ckpt_engine).run(checkpoint_at=cut)
    sim = _machine(binary, inputs, ckpt_engine).run(resume_from=snap)
    assert_sims_identical(sim, ref, f"{workload_name}/{ckpt_engine}@{cut}")


@pytest.mark.slow
@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
def test_workload_roster_resume(ckpt_engine):
    from repro.eval.harness import BENCHMARKS

    config = CompilerConfig.bitspec("max")
    for workload_name in BENCHMARKS:
        binary = get_binary(workload_name, config)
        inputs = get_workload(workload_name).inputs("test", 0)
        ref = _machine(binary, inputs, ckpt_engine).run()
        cut = ref.instructions // 2
        snap = _machine(binary, inputs, ckpt_engine).run(checkpoint_at=cut)
        sim = _machine(binary, inputs, ckpt_engine).run(resume_from=snap)
        assert_sims_identical(sim, ref, f"{workload_name}/{ckpt_engine}@{cut}")


# -- multi-hop chains and reuse ----------------------------------------------


@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
def test_multi_hop_chain(ckpt_engine):
    """snapshot -> resume-with-checkpoint -> ... -> final, bit-identical."""
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, ckpt_engine).run()
    n = ref.instructions
    hops = sorted({n // 4, n // 2, (3 * n) // 4})
    state = None
    for cut in hops:
        m = _machine(binary, inputs, ckpt_engine)
        state = m.run(checkpoint_at=cut, resume_from=state)
        assert isinstance(state, Snapshot)
    sim = _machine(binary, inputs, ckpt_engine).run(resume_from=state)
    assert_sims_identical(sim, ref, f"chain/{ckpt_engine}")


@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
def test_snapshot_reuse(ckpt_engine):
    """A snapshot owns its state: resuming twice gives the same result."""
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, ckpt_engine).run()
    snap = _machine(binary, inputs, ckpt_engine).run(
        checkpoint_at=ref.instructions // 2
    )
    first = _machine(binary, inputs, ckpt_engine).run(resume_from=snap)
    second = _machine(binary, inputs, ckpt_engine).run(resume_from=snap)
    assert_sims_identical(first, ref, f"reuse-1/{ckpt_engine}")
    assert_sims_identical(second, ref, f"reuse-2/{ckpt_engine}")


def test_checkpoint_past_halt_returns_result():
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, "fast").run()
    sim = _machine(binary, inputs, "fast").run(
        checkpoint_at=ref.instructions + 1000
    )
    assert not isinstance(sim, Snapshot)
    assert_sims_identical(sim, ref, "past-halt")


# -- engine degradation -------------------------------------------------------


def test_compiled_engine_degrades_bit_identical():
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, "compiled").run()
    snap = _machine(binary, inputs, "compiled").run(
        checkpoint_at=ref.instructions // 2
    )
    assert isinstance(snap, Snapshot)
    assert snap.engine == "fast"  # degraded whole-run
    sim = _machine(binary, inputs, "compiled").run(resume_from=snap)
    # the in-order trio is bit-identical, so degradation loses nothing
    assert_sims_identical(sim, ref, "compiled-degraded")


def test_ooo_engine_degrades_committed_view():
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, "ooo").run()
    snap = _machine(binary, inputs, "ooo").run(
        checkpoint_at=ref.instructions // 2
    )
    assert isinstance(snap, Snapshot)
    sim = _machine(binary, inputs, "ooo").run(resume_from=snap)
    assert committed_view(sim) == committed_view(ref)


# -- serialization ------------------------------------------------------------


@pytest.mark.parametrize("ckpt_engine", CKPT_ENGINES)
def test_save_load_round_trip(tmp_path, ckpt_engine):
    binary, inputs = _corpus_binary("seed000")
    ref = _machine(binary, inputs, ckpt_engine).run()
    snap = _machine(binary, inputs, ckpt_engine).run(
        checkpoint_at=ref.instructions // 2
    )
    path = tmp_path / "run.snapshot"
    snap.save(str(path))
    loaded = Snapshot.load(str(path))
    assert loaded.to_dict() == snap.to_dict()
    sim = _machine(binary, inputs, ckpt_engine).run(resume_from=loaded)
    assert_sims_identical(sim, ref, f"disk/{ckpt_engine}")


def test_save_is_deterministic(tmp_path):
    binary, inputs = _corpus_binary("seed000")
    snap = _machine(binary, inputs, "fast").run(checkpoint_at=7)
    a, b = tmp_path / "a.snapshot", tmp_path / "b.snapshot"
    snap.save(str(a))
    snap.save(str(b))
    assert a.read_bytes() == b.read_bytes()


def test_load_rejects_truncated_file(tmp_path):
    binary, inputs = _corpus_binary("seed000")
    snap = _machine(binary, inputs, "fast").run(checkpoint_at=7)
    path = tmp_path / "torn.snapshot"
    snap.save(str(path))
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # a crash mid-write
    with pytest.raises(SnapshotError):
        Snapshot.load(str(path))


def test_load_rejects_corrupt_memory(tmp_path):
    binary, inputs = _corpus_binary("seed000")
    snap = _machine(binary, inputs, "fast").run(checkpoint_at=7)
    path = tmp_path / "bent.snapshot"
    snap.save(str(path))
    doc = json.loads(path.read_text())
    doc["memory_zb64"] = doc["memory_zb64"][:-40]
    path.write_text(json.dumps(doc))
    with pytest.raises(SnapshotError):
        Snapshot.load(str(path))


# -- mismatch guards ----------------------------------------------------------


def test_engine_mismatch_rejected():
    binary, inputs = _corpus_binary("seed000")
    snap = _machine(binary, inputs, "fast").run(checkpoint_at=5)
    with pytest.raises(SnapshotError, match="engine"):
        _machine(binary, inputs, "legacy").run(resume_from=snap)


def test_wrong_binary_rejected():
    binary, inputs = _corpus_binary("seed000")
    other, other_inputs = _corpus_binary("seed009")
    snap = _machine(binary, inputs, "fast").run(checkpoint_at=5)
    assert program_fingerprint(binary.linked) != program_fingerprint(
        other.linked
    )
    with pytest.raises(SnapshotError, match="different linked program"):
        _machine(other, other_inputs, "fast").run(resume_from=snap)


def test_faults_do_not_compose():
    from repro.faults.plan import derive_plan
    from repro.faults.session import FaultSession

    binary, inputs = _corpus_binary("seed000")
    golden = _machine(binary, inputs, "fast").run()
    plan = derive_plan("rf_bit", 0, golden)
    machine = Machine(
        binary.linked, binary.module, engine="fast",
        faults=FaultSession(plan),
    )
    with pytest.raises(ValueError, match="does not compose"):
        machine.run(checkpoint_at=5)


def test_negative_checkpoint_rejected():
    binary, inputs = _corpus_binary("seed000")
    with pytest.raises(ValueError, match=">= 0"):
        _machine(binary, inputs, "fast").run(checkpoint_at=-1)
