"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.arch.machine import ENGINES, parse_engine_list
from repro.core import CompilerConfig, compile_binary, set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import verify_module


def pytest_addoption(parser):
    parser.addoption(
        "--engines",
        default=",".join(ENGINES),
        help="comma-separated simulation engines for engine-matrix tests "
        f"(default: {','.join(ENGINES)})",
    )


def pytest_configure(config):
    """Validate ``--engines`` up front, whether or not any engine-matrix
    test is collected — an unknown or empty selection must abort the run,
    never silently deselect the whole matrix."""
    try:
        parse_engine_list(config.getoption("--engines"))
    except ValueError as exc:
        raise pytest.UsageError(f"--engines: {exc}")


def pytest_generate_tests(metafunc):
    """Any test taking an ``engine`` fixture runs once per selected engine.

    The selection comes from ``--engines``, so CI lanes (and developers
    bisecting a divergence) can narrow the matrix without editing tests:
    ``pytest --engines compiled tests/test_machine_predecode.py``.
    """
    if "engine" in metafunc.fixturenames:
        engines = parse_engine_list(metafunc.config.getoption("--engines"))
        metafunc.parametrize("engine", list(engines))


def run_source(source: str, inputs: dict = None, entry: str = "main"):
    """Front-end + interpreter; returns the output list."""
    module = compile_source(source)
    verify_module(module)
    if inputs:
        set_global_inputs(module, inputs)
    return Interpreter(module).run(entry).output


def run_machine(source: str, inputs: dict = None, config: CompilerConfig = None):
    """Full pipeline + machine simulation; returns the SimResult."""
    config = config or CompilerConfig.baseline()
    profile = inputs if config.middle_end.startswith("2cfg") else None
    binary = compile_binary(source, config, profile_inputs=profile)
    return binary.run(inputs or {})


ALL_CONFIGS = [
    CompilerConfig.baseline(),
    CompilerConfig.bitspec("max"),
    CompilerConfig.bitspec("avg"),
    CompilerConfig.nospec(),
    CompilerConfig.thumb(),
]


@pytest.fixture(scope="session")
def tiny_sum_workload():
    """A small program exercised by many integration tests."""
    source = """
    u32 acc;
    u8 table[32];
    u32 n;
    u32 sum(u8 *t, u32 count) {
        u32 s = 0;
        for (u32 i = 0; i < count; i += 1) { s += t[i]; }
        return s;
    }
    void main() {
        acc = sum(table, n);
        out(acc);
    }
    """
    inputs = {"table": [(7 * i + 3) % 256 for i in range(32)], "n": 32}
    expected = [sum((7 * i + 3) % 256 for i in range(32)) & 0xFFFFFFFF]
    return source, inputs, expected
