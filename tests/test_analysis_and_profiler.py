"""Static bitwidth analyses and the profile-guided selection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import demanded_bits, known_bits, static_selection
from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import Instruction, IntType, required_bits
from repro.passes import prepare_cfg_module
from repro.profiler import (
    BitwidthProfile,
    SQUEEZE_WIDTH,
    compute_squeeze_plan,
)


def analyze(source: str, func: str = "main"):
    module = compile_source(source)
    f = module.function(func)
    return module, f


class TestKnownBits:
    def test_masking_bounds(self):
        _, f = analyze("u32 g; void main() { u32 x = g & 0xFF; out(x); }")
        bounds = known_bits(f)
        masked = [
            b
            for inst, b in bounds.items()
            if getattr(inst, "opcode", "") == "and"
        ]
        assert masked and all(b <= 8 for b in masked)

    def test_add_grows_by_one(self):
        _, f = analyze(
            "u32 g; void main() { u32 a = g & 0x7F; u32 b = a + a; out(b); }"
        )
        bounds = known_bits(f)
        adds = [b for i, b in bounds.items() if getattr(i, "opcode", "") == "add"]
        assert adds and max(adds) <= 8

    def test_loads_are_opaque(self):
        _, f = analyze("u32 g[4]; void main() { out(g[0]); }")
        bounds = known_bits(f)
        loads = [b for i, b in bounds.items() if i.opcode == "load"]
        assert loads and all(b == 32 for b in loads)

    def test_loop_phi_converges_to_width(self):
        _, f = analyze(
            "u32 n; void main() { u32 s = 0; for (u32 i = 0; i < n; i += 1) { s += i; } out(s); }"
        )
        bounds = known_bits(f)  # must terminate and stay within widths
        for inst, b in bounds.items():
            assert 1 <= b <= inst.type.bits

    def test_soundness_against_execution(self):
        """Property: the static bound is an upper bound on RequiredBits."""
        source = """
        u32 n;
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < n; i += 1) {
                u32 t = (i & 0x3F) + 1;
                s += t * 3;
                out(s);
            }
        }
        """
        module, f = analyze(source)
        bounds = known_bits(f)
        set_global_inputs(module, {"n": 40})
        interp = Interpreter(module, trace=True)
        interp.run("main")
        for (fname, vname), stats in interp.trace.var_stats.items():
            if fname != "main":
                continue
            for inst, bound in bounds.items():
                if inst.name == vname:
                    assert stats.max_bits <= bound, (vname, stats.max_bits, bound)


class TestDemandedBits:
    def test_mask_limits_demand(self):
        _, f = analyze(
            "u32 g; u8 o; void main() { u32 x = g * 12345; o = (u8)(x & 0xFF); }"
        )
        demand = demanded_bits(f)
        muls = [d for i, d in demand.items() if getattr(i, "opcode", "") == "mul"]
        assert muls and all(d <= 8 for d in muls)

    def test_store_demands_full(self):
        _, f = analyze("u32 g; void main() { g = g + 1; }")
        demand = demanded_bits(f)
        adds = [d for i, d in demand.items() if getattr(i, "opcode", "") == "add"]
        assert adds and all(d == 32 for d in adds)

    def test_combined_selection_bounded(self):
        _, f = analyze("u32 g; void main() { out((g & 0xF) + 1); }")
        selection = static_selection(f)
        for inst, bits in selection.items():
            assert 1 <= bits <= inst.type.bits


class TestProfile:
    def _profile(self, source, inputs=None, entry="main"):
        module = compile_source(source)
        prepare_cfg_module(module)
        if inputs:
            set_global_inputs(module, inputs)
        return module, BitwidthProfile.collect(module, entry)

    def test_heuristics_ordering(self):
        module, profile = self._profile(
            "void main() { u32 x = 0; do { x += 37; } while (x < 1000); out(x); }"
        )
        keys = [k for k in profile.stats if k[1].startswith("add")]
        assert keys
        func, name = keys[0]
        low = profile.target_bits(func, name, "min")
        mid = profile.target_bits(func, name, "avg")
        high = profile.target_bits(func, name, "max")
        assert low <= mid <= high

    def test_unknown_heuristic_rejected(self):
        _, profile = self._profile("void main() { out(1); }")
        with pytest.raises(ValueError):
            profile.target_bits("main", "x", "median")

    def test_unprofiled_defaults_optimistic(self):
        _, profile = self._profile("void main() { out(1); }")
        assert profile.target_bits("main", "never.seen", "max") == 1

    def test_json_roundtrip(self):
        _, profile = self._profile(
            "void main() { u32 s = 0; for (u32 i = 0; i < 9; i += 1) { s += i; } out(s); }"
        )
        restored = BitwidthProfile.from_json(profile.to_json())
        assert restored.stats.keys() == profile.stats.keys()
        for key in profile.stats:
            a, b = profile.stats[key], restored.stats[key]
            assert (a.count, a.total_bits, a.min_bits, a.max_bits) == (
                b.count,
                b.total_bits,
                b.min_bits,
                b.max_bits,
            )

    def test_classify_dynamic_percentages(self):
        _, profile = self._profile(
            "void main() { u32 s = 0; for (u32 i = 0; i < 50; i += 1) { s += 1; } out(s); }"
        )
        hist = profile.classify_dynamic("max")
        assert sum(hist.values()) > 0
        assert hist[8] > 0  # everything here fits 8 bits


class TestSqueezePlan:
    def _plan(self, source, heuristic="max", inputs=None):
        module = compile_source(source)
        prepare_cfg_module(module)
        if inputs:
            set_global_inputs(module, inputs)
        profile = BitwidthProfile.collect(module, "main")
        func = module.function("main")
        return module, compute_squeeze_plan(func, profile, heuristic)

    def test_small_loop_squeezed(self):
        _, plan = self._plan(
            "void main() { u32 x = 0; do { x += 1; } while (x < 100); out(x); }"
        )
        assert len(plan.narrow) >= 1
        for inst in plan.narrow:
            assert plan.bw[inst] <= SQUEEZE_WIDTH

    def test_wide_values_not_squeezed(self):
        _, plan = self._plan(
            "void main() { u32 x = 0; do { x += 1000; } while (x < 100000); out(x); }"
        )
        assert not plan.narrow

    def test_mul_never_squeezed(self):
        _, plan = self._plan(
            "void main() { u32 x = 1; do { x *= 2; } while (x < 100); out(x); }"
        )
        for inst in plan.narrow:
            assert inst.opcode != "mul"

    def test_non_idempotent_blocks_excluded(self):
        # the value is tiny, but its defining block contains a call
        _, plan = self._plan(
            """
            u32 id(u32 v) { return v; }
            void main() {
                u32 x = 0;
                do { x = id(x) + 1; } while (x < 50);
                out(x);
            }
            """
        )
        for inst in plan.narrow:
            assert inst.parent.is_idempotent()

    def test_min_more_aggressive_than_max(self):
        source = """
        u32 limit;
        void main() {
            u32 x = 0;
            do { x += 1; out(x); } while (x < limit);
        }
        """
        _, plan_max = self._plan(source, "max", {"limit": 1000})
        _, plan_min = self._plan(source, "min", {"limit": 1000})
        assert len(plan_min.narrow) >= len(plan_max.narrow)

    def test_bw_respects_operand_targets(self):
        # x stays small but is added to a large constant: not squeezable
        _, plan = self._plan(
            "void main() { u32 x = 0; do { x = (x + 1) & 0xF; out(x + 5000); } while (x != 0); }"
        )
        for inst in plan.narrow:
            for op in inst.operands:
                if hasattr(op, "value"):
                    assert required_bits(op.value) <= SQUEEZE_WIDTH
