"""CFG analyses, liveness, verifier, cloning."""

import pytest

from repro.frontend import compile_source
from repro.ir import (
    BinOp,
    Br,
    Function,
    I32,
    IRBuilder,
    Module,
    VOID,
    VerificationError,
    clone_blocks,
    const,
    verify_function,
    verify_module,
)
from repro.ir.cfg import (
    compute_dominators,
    dominates,
    find_natural_loops,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir.liveness import compute_liveness
from repro.interp import Interpreter


def diamond_function():
    """entry -> (left|right) -> join -> ret, with a phi at the join."""
    func = Function("f", I32, [("x", I32)])
    entry = func.add_block("entry")
    left = func.add_block("left")
    right = func.add_block("right")
    join = func.add_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("ult", func.args[0], b.const(10))
    b.condbr(cond, left, right)
    b.set_block(left)
    lv = b.add(func.args[0], b.const(1))
    b.br(join)
    b.set_block(right)
    rv = b.add(func.args[0], b.const(2))
    b.br(join)
    b.set_block(join)
    phi = b.phi(I32)
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    b.ret(phi)
    return func, (entry, left, right, join)


class TestCFG:
    def test_reverse_postorder(self):
        func, (entry, left, right, join) = diamond_function()
        order = reverse_postorder(func)
        assert order[0] is entry
        assert order.index(join) > order.index(left)
        assert order.index(join) > order.index(right)

    def test_dominators(self):
        func, (entry, left, right, join) = diamond_function()
        dom = compute_dominators(func)
        assert dominates(dom, entry, join)
        assert not dominates(dom, left, join)
        assert dominates(dom, join, join)

    def test_natural_loops(self):
        src = """
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < 10; i += 1) {
                for (u32 j = 0; j < 3; j += 1) { s += j; }
            }
            out(s);
        }
        """
        module = compile_source(src)
        loops = find_natural_loops(module.function("main"))
        assert len(loops) == 2
        sizes = sorted(len(l.blocks) for l in loops)
        assert sizes[0] < sizes[1]  # inner loop nests inside outer

    def test_remove_unreachable(self):
        func, blocks = diamond_function()
        dead = func.add_block("dead")
        IRBuilder(dead).ret(const(0))
        assert remove_unreachable_blocks(func) == 1
        assert dead not in func.blocks
        verify_function(func)


class TestLiveness:
    def test_diamond_liveness(self):
        func, (entry, left, right, join) = diamond_function()
        info = compute_liveness(func)
        lv = left.instructions[0]
        rv = right.instructions[0]
        assert lv in info.live_out[left]
        assert rv in info.live_out[right]
        assert lv not in info.live_out[right]
        phi = join.phis()[0]
        assert phi in info.live_in[join]

    def test_loop_liveness(self):
        src = """
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < 5; i += 1) { s += i; }
            out(s);
        }
        """
        func = compile_source(src).function("main")
        info = compute_liveness(func)
        # the accumulator phi must be live around the loop
        for block in func.blocks:
            for phi in block.phis():
                assert phi in info.live_in[block]


class TestVerifier:
    def test_accepts_valid(self):
        func, _ = diamond_function()
        verify_function(func)

    def test_rejects_missing_terminator(self):
        func = Function("f", VOID)
        block = func.add_block("entry")
        IRBuilder(block).add(const(1), const(2))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(func)

    def test_rejects_phi_pred_mismatch(self):
        func, (entry, left, right, join) = diamond_function()
        phi = join.phis()[0]
        phi.remove_incoming(left)
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(func)

    def test_rejects_dominance_violation(self):
        func, (entry, left, right, join) = diamond_function()
        lv = left.instructions[0]
        # use left's value in right: not dominated
        right.insert(1, BinOp("add", lv, const(1), "bad"))
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(func)

    def test_rejects_duplicate_names(self):
        func = Function("f", VOID)
        b = IRBuilder(func.add_block("entry"))
        b.add(const(1), const(2), "same")
        b.add(const(3), const(4), "same")
        b.ret()
        with pytest.raises(VerificationError, match="duplicate"):
            verify_function(func)

    def test_rejects_unknown_callee(self):
        module = Module("m")
        func = module.add_function(Function("f", VOID))
        b = IRBuilder(func.add_block("entry"))
        b.call("missing", [], VOID)
        b.ret()
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(module)


class TestClone:
    def test_clone_preserves_semantics(self):
        src = """
        u32 result;
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < 8; i += 1) {
                if (i & 1) { s += i * 3; } else { s += 1; }
            }
            result = s;
            out(s);
        }
        """
        module = compile_source(src)
        func = module.function("main")
        original = list(func.blocks)
        vmap, bmap = clone_blocks(func, original, ".c")
        # redirect entry into the clone: same behaviour expected
        func.set_entry(bmap[original[0]])
        verify_module(module)
        out = Interpreter(module).run("main").output
        expected = sum(i * 3 if i & 1 else 1 for i in range(8))
        assert out == [expected]

    def test_clone_maps_are_consistent(self):
        func, blocks = diamond_function()
        vmap, bmap = clone_blocks(func, blocks, ".x")
        for orig, clone in bmap.items():
            assert len(orig.instructions) == len(clone.instructions)
        for orig, clone in vmap.items():
            assert orig.type == clone.type
            assert clone.name.endswith(".x")
