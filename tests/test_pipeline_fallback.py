"""Graceful degradation: per-function BASELINE fallback in the pipeline.

When the squeezer, SIR verifier, speculation budget or layout fails for a
function, ``compile_binary`` must not abort: the failing function reverts
to BASELINE codegen inside an otherwise-speculative binary (a *mixed-world*
binary), with a structured :class:`CompileDiagnostic` recording what broke.
``strict=True`` (or ``REPRO_STRICT_COMPILE=1``) restores fail-fast.

The acceptance bar for the fallback itself: every BASELINE-fallback
function must match the pure-BASELINE build *event-for-event* — same
instruction opcodes, same per-instruction execution counts, zero
misspeculations — checked below through the obs layer.
"""

import pytest

from repro.core.pipeline import (
    CompilerConfig,
    SpeculationLimitError,
    compile_binary,
)
from repro.faults.toolchain import InjectedCompileFault, inject_compile_faults

SOURCE = """
u32 n;
u32 acc;
u32 helper(u32 v) {
    u32 s = 0;
    for (u32 i = 0; i < 10; i += 1) {
        s = (s + v + i) & 255;
    }
    return s;
}
void main() {
    u32 x = n;
    for (u32 i = 0; i < 8; i += 1) {
        acc = acc + helper(x + i);
    }
    out(acc);
}
"""

PROFILE = {"n": 5}
RUN = {"n": 5}


def _bitspec(**kw):
    return compile_binary(
        SOURCE, CompilerConfig.bitspec("max"), profile_inputs=PROFILE, **kw
    )


def _baseline():
    return compile_binary(SOURCE, CompilerConfig.baseline())


# ---------------------------------------------------------------------------
# the fallback path
# ---------------------------------------------------------------------------


def test_clean_compile_has_no_fallback():
    binary = _bitspec()
    assert binary.linked.fallback_functions == frozenset()
    assert binary.diagnostics == []


def test_squeeze_failure_degrades_only_that_function():
    with inject_compile_faults({("helper", "squeeze")}):
        binary = _bitspec()
    assert binary.linked.fallback_functions == frozenset({"helper"})
    assert "helper" not in binary.squeeze_results
    assert "main" in binary.squeeze_results  # the rest still speculates
    (diag,) = binary.diagnostics
    assert (diag.function, diag.stage) == ("helper", "squeeze")
    assert diag.error == "InjectedCompileFault"
    assert "helper" in diag.message
    assert diag.to_dict()["stage"] == "squeeze"


def test_mixed_binary_output_matches_clean_builds():
    with inject_compile_faults({("helper", "squeeze")}):
        mixed = _bitspec()
    assert mixed.run(RUN).output == _bitspec().run(RUN).output
    assert mixed.run(RUN).output == _baseline().run(RUN).output


def test_verify_failure_also_degrades():
    with inject_compile_faults({("helper", "verify")}):
        binary = _bitspec()
    (diag,) = binary.diagnostics
    assert diag.stage == "verify"
    assert binary.linked.fallback_functions == frozenset({"helper"})


def test_strict_mode_raises_instead():
    with inject_compile_faults({("helper", "squeeze")}):
        with pytest.raises(InjectedCompileFault):
            _bitspec(strict=True)


def test_strict_env_var_is_the_default_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_STRICT_COMPILE", "1")
    with inject_compile_faults({("helper", "squeeze")}):
        with pytest.raises(InjectedCompileFault):
            _bitspec()
    monkeypatch.setenv("REPRO_STRICT_COMPILE", "0")
    with inject_compile_faults({("helper", "squeeze")}):
        assert _bitspec().linked.fallback_functions == frozenset({"helper"})


def test_speculation_budget_degrades_with_limits_diagnostic():
    config = CompilerConfig.bitspec("max", max_spec_regions=1)
    binary = compile_binary(SOURCE, config, profile_inputs=PROFILE)
    assert binary.linked.fallback_functions  # something exceeded 1 region
    for diag in binary.diagnostics:
        assert diag.stage == "limits"
        assert diag.error == "SpeculationLimitError"
    assert binary.run(RUN).output == _baseline().run(RUN).output


def test_speculation_budget_strict_raises():
    config = CompilerConfig.bitspec("max", max_spec_regions=1)
    with pytest.raises(SpeculationLimitError):
        compile_binary(SOURCE, config, profile_inputs=PROFILE, strict=True)


def test_layout_failure_falls_back_to_all_baseline():
    """A module-wide back-end failure retries with every function at
    BASELINE — the binary still links and runs exactly like pure BASELINE."""
    with inject_compile_faults({("*", "layout")}):
        binary = _bitspec()
    assert binary.linked.fallback_functions == frozenset(
        binary.module.functions
    )
    assert any(d.stage == "layout" and d.function == "*"
               for d in binary.diagnostics)
    mixed_sim = binary.run(RUN)
    pure_sim = _baseline().run(RUN)
    assert mixed_sim.output == pure_sim.output
    assert mixed_sim.instructions == pure_sim.instructions
    assert mixed_sim.misspeculations == 0


def test_layout_failure_strict_raises():
    with inject_compile_faults({("*", "layout")}):
        with pytest.raises(InjectedCompileFault):
            _bitspec(strict=True)


# ---------------------------------------------------------------------------
# event-for-event equivalence of fallback functions
# ---------------------------------------------------------------------------


def _function_events(binary, fname, sim):
    """(opcode, execs, misspecs) per instruction owned by ``fname``."""
    return [
        (
            binary.linked.insts[pc].opcode,
            sim.obs.exec_counts[pc],
            sim.obs.misspecs[pc],
        )
        for pc in range(len(binary.linked.owner))
        if binary.linked.owner[pc] == fname
    ]


def test_fallback_function_matches_pure_baseline_event_for_event():
    """The acceptance criterion: a BASELINE-fallback function inside a
    mixed-world binary executes the same instruction stream with the same
    per-instruction dynamic counts as the pure-BASELINE build — and never
    misspeculates."""
    with inject_compile_faults({("helper", "squeeze")}):
        mixed = _bitspec()
    pure = _baseline()
    mixed_sim = mixed.run(RUN, obs=True)
    pure_sim = pure.run(RUN, obs=True)

    mixed_events = _function_events(mixed, "helper", mixed_sim)
    pure_events = _function_events(pure, "helper", pure_sim)
    assert mixed_events == pure_events
    assert mixed_events, "helper produced no instructions?"
    assert all(miss == 0 for _, _, miss in mixed_events)
    # ... while the non-degraded main still carries speculative ops
    assert any(
        inst.opcode.startswith("bs_")
        for pc, inst in enumerate(mixed.linked.insts)
        if mixed.linked.owner[pc] == "main"
    )


def test_all_baseline_fallback_matches_pure_baseline_everywhere():
    with inject_compile_faults({("*", "layout")}):
        mixed = _bitspec()
    pure = _baseline()
    mixed_sim = mixed.run(RUN, obs=True)
    pure_sim = pure.run(RUN, obs=True)
    for fname in pure.module.functions:
        assert _function_events(mixed, fname, mixed_sim) == _function_events(
            pure, fname, pure_sim
        ), fname


# ---------------------------------------------------------------------------
# bookkeeping
# ---------------------------------------------------------------------------


def test_fallback_counter_is_bumped():
    with inject_compile_faults({("helper", "squeeze")}):
        binary = _bitspec()
    assert binary.pass_stats["pipeline-fallback"]["functions_degraded"] == 1
    assert "pipeline-fallback" not in _bitspec().pass_stats


def test_max_spec_regions_is_a_cache_key_ingredient():
    a = CompilerConfig.bitspec("max")
    b = CompilerConfig.bitspec("max", max_spec_regions=3)
    assert a.stable_hash() != b.stable_hash()
