"""The process-chaos campaign: classification, determinism, the gate.

Acceptance contract pinned here: the same seed yields a byte-identical
campaign JSON, no scenario ever classifies as ``corruption``, and the
two headline injections — worker SIGKILL and journal-tail truncation —
always land in ``recovered`` or ``degraded``.
"""

import json

import pytest

from repro.chaos.campaign import (
    CATEGORIES,
    CORRUPTION,
    DEGRADED,
    LOST_WORK,
    RECOVERED,
    SCENARIOS,
    enumerate_cells,
    render_campaign,
    run_campaign,
    run_cell,
    summarize,
    to_canonical_json,
)
from repro.fuzz.driver import iteration_seed

#: cheap scenarios (no compiles, no subprocesses) — used where the test
#: is about campaign mechanics rather than a specific injection
FAST_SCENARIOS = (
    "shard-truncate",
    "shard-bitflip",
    "journal-tail-truncate",
    "journal-bitflip",
)


# -- per-scenario classification ----------------------------------------------


@pytest.mark.parametrize("scenario", FAST_SCENARIOS)
@pytest.mark.parametrize("salt", [0, 1, 2, 3])
def test_fast_scenarios_never_corrupt(scenario, salt):
    record = run_cell(scenario, iteration_seed(7, salt))
    assert record["status"] == "ok"
    assert record["category"] in (RECOVERED, DEGRADED, LOST_WORK)


@pytest.mark.parametrize("salt", [0, 1, 2, 3, 4, 5, 6, 7])
def test_journal_tail_truncation_lands_recovered_or_degraded(salt):
    record = run_cell("journal-tail-truncate", iteration_seed(11, salt))
    assert record["status"] == "ok"
    assert record["category"] in (RECOVERED, DEGRADED)


def test_shard_damage_is_always_evicted_never_served():
    for salt in range(8):
        for scenario in ("shard-truncate", "shard-bitflip"):
            record = run_cell(scenario, iteration_seed(13, salt))
            assert record["status"] == "ok"
            assert record["category"] != CORRUPTION, record


def test_worker_kill_recovers_bit_identical():
    record = run_cell("worker-kill", iteration_seed(3, 0))
    assert record["status"] == "ok"
    assert record["category"] in (RECOVERED, DEGRADED)
    assert record["killed"] and record["resumed_from_snapshot"]
    assert 0 < record["cut"] < record["golden_instructions"]


def test_enospc_write_never_publishes_partial_state():
    for salt in (0, 1, 2, 3):
        record = run_cell("enospc", iteration_seed(5, salt))
        assert record["status"] == "ok"
        assert record["category"] == DEGRADED
        assert record["write_failed"]
        assert not record["published_while_full"]


@pytest.mark.slow
def test_serve_restart_loses_nothing():
    record = run_cell("serve-restart", iteration_seed(9, 0))
    assert record["status"] == "ok"
    assert record["category"] == RECOVERED
    assert record["lost"] == 0 and record["byte_mismatches"] == 0


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize("scenario", FAST_SCENARIOS)
def test_cells_are_deterministic(scenario):
    seed = iteration_seed(42, 1)
    assert run_cell(scenario, seed) == run_cell(scenario, seed)


def test_campaign_json_is_byte_identical_across_reruns():
    kwargs = dict(scenarios=FAST_SCENARIOS, seed=21, per_scenario=2)
    first = to_canonical_json(run_campaign(**kwargs))
    second = to_canonical_json(run_campaign(**kwargs))
    assert first == second


def test_campaign_json_carries_no_paths_or_pids():
    campaign = run_campaign(scenarios=FAST_SCENARIOS, seed=0, per_scenario=1)
    text = to_canonical_json(campaign)
    assert "/tmp" not in text and "chaos-" not in text
    doc = json.loads(text)
    assert doc["summary"]["cells"] == len(FAST_SCENARIOS)


def test_enumerate_cells_seeds_are_stream_positions():
    cells = enumerate_cells(("a", "b"), 17, 2)
    assert [c[0] for c in cells] == ["a", "a", "b", "b"]
    assert [c[1] for c in cells] == [iteration_seed(17, i) for i in range(4)]


# -- the gate and rendering ---------------------------------------------------


def test_summary_counts_and_gate_fields():
    cells = [
        {"scenario": "x", "category": RECOVERED, "status": "ok"},
        {"scenario": "x", "category": CORRUPTION, "status": "ok"},
        {"scenario": "y", "category": LOST_WORK, "status": "ok"},
        {"scenario": "y", "status": "error", "category": "error"},
    ]
    summary = summarize(cells)
    assert summary["corruptions"] == 1
    assert summary["lost_work"] == 1
    assert summary["errors"] == 1
    assert summary["per_scenario"]["x"][CORRUPTION] == 1


def test_render_lists_every_scenario():
    campaign = run_campaign(scenarios=FAST_SCENARIOS, seed=0, per_scenario=1)
    rendered = render_campaign(campaign)
    for scenario in FAST_SCENARIOS:
        assert scenario in rendered
    assert "corruptions: 0" in rendered


def test_cli_exit_codes(tmp_path, capsys):
    from repro.chaos.__main__ import main

    out = tmp_path / "chaos.json"
    code = main(
        [
            "campaign",
            "--seed",
            "3",
            "--per-scenario",
            "1",
            "--scenarios",
            ",".join(FAST_SCENARIOS),
            "--json",
            str(out),
        ]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["summary"]["corruptions"] == 0
    assert set(doc["scenarios"]) == set(FAST_SCENARIOS)


def test_cli_rejects_unknown_scenario():
    from repro.chaos.__main__ import main

    with pytest.raises(SystemExit):
        main(["campaign", "--scenarios", "meteor-strike"])


def test_taxonomy_mirrors_faults_shape():
    """Four mutually-exclusive categories, like the fault campaigns."""
    assert len(CATEGORIES) == 4
    assert CORRUPTION in CATEGORIES and RECOVERED in CATEGORIES
    assert set(SCENARIOS) >= {
        "worker-kill",
        "journal-tail-truncate",
        "enospc",
        "serve-restart",
    }
