"""Additional MiniC semantic coverage: signed types, u16, corner control flow."""

import pytest

from conftest import run_source
from repro.core import CompilerConfig
from conftest import run_machine


class TestSignedSemantics:
    def test_signed_comparisons(self):
        out = run_source(
            """
            void main() {
                s32 a = -5;
                s32 b = 3;
                out(a < b); out(a > b); out(a <= -5); out(a >= b);
                s8 c = -1;
                s8 d = 1;
                out(c < d);
            }
            """
        )
        assert out == [1, 0, 1, 0, 1]

    def test_sign_extension_on_widening(self):
        out = run_source(
            """
            void main() {
                s8 a = -2;
                s32 wide = a;       // sext
                out((u32)wide);
                u8 b = 0xFE;
                u32 zwide = b;      // zext
                out(zwide);
            }
            """
        )
        assert out == [(-2) & 0xFFFFFFFF, 0xFE]

    def test_signed_global_arrays(self):
        out = run_source(
            """
            s16 vals[4];
            void main() {
                vals[0] = -100;
                vals[1] = 100;
                s32 d = vals[0] + vals[1];
                out((u32)d);
                out(vals[0] < 0);
            }
            """
        )
        assert out == [0, 1]

    def test_signed_shift_right(self):
        out = run_source(
            """
            void main() {
                s16 x = -256;
                out((u32)(s32)(x >> 4));
            }
            """
        )
        assert out == [(-16) & 0xFFFFFFFF]


class TestU16:
    def test_u16_wrapping(self):
        out = run_source(
            """
            void main() {
                u16 a = 60000;
                u16 b = 10000;
                u16 c = a + b;     // wraps at 16 bits
                out(c);
                out(a + b);        // 16-bit arithmetic, also wraps
            }
            """
        )
        assert out == [(70000) & 0xFFFF, (70000) & 0xFFFF]

    def test_u16_memory_machine(self):
        result = run_machine(
            """
            u16 h[3];
            void main() {
                h[0] = 0xFFFF;
                h[1] = h[0] + 1;
                h[2] = h[0] >> 8;
                out(h[0]); out(h[1]); out(h[2]);
            }
            """
        )
        assert result.output == [0xFFFF, 0, 0xFF]


class TestControlFlowCorners:
    def test_nested_ternary(self):
        out = run_source(
            "u32 g; void main() { out(g < 5 ? 1 : g < 10 ? 2 : 3); }",
            {"g": 7},
        )
        assert out == [2]

    def test_do_while_with_continue(self):
        out = run_source(
            """
            void main() {
                u32 i = 0;
                u32 s = 0;
                do {
                    i += 1;
                    if (i & 1) { continue; }
                    s += i;
                } while (i < 10);
                out(s);
            }
            """
        )
        assert out == [2 + 4 + 6 + 8 + 10]

    def test_nested_breaks_bind_to_inner_loop(self):
        out = run_source(
            """
            void main() {
                u32 total = 0;
                for (u32 i = 0; i < 4; i += 1) {
                    for (u32 j = 0; j < 10; j += 1) {
                        if (j == 2) { break; }
                        total += 1;
                    }
                }
                out(total);
            }
            """
        )
        assert out == [8]

    def test_return_from_loop(self):
        out = run_source(
            """
            u32 find(u32 needle) {
                for (u32 i = 0; i < 100; i += 1) {
                    if (i * i >= needle) { return i; }
                }
                return 100;
            }
            void main() { out(find(17)); out(find(0)); }
            """
        )
        assert out == [5, 0]

    def test_while_condition_side_effect_free_reeval(self):
        out = run_source(
            """
            u32 g;
            void main() {
                u32 n = 0;
                while (g > n && n < 5) { n += 1; }
                out(n);
            }
            """,
            {"g": 3},
        )
        assert out == [3]

    def test_empty_loop_bodies(self):
        out = run_source(
            """
            void main() {
                u32 i = 0;
                for (; i < 5; i += 1) { }
                out(i);
                while (i < 5) { i += 1; }
                out(i);
            }
            """
        )
        assert out == [5, 5]


class TestMachineBitspecExtended:
    @pytest.mark.parametrize("heuristic", ["max", "avg", "min"])
    def test_signed_code_not_squeezed_incorrectly(self, heuristic):
        """Signed ops are never Squeezable; mixed signed/unsigned programs
        must stay exact under every heuristic."""
        source = """
        s32 data[8]; u32 sink;
        void main() {
            s32 mn = data[0];
            s32 mx = data[0];
            for (u32 i = 1; i < 8; i += 1) {
                if (data[i] < mn) { mn = data[i]; }
                if (data[i] > mx) { mx = data[i]; }
            }
            sink = (u32)(mx - mn);
            out((u32)(mx - mn));
        }
        """
        values = [5, -3, 100, -77, 0, 44, -2, 13]
        config = CompilerConfig.bitspec(heuristic)
        result = run_machine(source, {"data": values}, config)
        assert result.output == [(100 - (-77)) & 0xFFFFFFFF]

    def test_u64_in_speculative_function(self):
        source = """
        u64 total; u32 n;
        void main() {
            u64 acc = 0;
            for (u32 i = 0; i < n; i += 1) { acc += i; }
            total = acc;
            out((u32)acc);
            out((u32)(acc >> 32));
        }
        """
        for config in (CompilerConfig.baseline(), CompilerConfig.bitspec("max")):
            result = run_machine(source, {"n": 100}, config)
            assert result.output == [4950, 0], config.name
