"""Middle-end passes: simplify, DCE, inline, unroll, CFG prep."""

import pytest

from conftest import run_source
from repro.core import set_global_inputs
from repro.frontend import compile_source, parse
from repro.frontend.codegen import compile_program
from repro.interp import Interpreter
from repro.ir import Constant, verify_module
from repro.ir.instructions import BinOp, Call, Load, Phi, Store
from repro.passes import (
    ExpanderConfig,
    autotune,
    build_module,
    check_prepared,
    eliminate_dead_code_module,
    fold_constants,
    inline_module,
    prepare_cfg_module,
    simplify_module,
    unroll_program,
)


def run_module(module, inputs=None, entry="main"):
    if inputs:
        set_global_inputs(module, inputs)
    return Interpreter(module).run(entry).output


LOOPY = """
u32 data[40];
u32 n;
u32 total;
u32 weigh(u32 v) { return v * 3 + 1; }
void main() {
    u32 s = 0;
    for (u32 i = 0; i < n; i += 1) { s += weigh(data[i]); }
    total = s;
    out(s);
}
"""
LOOPY_INPUTS = {"data": [(i * 13) % 97 for i in range(40)], "n": 40}
LOOPY_EXPECTED = [sum((i * 13) % 97 * 3 + 1 for i in range(40))]


class TestSimplify:
    def test_constant_folding(self):
        module = compile_source(
            "void main() { u32 a = 3; u32 b = 4; out(a * b + 2); }"
        )
        simplify_module(module)
        main = module.function("main")
        binops = [i for i in main.instructions() if isinstance(i, BinOp)]
        assert not binops  # everything folded to the constant 14
        assert run_module(module) == [14]

    def test_identity_folds(self):
        module = compile_source(
            "u32 g; void main() { u32 x = g; out(x + 0); out(x * 1); out(x & 0xFFFFFFFF); out(x ^ x); }"
        )
        simplify_module(module)
        main = module.function("main")
        assert not [i for i in main.instructions() if isinstance(i, BinOp)]
        set_global_inputs(module, {"g": 123})
        assert run_module(module) == [123, 123, 123, 0]

    def test_reassociation_of_add_chains(self):
        module = compile_source("u32 g; void main() { out(g + 1 + 2 + 3); }")
        simplify_module(module)
        adds = [
            i for i in module.function("main").instructions()
            if isinstance(i, BinOp) and i.opcode == "add"
        ]
        assert len(adds) == 1
        assert isinstance(adds[0].rhs, Constant) and adds[0].rhs.value == 6

    def test_constant_branch_folding(self):
        module = compile_source(
            "void main() { if (1) { out(10); } else { out(20); } }"
        )
        simplify_module(module)
        verify_module(module)
        assert len(module.function("main").blocks) == 1
        assert run_module(module) == [10]

    def test_speculative_not_folded(self):
        module = compile_source("void main() { u32 x = 200; out(x + 0); }")
        main = module.function("main")
        for inst in main.instructions():
            if isinstance(inst, BinOp):
                inst.speculative = True
        before = len(main.instructions())
        fold_constants(main)
        assert len(main.instructions()) == before

    def test_semantics_preserved(self):
        module = compile_source(LOOPY)
        simplify_module(module)
        verify_module(module)
        assert run_module(module, LOOPY_INPUTS) == LOOPY_EXPECTED


class TestDCE:
    def test_removes_dead_chains(self):
        module = compile_source(
            "u32 g; void main() { u32 dead = g * 17 + 4; out(g); }"
        )
        removed = eliminate_dead_code_module(module)
        assert removed >= 2
        verify_module(module)

    def test_keeps_side_effects(self):
        module = compile_source("u32 g; void main() { g = 5; out(g); }")
        eliminate_dead_code_module(module)
        main = module.function("main")
        assert [i for i in main.instructions() if isinstance(i, Store)]

    def test_spec_guards_pin_values(self):
        module = compile_source("u32 g; void main() { u32 x = g + 1; out(0); }")
        main = module.function("main")
        add = next(i for i in main.instructions() if isinstance(i, BinOp))
        term = add.parent.terminator or main.blocks[-1].instructions[-1]
        main.blocks[-1].instructions[-1].spec_guards.append(add)
        eliminate_dead_code_module(module)
        assert add.parent is not None  # still in the function


class TestInline:
    def test_inlines_and_preserves_semantics(self):
        module = compile_source(LOOPY)
        count = inline_module(module)
        assert count >= 1
        assert "weigh" not in [
            i.callee
            for f in module.functions.values()
            for i in f.instructions()
            if isinstance(i, Call)
        ]
        verify_module(module)
        assert run_module(module, LOOPY_INPUTS) == LOOPY_EXPECTED

    def test_respects_size_budget(self):
        module = compile_source(LOOPY)
        assert inline_module(module, max_callee_size=1) == 0

    def test_skips_recursion(self):
        module = compile_source(
            """
            u32 fib(u32 n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            void main() { out(fib(10)); }
            """
        )
        inline_module(module)
        verify_module(module)
        assert run_module(module) == [55]

    def test_inlined_allocas_hoisted(self):
        module = compile_source(
            """
            u32 scratchsum(u32 x) {
                u32 buf[4];
                for (u32 i = 0; i < 4; i += 1) { buf[i] = x + i; }
                u32 s = 0;
                for (u32 i = 0; i < 4; i += 1) { s += buf[i]; }
                return s;
            }
            void main() {
                u32 t = 0;
                for (u32 r = 0; r < 50; r += 1) { t += scratchsum(r) & 0xFF; }
                out(t);
            }
            """
        )
        inline_module(module, max_callee_size=200)
        verify_module(module)
        from repro.ir.instructions import Alloca

        main = module.function("main")
        for block in main.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    assert block is main.entry
        expected = sum((4 * r + 6) & 0xFF for r in range(50))
        assert run_module(module) == [expected]


class TestUnroll:
    # literal bound: a global bound could be aliased by the call inside the
    # body, so the unroller conservatively skips it (see test below)
    UNROLLABLE = LOOPY.replace("i < n", "i < 40")

    def _unrolled_output(self, factor):
        program = parse(self.UNROLLABLE)
        count = unroll_program(program, factor=factor, max_loop_size=200)
        module = compile_program(program)
        verify_module(module)
        return count, run_module(module, LOOPY_INPUTS)

    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_semantics_preserved(self, factor):
        count, out = self._unrolled_output(factor)
        assert count >= 1
        assert out == LOOPY_EXPECTED

    def test_non_divisible_trip_counts(self):
        src = """
        u32 n; u32 acc;
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < n; i += 3) { s += i; }
            acc = s; out(s);
        }
        """
        for n in (0, 1, 2, 3, 7, 100):
            program = parse(src)
            unroll_program(program, factor=4, max_loop_size=100)
            module = compile_program(program)
            out = run_module(module, {"n": n})
            assert out == [sum(range(0, n, 3))], n

    def test_skips_loops_with_break(self):
        src = """
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < 10; i += 1) { if (i == 5) { break; } s += i; }
            out(s);
        }
        """
        program = parse(src)
        assert unroll_program(program, factor=4) == 0

    def test_skips_when_bound_assigned(self):
        src = """
        void main() {
            u32 n = 10;
            u32 s = 0;
            for (u32 i = 0; i < n; i += 1) { s += 1; n -= 1; }
            out(s);
        }
        """
        program = parse(src)
        assert unroll_program(program, factor=4) == 0
        module = compile_program(program)
        assert run_module(module) == [5]

    def test_factor_one_is_noop(self):
        program = parse(self.UNROLLABLE)
        assert unroll_program(program, factor=1) == 0

    def test_global_bound_with_call_rejected(self):
        # `n` is a global scalar: the call in the body might change it
        program = parse(LOOPY)
        assert unroll_program(program, factor=4, max_loop_size=200) == 0


class TestCFGPrep:
    PREP_SRC = """
    u32 a[8]; u32 b[8]; u32 n;
    void main() {
        for (u32 i = 0; i < n; i += 1) {
            u32 x = a[i];
            b[i] = x * 2;
            out(x);
        }
    }
    """

    def test_prepared_invariants(self):
        module = compile_source(self.PREP_SRC)
        prepare_cfg_module(module)
        verify_module(module)
        for func in module.functions.values():
            assert check_prepared(func) == []

    def test_semantics_preserved(self):
        inputs = {"a": list(range(8)), "n": 8}
        module = compile_source(self.PREP_SRC)
        prepare_cfg_module(module)
        out = run_module(module, inputs)
        assert out == list(range(8))

    def test_detects_violations(self):
        module = compile_source(self.PREP_SRC)
        problems = []
        for func in module.functions.values():
            problems += check_prepared(func)
        assert problems  # pre-prep code mixes loads/stores/calls


class TestExpanderDriver:
    def test_build_module_runs_whole_pipeline(self):
        module = build_module(LOOPY, ExpanderConfig())
        verify_module(module)
        assert run_module(module, LOOPY_INPUTS) == LOOPY_EXPECTED

    def test_disabled_expander_keeps_calls(self):
        module = build_module(LOOPY, ExpanderConfig.disabled())
        calls = [
            i
            for f in module.functions.values()
            for i in f.instructions()
            if isinstance(i, Call) and i.callee == "weigh"
        ]
        assert calls

    def test_autotune_picks_lower_dynamic_count(self):
        def measure(module):
            set_global_inputs(module, LOOPY_INPUTS)
            interp = Interpreter(module, trace=True)
            interp.run("main")
            return interp.trace.instructions

        best = autotune(LOOPY, measure)
        baseline = measure(build_module(LOOPY, ExpanderConfig(unroll_factor=1)))
        tuned = measure(build_module(LOOPY, best))
        assert tuned <= baseline
