"""Property tests for :mod:`repro.arch.widths`.

The width helpers are the single source of truth shared by the concrete
machine engines, the squeezer and the symbolic executor; a one-bit error
here silently corrupts every layer at once.  These tests pin the helpers
down three ways:

* exhaustively over every representable pattern at the small slice
  widths (w4, w8), plus out-of-range and negative Python ints;
* on boundary grids (around 0, the sign bit, and the wrap point) at w16
  and w32, where exhaustion is too slow;
* cross-checked against the *independent* implementations of the same
  arithmetic: :class:`repro.ir.types.IntType` (``wrap``/``to_signed``)
  and the symbolic executor's lane-wise ``sxt``
  (:func:`repro.verify.domain.sxt`), so the three layers cannot drift.
"""

import pytest

from repro.arch.widths import (
    BYTE_MASKS,
    SLICE_WIDTHS,
    sign_extend,
    slice_bytes,
    slice_mask,
    truncate,
    validate_slice_width,
    zero_extend,
)
from repro.ir.types import int_type
from repro.verify.domain import Vec, sxt

EXHAUSTIVE_WIDTHS = (4, 8)

#: probe values around every interesting edge of a ``bits``-wide domain


def boundary_values(bits):
    top = 1 << bits
    sign = 1 << (bits - 1)
    probes = set()
    for anchor in (0, sign, top - 1, top):
        for delta in (-2, -1, 0, 1, 2):
            probes.add(anchor + delta)
    # far out-of-range on both sides: helpers must wrap, not assert
    probes.update({-top, -top - 3, 3 * top + 5, 1 << 40, -(1 << 40)})
    return sorted(probes)


# -- truncate / zero_extend ------------------------------------------------


@pytest.mark.parametrize("bits", EXHAUSTIVE_WIDTHS)
def test_truncate_exhaustive_matches_ir_wrap(bits):
    ty = int_type(bits)
    for value in range(-(1 << (bits + 2)), 1 << (bits + 2)):
        expected = value & ((1 << bits) - 1)
        assert truncate(value, bits) == expected
        assert truncate(value, bits) == ty.wrap(value)
        # zero_extend is truncate spelled in the widening direction
        assert zero_extend(value, bits) == truncate(value, bits)


@pytest.mark.parametrize("bits", (16, 32))
def test_truncate_boundary_grid(bits):
    ty = int_type(bits)
    for value in boundary_values(bits):
        assert truncate(value, bits) == ty.wrap(value)
        assert 0 <= truncate(value, bits) < (1 << bits)
        assert zero_extend(value, bits) == truncate(value, bits)


def test_truncate_is_idempotent():
    for bits in SLICE_WIDTHS:
        for value in boundary_values(bits):
            once = truncate(value, bits)
            assert truncate(once, bits) == once


# -- sign_extend -----------------------------------------------------------


@pytest.mark.parametrize("bits", EXHAUSTIVE_WIDTHS)
def test_sign_extend_exhaustive_matches_ir_to_signed(bits):
    src = int_type(bits)
    dst = int_type(32)
    for value in range(1 << bits):
        expected = dst.wrap(src.to_signed(value))
        got = sign_extend(value, bits, 32)
        assert got == expected
        # value bits survive the round trip
        assert truncate(got, bits) == value
        # the upper bits replicate the sign bit
        fill = got >> bits
        sign = (value >> (bits - 1)) & 1
        assert fill == (((1 << (32 - bits)) - 1) if sign else 0)


@pytest.mark.parametrize("bits", (16, 32))
def test_sign_extend_boundary_grid(bits):
    src = int_type(bits)
    dst = int_type(32)
    for value in boundary_values(bits):
        assert sign_extend(value, bits, 32) == dst.wrap(
            src.to_signed(src.wrap(value))
        )


def test_sign_extend_to_narrower_rewraps():
    # to_bits below the source width degenerates to plain truncation of
    # the extended pattern — the architectural re-wrap the docstring pins
    assert sign_extend(0xFF, 8, 4) == 0xF
    assert sign_extend(0x80, 8, 8) == 0x80


@pytest.mark.parametrize("bits", EXHAUSTIVE_WIDTHS)
def test_sign_extend_agrees_with_symbolic_sxt(bits):
    """The symbolic executor's lane-wise ``sxt`` is the same function."""
    values = tuple(range(1 << bits))
    lanes = sxt(Vec(values), bits, len(values))
    expected = tuple(sign_extend(v, bits, 32) for v in values)
    got = lanes.vals if isinstance(lanes, Vec) else (lanes,) * len(values)
    assert got == expected
    # scalar (uniform) fast path computes the identical word
    for value in (0, 1, (1 << (bits - 1)), (1 << bits) - 1):
        assert sxt(value, bits, 4) == sign_extend(value, bits, 32)


# -- mask / storage tables -------------------------------------------------


def test_slice_mask_matches_truncate_fixed_points():
    for bits in SLICE_WIDTHS:
        mask = slice_mask(bits)
        assert mask == (1 << bits) - 1
        assert truncate(mask, bits) == mask
        assert truncate(mask + 1, bits) == 0


def test_slice_bytes_rounds_up_to_storage_cells():
    assert [slice_bytes(b) for b in SLICE_WIDTHS] == [1, 1, 2, 4]
    for bits in SLICE_WIDTHS:
        cell = slice_bytes(bits)
        assert cell in BYTE_MASKS
        # the byte cell always covers the value mask
        assert slice_mask(bits) <= BYTE_MASKS[cell]


def test_validate_slice_width_rejects_unsupported():
    for bits in SLICE_WIDTHS:
        assert validate_slice_width(bits) == bits
    for bad in (0, 1, 3, 7, 12, 24, 33, 64):
        with pytest.raises(ValueError, match="unsupported slice width"):
            validate_slice_width(bad)
