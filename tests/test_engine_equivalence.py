"""The cross-engine differential matrix: four engines, one semantics.

This is the enforcement arm of the four-engine contract (docs/engines.md):
the legacy interpreter, the predecoded fast path and the compiled template
JIT must be *bit-identical* on every observable — ``SimResult`` aggregates
and energy counters, final memory images, per-pc observability samples,
and fault-injection classification matrices — while the out-of-order
engine (:mod:`repro.arch.ooo`), whose cycles and energy belong to its own
timing model, must match the *committed* architectural view: traps, out
stream, memory image, committed instruction/misspeculation counts.

Coverage axes:

* the full fuzz corpus under three configs (full matrix ``slow``; a
  three-program smoke slice always runs);
* the full 14-workload benchmark roster under T=MAX (``slow``; a
  three-workload slice always runs);
* a DSE smoke grid routed through :func:`repro.dse.runner.evaluate_points`
  — the emitted rows must not depend on the engine;
* the fault-injection kind×seed parity grid — the canonical FAULTS JSON
  must be byte-identical across engines;
* per-pc observability: compiled-engine samples re-sum through
  ``check_conservation`` integer-exactly, and equal the fast path's
  array-for-array on corpus programs.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.arch.machine import Machine
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval.harness import get_binary
from repro.fuzz.corpus import load_program
from repro.passes.expander import ExpanderConfig
from repro.workloads import get_workload

from test_machine_predecode import assert_engine_matches, assert_sims_identical

CORPUS_DIR = Path(__file__).parent / "corpus"

#: every saved corpus program, regressions included
FULL_CORPUS = tuple(sorted(p.stem for p in CORPUS_DIR.glob("*.json")))

SMOKE_CORPUS = ("seed000", "seed009", "regression-shl-slice-carry")

SMOKE_WORKLOADS = ("crc32", "sha", "bitcount")

CONFIGS = (
    CompilerConfig.baseline(),
    CompilerConfig.bitspec("max"),
    CompilerConfig.thumb(),
)

#: the ≥4 observability conservation cells (workload × config)
OBS_CELLS = (
    ("crc32", "max"),
    ("crc32", "avg"),
    ("sha", "max"),
    ("bitcount", "min"),
)


def _corpus_binary(name: str, config: CompilerConfig):
    program = load_program(CORPUS_DIR / f"{name}.json")
    expander = (
        ExpanderConfig() if program.expander_enabled else ExpanderConfig.disabled()
    )
    config = dataclasses.replace(config, expander=expander)
    binary = compile_binary(
        program.source, config, profile_inputs=program.inputs_profile
    )
    return binary, program.inputs_run


def _run(binary, inputs, engine: str, obs: bool = False):
    if inputs:
        set_global_inputs(binary.module, inputs)
    return Machine(binary.linked, binary.module, engine=engine, obs=obs).run()


def _assert_all_engines_identical(binary, inputs, label: str) -> None:
    ref = _run(binary, inputs, "fast")
    for engine in ("legacy", "compiled", "ooo"):
        assert_engine_matches(
            _run(binary, inputs, engine), ref, engine, f"{label}/{engine}"
        )


# -- corpus matrix ------------------------------------------------------------


@pytest.mark.parametrize("name", SMOKE_CORPUS)
def test_corpus_smoke_all_engines(name):
    binary, inputs = _corpus_binary(name, CompilerConfig.bitspec("max"))
    _assert_all_engines_identical(binary, inputs, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", FULL_CORPUS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_corpus_full_all_engines(name, config):
    binary, inputs = _corpus_binary(name, config)
    _assert_all_engines_identical(binary, inputs, f"{name}/{config.name}")


# -- workload roster ----------------------------------------------------------


@pytest.mark.parametrize("workload_name", SMOKE_WORKLOADS)
def test_workload_smoke_compiled_vs_fast(workload_name):
    config = CompilerConfig.bitspec("max")
    binary = get_binary(workload_name, config)
    inputs = get_workload(workload_name).inputs("test", 0)
    ref = _run(binary, inputs, "fast")
    assert_sims_identical(
        _run(binary, inputs, "compiled"), ref, f"{workload_name}/compiled"
    )


def test_workload_smoke_ooo_committed():
    """One smoke workload pins the OoO committed contract in tier-1."""
    config = CompilerConfig.bitspec("max")
    binary = get_binary("crc32", config)
    inputs = get_workload("crc32").inputs("test", 0)
    ref = _run(binary, inputs, "fast")
    sim = _run(binary, inputs, "ooo")
    assert_engine_matches(sim, ref, "ooo", "crc32/ooo")
    # the timing model is genuinely different, not a relabeled in-order run
    assert sim.cycles != ref.cycles
    assert sim.ooo.fetched_uops >= sim.instructions


@pytest.mark.slow
def test_workload_roster_all_engines():
    """All 14 benchmark workloads, every engine vs the fast path."""
    from repro.eval.harness import BENCHMARKS

    config = CompilerConfig.bitspec("max")
    for workload_name in BENCHMARKS:
        binary = get_binary(workload_name, config)
        inputs = get_workload(workload_name).inputs("test", 0)
        ref = _run(binary, inputs, "fast")
        assert ref.instructions > 0
        for engine in ("legacy", "compiled", "ooo"):
            assert_engine_matches(
                _run(binary, inputs, engine), ref, engine,
                f"{workload_name}/{engine}",
            )


# -- observability ------------------------------------------------------------


@pytest.mark.parametrize("workload_name,heuristic", OBS_CELLS,
                         ids=[f"{w}-{h}" for w, h in OBS_CELLS])
def test_obs_conservation_on_compiled(workload_name, heuristic):
    """Compiled per-pc tallies re-sum to the SimResult aggregates exactly."""
    from repro.obs.attribution import attribute, check_conservation

    config = CompilerConfig.bitspec(heuristic)
    binary = get_binary(workload_name, config)
    inputs = get_workload(workload_name).inputs("test", 0)
    sim = _run(binary, inputs, "compiled", obs=True)
    assert sim.obs is not None
    mismatches = check_conservation(attribute(binary.linked, sim.obs), sim)
    assert mismatches == [], f"{workload_name}/{heuristic}: {mismatches}"


@pytest.mark.parametrize("name", SMOKE_CORPUS)
def test_obs_trace_equivalence_compiled_vs_fast(name):
    """PcSample arrays equal element-for-element, not just in aggregate."""
    from repro.obs.events import PcSample

    binary, inputs = _corpus_binary(name, CompilerConfig.bitspec("max"))
    fast = _run(binary, inputs, "fast", obs=True)
    compiled = _run(binary, inputs, "compiled", obs=True)
    assert fast.obs is not None and compiled.obs is not None
    for f in dataclasses.fields(PcSample):
        a, b = getattr(compiled.obs, f.name), getattr(fast.obs, f.name)
        assert a == b, f"{name}: obs.{f.name} differs"


# -- DSE smoke grid -----------------------------------------------------------


def test_dse_smoke_grid_engine_invariant():
    """evaluate_points emits identical rows whichever engine simulates."""
    from repro.dse.runner import evaluate_points
    from repro.dse.space import SpecSpace

    space = SpecSpace(slice_width=(8, 32), l1_kb=(4, 8))
    rows = {}
    for engine in ("fast", "compiled"):
        rows[engine] = [
            r.as_dict()
            for r in evaluate_points(
                space.points(), ("crc32",), jobs=1, engine=engine
            )
        ]
    assert rows["fast"] == rows["compiled"]
    assert all(r["status"] == "ok" for r in rows["fast"])
    assert len(rows["fast"]) == space.size


# -- fault-injection parity ---------------------------------------------------


def test_fault_campaign_kind_seed_parity():
    """The kind×seed grid classifies identically and serializes
    byte-identically whichever engine executes the faulted runs."""
    from repro.faults.campaign import run_campaign, to_canonical_json
    from repro.faults.plan import FAULT_KINDS

    documents = {}
    for engine in ("fast", "compiled"):
        documents[engine] = to_canonical_json(
            run_campaign(
                workloads=("crc32",),
                config_names=("bitspec-max",),
                kinds=FAULT_KINDS,
                seed=0,
                per_kind=2,
                jobs=1,
                engine=engine,
            )
        )
    assert documents["fast"] == documents["compiled"]
    assert '"engine"' not in documents["fast"]  # engines never leak into FAULTS json


@pytest.mark.slow
def test_fault_replay_corpus_parity():
    from repro.faults.campaign import replay_corpus, to_canonical_json

    documents = {
        engine: to_canonical_json(
            replay_corpus(CORPUS_DIR, count=2, per_kind=1, seed=0, engine=engine)
        )
        for engine in ("fast", "compiled")
    }
    assert documents["fast"] == documents["compiled"]
