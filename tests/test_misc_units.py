"""Smaller units: printers/dumps, MIR containers, move sequencing, caches."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cache import Cache
from repro.backend.mir import (
    FrameSlot,
    GlobalRef,
    Imm,
    MachineBlock,
    MachineFunction,
    MachineInst,
    MachineProgram,
    Slice,
    VReg,
)
from repro.backend.regalloc import Interval, _sequence_moves
from repro.core import CompilerConfig, compile_binary
from repro.frontend import compile_source
from repro.ir import print_function, print_module


class TestPrinters:
    def test_ir_printer_covers_instructions(self):
        module = compile_source(
            """
            u32 g[4];
            u32 f(u32 x) { return x > 2 ? g[x] : x * 2; }
            void main() {
                for (u32 i = 0; i < 4; i += 1) { g[i] = f(i); }
                out(g[3]);
            }
            """
        )
        text = print_module(module)
        for needle in ("define", "phi", "br", "ret", "call", "gep", "load", "store"):
            assert needle in text

    def test_machine_dump(self):
        binary = compile_binary(
            "void main() { u32 x = 0; do { x += 1; } while (x < 300); out(x); }",
            CompilerConfig.bitspec("min"),
        )
        text = binary.linked.dump(0, 200)
        assert "!spec" in text or "bs_" in text

    def test_mir_repr(self):
        inst = MachineInst(
            "bs_add",
            [Slice(3, 1, 1)],
            [Slice(4, 0, 1), Imm(5)],
            width=1,
            speculative=True,
        )
        text = repr(inst)
        assert "bs_add" in text and "r3.b1:1" in text and "#5" in text
        assert "!spec" in text and ";8b" in text

    def test_mir_factories(self):
        func = MachineFunction("f")
        v1 = func.new_vreg(4, "x")
        v2 = func.new_vreg(1)
        assert v1.id != v2.id and v2.size == 1
        slot = func.new_slot(8)
        assert isinstance(slot, FrameSlot) and slot.size == 8
        block = func.add_block("b")
        block.append(MachineInst("nop"))
        assert func.instruction_count() == 1
        program = MachineProgram("p", "ARM")
        program.add_function(func)
        assert "nop" in program.dump()


class TestIntervalSegments:
    def test_overlap_detection(self):
        a = Interval(VReg(0, 4))
        a.add_segment(0, 5)
        a.add_segment(10, 15)
        b = Interval(VReg(1, 4))
        b.add_segment(6, 9)
        assert not a.overlaps(b)
        c = Interval(VReg(2, 4))
        c.add_segment(4, 7)
        assert a.overlaps(c)

    def test_adjacent_segments_merge(self):
        iv = Interval(VReg(0, 4))
        iv.add_segment(0, 4)
        iv.add_segment(5, 9)  # adjacent: coalesces
        assert iv.segments == [(0, 9)]
        iv.add_segment(20, 22)
        assert len(iv.segments) == 2
        assert iv.start == 0 and iv.end == 22
        assert iv.weight == 13

    def test_covers(self):
        iv = Interval(VReg(0, 1))
        iv.add_segment(3, 6)
        assert iv.covers(3) and iv.covers(6)
        assert not iv.covers(7)


class TestSequenceMoves:
    @settings(max_examples=60, deadline=None)
    @given(
        perm=st.permutations(list(range(5))),
        values=st.lists(
            st.integers(0, 2**32 - 1), min_size=5, max_size=5
        ),
    )
    def test_permutation_moves_correct(self, perm, values):
        """Property: sequencing a register permutation preserves values."""
        moves = [(Slice(dst, 0, 4), Slice(src, 0, 4)) for dst, src in enumerate(perm)]
        insts = _sequence_moves(moves)
        regs = {i: values[i] for i in range(5)}
        regs[12] = 0xDEAD  # scratch starts undefined; use a sentinel

        for inst in insts:
            assert inst.opcode == "mov"
            src = inst.uses[0]
            dst = inst.defs[0]
            regs[dst.reg] = regs[src.reg]
        for dst, src in enumerate(perm):
            assert regs[dst] == values[src], (perm, insts)


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(addresses=st.lists(st.integers(0, 2**16), min_size=1, max_size=200))
    def test_second_access_always_hits(self, addresses):
        cache = Cache(8 * 1024, 4)
        for addr in addresses:
            cache.lookup(addr)
            cache.reset_fastpath()
            assert cache.lookup(addr)  # immediately re-accessed: resident
            cache.reset_fastpath()

    @settings(max_examples=20, deadline=None)
    @given(addresses=st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    def test_stats_are_consistent(self, addresses):
        cache = Cache(8 * 1024, 4)
        for addr in addresses:
            cache.lookup(addr)
        assert cache.stats.accesses == len(addresses)
        assert 0 <= cache.stats.misses <= cache.stats.accesses
