"""Replay the checked-in fuzz corpus through the full oracle stack.

Every entry in ``tests/corpus/`` must agree across all ten oracle levels
(AST reference, IR interpreter, squeezed-SIR interpreter x3, machine
BASELINE/BITSPEC x3/THUMB) and satisfy the per-run invariants (stage
verification, energy accounting, profile==run zero-misspeculation).
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import iter_corpus, program_to_dict
from repro.fuzz.oracles import ALL_LEVELS, run_oracles

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def reports():
    """One oracle-stack run per entry, shared by every test in the module."""
    return {path.name: run_oracles(program) for path, program in iter_corpus(CORPUS_DIR)}


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 10, "seed corpus should hold at least 10 programs"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_passes_all_oracles(path, reports):
    report = reports[path.name]
    assert report.ok, f"{path.name}: {report.summary()}\n{report.error or ''}"
    for level in ALL_LEVELS:
        assert level in report.outputs, f"{path.name}: level {level} missing"
    assert report.outputs["ref"], f"{path.name}: program produced no output"


def test_corpus_exercises_misspeculation(reports):
    """At least one entry misspeculates, so the Δ-handler re-execution
    machinery (not just the happy path) is on the replayed semantics."""
    totals = {
        name: sum(report.misspeculations.values())
        for name, report in reports.items()
    }
    assert any(count > 0 for count in totals.values()), totals


def test_corpus_round_trips():
    for path, program in iter_corpus(CORPUS_DIR):
        data = program_to_dict(program, name=path.stem)
        assert data["source"] == program.source
        assert data["inputs_run"] == program.inputs_run
        assert data["inputs_profile"] == program.inputs_profile


def test_iter_corpus_skips_truncated_entry_with_warning(tmp_path):
    """A torn file (killed writer) warns and skips; good entries survive."""
    good = CORPUS_DIR / ENTRIES[0].name
    (tmp_path / "aaa-good.json").write_text(good.read_text())
    # truncate a valid entry mid-document, as a SIGKILL'd writer would
    (tmp_path / "bbb-torn.json").write_text(good.read_text()[:40])
    with pytest.warns(UserWarning, match="bbb-torn"):
        loaded = list(iter_corpus(tmp_path))
    assert [p.name for p, _ in loaded] == ["aaa-good.json"]


def test_iter_corpus_skips_schema_violations_with_warning(tmp_path):
    good = CORPUS_DIR / ENTRIES[0].name
    (tmp_path / "aaa-good.json").write_text(good.read_text())
    (tmp_path / "bbb-list.json").write_text("[1, 2, 3]\n")
    (tmp_path / "ccc-nosource.json").write_text('{"format": 1, "seed": 0}\n')
    with pytest.warns(UserWarning) as caught:
        loaded = list(iter_corpus(tmp_path))
    assert [p.name for p, _ in loaded] == ["aaa-good.json"]
    warned = "".join(str(w.message) for w in caught)
    assert "bbb-list" in warned and "ccc-nosource" in warned
