"""The repro.dse contract: anchors, monotonicity, reproducibility, CLI.

Four families:

* **anchor identities** — the width-32 design point reproduces BASELINE
  event counts bit-for-bit, and the all-defaults point reproduces the
  BITSPEC headline numbers unchanged (the sweep is anchored to the
  paper at both ends);
* **metamorphic** — on a corpus of generated fuzz programs, widening the
  slice can only reduce misspeculations (a wider slice accepts a
  superset of values), and never changes program output;
* **reproducibility** — a sweep document is a pure function of its
  inputs: rerunning against a warm disk cache yields byte-identical
  JSON;
* **mechanics** — space enumeration, search strategies, Pareto/best/
  sensitivity folds, the obs-backed ``--explain``, and the CLI.
"""

import dataclasses
import json

import pytest

from repro.arch.energy import EnergyCounters
from repro.arch.machine import SimResult
from repro.core.pipeline import CompilerConfig, compile_binary
from repro.dse import (
    PRESETS,
    PointRow,
    SpecPoint,
    SpecSpace,
    explain_point,
    pareto_front,
    run_sweep,
)
from repro.dse.__main__ import main as dse_main
from repro.dse.search import random_search, successive_halving
from repro.eval import harness
from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import _expander


@pytest.fixture(autouse=True)
def _reset_disk_cache():
    """dse entry points may install a disk cache; never leak it."""
    yield
    harness.set_disk_cache(None)


def _sims_identical(a, b) -> None:
    """Assert two SimResults agree on every persisted field, bit for bit."""
    for f in dataclasses.fields(SimResult):
        if f.name in ("memory", "obs", "dts_energy", "slice_width"):
            continue  # engine/observer state, not event counts
        if f.name == "counters":
            for cf in dataclasses.fields(EnergyCounters):
                assert getattr(a.counters, cf.name) == getattr(
                    b.counters, cf.name
                ), f"counters.{cf.name} diverged"
            continue
        assert getattr(a, f.name) == getattr(b, f.name), f"{f.name} diverged"


# ---------------------------------------------------------------------------
# anchor identities
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["crc32", "sha"])
def test_width32_point_matches_baseline_exactly(workload):
    """Slice width 32 IS the BASELINE build — event counts bit-for-bit."""
    point = harness.run(workload, SpecPoint(slice_width=32).to_config())
    base = harness.run(workload, CompilerConfig.baseline())
    _sims_identical(point.sim, base.sim)
    assert point.total_energy == base.total_energy


@pytest.mark.parametrize("workload", ["crc32", "sha"])
def test_default_point_matches_bitspec_headline(workload):
    """The all-defaults point IS BITSPEC — headline numbers unchanged."""
    point = harness.run(workload, SpecPoint().to_config())
    spec = harness.run(workload, CompilerConfig.bitspec("max"))
    _sims_identical(point.sim, spec.sim)
    assert point.total_energy == spec.total_energy


# ---------------------------------------------------------------------------
# metamorphic: slice width monotonicity on the fuzz corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [5, 12, 17, 24, 26])
def test_misspecs_monotone_nonincreasing_in_slice_width(seed):
    """With the squeezed set held fixed, a wider slice accepts a superset
    of values, so widening can only remove misspeculations — and output
    is invariant throughout.

    The set must be held fixed via ``confidence_margin`` (each pair
    selects exactly the profiled-bw ≤ 4 definitions): raw widths change
    *which* variables get squeezed (bw 5–8 squeezes at width 8 but not
    at width 4), which breaks naive per-width monotonicity.
    """
    program = generate_program(seed)
    expander = _expander(program)
    misspecs = {}
    outputs = {}
    for width, margin in ((4, 0), (8, 4), (16, 12), (32, 0)):
        config = CompilerConfig.bitspec(
            "max",
            expander=expander,
            slice_width=width,
            confidence_margin=margin,
        )
        binary = compile_binary(
            program.source, config, profile_inputs=program.inputs_profile
        )
        sim = binary.run(program.inputs_run)
        misspecs[width] = sim.misspeculations
        outputs[width] = sim.output
    assert misspecs[4] >= misspecs[8] >= misspecs[16] >= misspecs[32]
    assert misspecs[4] > 0, "seed chosen to actually misspeculate at w4"
    assert misspecs[32] == 0  # nothing is narrower than a register
    assert outputs[4] == outputs[8] == outputs[16] == outputs[32]


# ---------------------------------------------------------------------------
# reproducibility: warm-cache sweeps are byte-identical
# ---------------------------------------------------------------------------


def test_sweep_json_reproducible_against_warm_cache(tmp_path):
    space, workloads = PRESETS["smoke"]
    cache_dir = tmp_path / "cache"
    kwargs = dict(preset="smoke", jobs=1, cache_dir=cache_dir)
    cold = run_sweep(space, workloads, **kwargs).to_json()
    harness.set_disk_cache(None)
    harness.clear_caches()  # fresh process, warm disk
    warm = run_sweep(space, workloads, **kwargs).to_json()
    assert cold == warm
    document = json.loads(warm)
    assert document["evaluations"] == space.size * len(workloads)
    assert all(r["status"] == "ok" for r in document["rows"])


# ---------------------------------------------------------------------------
# the space
# ---------------------------------------------------------------------------


def test_mini_preset_meets_sweep_floor():
    space, workloads = PRESETS["mini"]
    assert space.size >= 24
    assert len(workloads) >= 2


def test_point_labels_are_unique_per_space():
    for name, (space, _workloads) in PRESETS.items():
        labels = [p.label() for p in space.points()]
        assert len(set(labels)) == len(labels), f"{name} labels collide"


def test_point_dict_round_trip():
    point = SpecPoint(
        slice_width=16, squeeze_ops=("add", "xor"), min_hotness=0.1,
        confidence_margin=1, dts=True, l1_kb=4,
    )
    assert SpecPoint.from_dict(point.as_dict()) == point


def test_space_rejects_unknown_and_invalid():
    with pytest.raises(ValueError):
        SpecSpace(not_a_knob=(1, 2))
    with pytest.raises(ValueError):
        SpecSpace(slice_width=(7,))
    with pytest.raises(ValueError):
        SpecSpace(slice_width=())


def test_points_enumeration_is_deterministic():
    space = SpecSpace(slice_width=(8, 16), l1_kb=(4, 8))
    assert [p.label() for p in space.points()] == [
        p.label() for p in space.points()
    ]
    assert len(space.points()) == space.size == 4


# ---------------------------------------------------------------------------
# analysis folds
# ---------------------------------------------------------------------------


def _row(width, workload="w", energy=1.0, cycles=100, misspecs=0, status="ok"):
    return PointRow(
        point=SpecPoint(slice_width=width),
        workload=workload,
        status=status,
        instructions=1000,
        cycles=cycles,
        misspeculations=misspecs,
        energy_pj=energy,
    )


def test_pareto_front_drops_dominated_and_failed():
    dominated = _row(4, energy=2.0, cycles=200, misspecs=5)
    winner = _row(8, energy=1.0, cycles=100)
    failed = _row(16, energy=0.1, cycles=1, status="failed")
    front = pareto_front([dominated, winner, failed])
    assert front == [winner]


def test_pareto_front_keeps_tradeoffs():
    fast = _row(4, energy=2.0, cycles=50)
    frugal = _row(8, energy=1.0, cycles=100)
    front = pareto_front([fast, frugal])
    assert set(id(r) for r in front) == {id(fast), id(frugal)}


# ---------------------------------------------------------------------------
# search strategies
# ---------------------------------------------------------------------------


def test_random_search_is_seeded_and_bounded(tmp_path):
    space = SpecSpace(slice_width=(8, 32), l1_kb=(4, 8))
    rows1, n1 = random_search(
        space, ("crc32",), n=2, seed=7, cache_dir=tmp_path / "c"
    )
    harness.set_disk_cache(None)
    rows2, n2 = random_search(
        space, ("crc32",), n=2, seed=7, cache_dir=tmp_path / "c"
    )
    assert n1 == n2 == 2
    assert [r.point for r in rows1] == [r.point for r in rows2]


def test_successive_halving_prunes_to_full_roster(tmp_path):
    space = SpecSpace(slice_width=(4, 8, 16, 32))
    workloads = ("crc32", "sha", "bitcount")
    rows, evaluations = successive_halving(
        space, workloads, eta=2, cache_dir=tmp_path / "c"
    )
    survivors = {r.point for r in rows}
    # the final rung measures every survivor on the full roster
    assert len(rows) == len(survivors) * len(workloads)
    assert len(survivors) < space.size
    assert evaluations > len(rows)  # earlier rungs did real (cached) work


# ---------------------------------------------------------------------------
# explain: obs attribution of the winner
# ---------------------------------------------------------------------------


def test_explain_attributes_delta_and_conserves():
    explanation = explain_point(SpecPoint(), "sha")
    assert explanation["conservation_violations"] == []
    assert explanation["winner"] == "dse-w8"
    assert explanation["reference"] == "dse-w32"
    assert explanation["savings"] > 0
    assert explanation["movers"], "no per-variable movers reported"
    # movers must re-sum toward the total delta's sign
    assert any(m["delta_pj"] < 0 for m in explanation["movers"])
    assert explanation["regions"], "winner has speculative regions"


# ---------------------------------------------------------------------------
# the figure
# ---------------------------------------------------------------------------


def test_fig_dse_tradeoff_normalizes_to_width32():
    from repro.eval.figures import fig_dse_tradeoff

    fig = fig_dse_tradeoff(benchmarks=("sha",), widths=(8, 32))
    by_width = {r["slice_width"]: r for r in fig["rows"]}
    assert by_width[32]["energy_rel"] == 1.0
    assert by_width[8]["energy_rel"] < 1.0  # sha's headline saving
    assert fig["best_width"] == 8


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_sweep_pareto_best_explain(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert dse_main(["sweep", "--preset", "smoke", "--jobs", "1", "--quiet"]) == 0
    harness.set_disk_cache(None)
    harness.clear_caches()
    document = json.loads((tmp_path / "DSE_smoke.json").read_text())
    assert {"rows", "pareto", "best", "sensitivity"} <= set(document)
    assert "generated" not in document  # determinism: no timestamps

    # --check: the warm rerun must reproduce the file byte-identically
    assert dse_main(
        ["sweep", "--preset", "smoke", "--jobs", "1", "--quiet", "--check"]
    ) == 0
    harness.set_disk_cache(None)
    out = capsys.readouterr().out
    assert "reproduced byte-identically" in out

    assert dse_main(["pareto", "--preset", "smoke"]) == 0
    assert "non-dominated" in capsys.readouterr().out

    assert dse_main(["best", "--preset", "smoke", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "best config" in out
    assert "saves" in out  # at least one winner was attributed
