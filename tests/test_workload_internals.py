"""Unit tests of workload oracles and generators (the substrate's substrate)."""

import math

import pytest

from repro.workloads.base import XorShift
from repro.workloads.basicmath import _icbrt, _isqrt
from repro.workloads.blowfish import _encrypt, _feistel_tables
from repro.workloads.crc32 import _crc32_py
from repro.workloads.fft import _fft_fixed, _twiddles
from repro.workloads.patricia import _PyPatricia
from repro.workloads.rijndael import _expand_key, encrypt_block_words
from repro.workloads.susan import DIM, _brightness_lut, make_image


class TestBasicmathOracles:
    @pytest.mark.parametrize("x", [0, 1, 2, 3, 4, 15, 16, 17, 10**6, 2**24 - 1])
    def test_isqrt_exact(self, x):
        assert _isqrt(x) == math.isqrt(x)

    @pytest.mark.parametrize("x", [0, 1, 7, 8, 9, 26, 27, 28, 2**24 - 1])
    def test_icbrt_floor(self, x):
        r = _icbrt(x)
        assert r**3 <= x < (r + 1) ** 3


class TestCryptoOracles:
    def test_blowfish_tables_deterministic(self):
        s1, p1 = _feistel_tables(7)
        s2, p2 = _feistel_tables(7)
        assert s1 == s2 and p1 == p2
        s3, _ = _feistel_tables(8)
        assert s1 != s3

    def test_blowfish_diffusion(self):
        sbox, parr = _feistel_tables(1)
        a = _encrypt(sbox, parr, 0, 0)
        b = _encrypt(sbox, parr, 1, 0)
        assert a != b
        assert all(0 <= w <= 0xFFFFFFFF for w in a + b)

    def test_aes_key_expansion_length(self):
        rk = _expand_key(list(range(16)))
        assert len(rk) == 44
        assert all(0 <= w <= 0xFFFFFFFF for w in rk)

    def test_aes_block_is_permutation_like(self):
        rk = _expand_key(list(range(16)))
        a = encrypt_block_words([0, 0, 0, 0], rk)
        b = encrypt_block_words([1, 0, 0, 0], rk)
        assert a != b

    def test_crc32_incrementality_sanity(self):
        assert _crc32_py([]) == 0
        assert _crc32_py([0]) != _crc32_py([1])


class TestFFT:
    def test_twiddles_q14(self):
        cos_t, sin_t = _twiddles()
        assert cos_t[0] == 1 << 14 and sin_t[0] == 0
        assert all(abs(v) <= (1 << 14) for v in cos_t + sin_t)

    def test_impulse_response_flat(self):
        """FFT of an impulse is a flat spectrum (constant real part)."""
        n = 64
        re = [1 << 10] + [0] * (n - 1)
        im = [0] * n
        re, im = _fft_fixed(re, im, n)
        assert all(r == 1 << 10 for r in re)
        assert all(i == 0 for i in im)

    def test_dc_signal_concentrates(self):
        n = 64
        re = [100] * n
        im = [0] * n
        re, im = _fft_fixed(re, im, n)
        assert re[0] == 100 * n
        assert all(abs(r) <= 2 for r in re[1:])  # rounding dust only


class TestPatricia:
    def test_insert_then_lookup(self):
        trie = _PyPatricia()
        keys = [0xC0A80001, 0xC0A80002, 0x0A000001, 0xFFFFFFFF]
        for key in keys:
            trie.insert(key)
        for key in keys:
            assert trie.key[trie.lookup(key)] == key

    def test_duplicates_not_reinserted(self):
        trie = _PyPatricia()
        trie.insert(42)
        size = len(trie.key)
        trie.insert(42)
        assert len(trie.key) == size

    def test_missing_key_not_found(self):
        trie = _PyPatricia()
        trie.insert(0xAAAAAAAA)
        assert trie.key[trie.lookup(0x55555555)] != 0x55555555


class TestSusanHelpers:
    def test_brightness_lut_shape(self):
        lut = _brightness_lut(20)
        assert len(lut) == 511
        assert lut[255] == 100  # identical brightness: full weight
        assert lut[0] == 0 and lut[510] == 0  # extreme contrast: none
        assert lut == lut[::-1]  # symmetric in |delta|

    def test_make_image_bounds(self):
        image = make_image(XorShift(3), amplitude=90)
        assert len(image) == DIM * DIM
        assert all(0 <= p <= 90 for p in image)

    def test_images_vary_by_seed(self):
        assert make_image(XorShift(1)) != make_image(XorShift(2))


class TestXorShift:
    def test_never_zero_state(self):
        rng = XorShift(0)  # zero seed coerced to nonzero
        assert any(rng.next() for _ in range(8))

    def test_below_in_range(self):
        rng = XorShift(9)
        for _ in range(100):
            assert 0 <= rng.below(7) < 7

    def test_bytes_bound(self):
        rng = XorShift(5)
        data = rng.bytes(64, bound=16)
        assert len(data) == 64 and all(0 <= b < 16 for b in data)
