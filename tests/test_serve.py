"""Tests for repro.serve: schema, quotas, coalescing, byte-identity.

The server tests run the full asyncio stack (real sockets on an
ephemeral port) but in ``workers=0`` inline mode, so no worker processes
are spawned and the suite stays fast.  Each async scenario is a plain
sync test wrapping ``asyncio.run`` — no pytest-asyncio dependency.
"""

import asyncio
import json

import pytest

from repro.serve.client import http_request, submit_report
from repro.serve.report import execute_request
from repro.serve.schema import (
    RequestValidationError,
    build_config,
    request_key,
    validate_request,
)
from repro.serve.server import ERROR_CODES, ReproServer, ServeConfig, canonical_body

GOOD_SOURCE = """u32 in0;
u32 acc;

void main()
{
    acc = (in0 * 3) + 7;
    out(((u32)acc));
}
"""

BAD_SOURCE = "int main() { return 0; }\n"  # not MiniC: parse error


def good_doc(**overrides):
    doc = {
        "tenant": "alice",
        "source": GOOD_SOURCE,
        "config": {"preset": "bitspec-max"},
        "inputs": {"profile": {"in0": 5, "acc": 0}, "run": {"in0": 9, "acc": 0}},
        "report": {"attribution": True, "pareto": False},
    }
    doc.update(overrides)
    return doc


def serve_config(tmp_path, **overrides):
    defaults = dict(
        port=0,
        workers=0,
        cache_dir=str(tmp_path / "cache"),
        quota_capacity=0.0,  # quotas off unless a test turns them on
        max_queue=8,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def _with_server(config, body, *, clock=None):
    server = ReproServer(config, clock=clock)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


# -- schema / request key ------------------------------------------------------


class TestSchema:
    def test_valid_document_canonicalizes(self):
        canonical = validate_request(good_doc())
        assert canonical["tenant"] == "alice"
        assert canonical["config"]["preset"] == "bitspec-max"
        assert canonical["report"]["top"] == 10  # default applied

    def test_missing_source_collects_error_path(self):
        doc = good_doc()
        del doc["source"]
        with pytest.raises(RequestValidationError) as excinfo:
            validate_request(doc)
        assert any(e["path"] == "source" for e in excinfo.value.errors)

    def test_multiple_errors_reported_together(self):
        doc = good_doc(tenant="bad tenant!", config={"preset": "no-such"})
        doc["report"] = {"top": 0}
        with pytest.raises(RequestValidationError) as excinfo:
            validate_request(doc)
        paths = {e["path"] for e in excinfo.value.errors}
        assert {"tenant", "config.preset", "report.top"} <= paths

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(RequestValidationError):
            validate_request(good_doc(surprise=1))

    def test_non_integer_inputs_rejected(self):
        doc = good_doc()
        doc["inputs"] = {"profile": {"in0": "five"}, "run": {}}
        with pytest.raises(RequestValidationError):
            validate_request(doc)

    def test_key_excludes_tenant(self):
        a = validate_request(good_doc(tenant="alice"))
        b = validate_request(good_doc(tenant="bob"))
        assert request_key(a) == request_key(b)

    def test_key_excludes_engine_spelling(self):
        keys = {
            request_key(validate_request(good_doc(engine=engine)))
            for engine in ("legacy", "fast", "compiled", "ooo")
        }
        keys.add(request_key(validate_request(good_doc())))
        assert len(keys) == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            validate_request(good_doc(engine="warp"))
        assert any(e["path"] == "engine" for e in excinfo.value.errors)

    def test_key_dedupes_preset_and_knob_spellings(self):
        # the knob defaults ARE bitspec-max, so the fully-spelled-out
        # document must content-address to the same key as the preset
        preset = validate_request(good_doc())
        knobs = good_doc()
        knobs["config"] = {
            "slice_width": 8,
            "heuristic": "max",
            "squeeze_ops": "all",
            "min_hotness": 0.0,
            "confidence_margin": 0,
            "dts": False,
        }
        assert request_key(validate_request(knobs)) == request_key(preset)
        # the resolved configs are semantically identical (squeeze_ops is
        # a set; spelling order must not split the address)
        preset_cfg = build_config(preset["config"])
        knob_cfg = build_config(validate_request(knobs)["config"])
        assert set(preset_cfg.squeeze_ops) == set(knob_cfg.squeeze_ops)

    def test_key_differs_across_configs(self):
        a = validate_request(good_doc(config={"preset": "bitspec-max"}))
        b = validate_request(good_doc(config={"preset": "baseline"}))
        assert request_key(a) != request_key(b)


# -- pure execution ------------------------------------------------------------


class TestExecuteRequest:
    def test_report_sections(self):
        canonical = validate_request(good_doc())
        envelope = execute_request(canonical, request_key(canonical))
        assert envelope["status"] == 200 and envelope["cacheable"]
        body = envelope["body"]
        assert body["result"]["output"] == [9 * 3 + 7]
        assert body["result"]["energy_total_pj"] > 0
        assert body["compile"]["isa"]
        assert "by_variable" in body["attribution"]
        assert body["attribution"]["conservation"] == "ok"

    def test_compile_error_is_cacheable_422(self):
        canonical = validate_request(good_doc(source=BAD_SOURCE))
        envelope = execute_request(canonical, request_key(canonical))
        assert envelope["status"] == 422 and envelope["cacheable"]
        error = envelope["body"]["error"]
        assert error["code"] == "compile-error"
        assert error["diagnostics"]

    def test_unknown_global_is_input_error(self):
        doc = good_doc()
        doc["inputs"]["run"] = {"nope": 1}
        canonical = validate_request(doc)
        envelope = execute_request(canonical, request_key(canonical))
        assert envelope["status"] == 422
        assert envelope["body"]["error"]["code"] == "input-error"

    def test_pareto_section_positions_request(self):
        doc = good_doc()
        doc["report"]["pareto"] = True
        canonical = validate_request(doc)
        envelope = execute_request(canonical, request_key(canonical))
        pareto = envelope["body"]["pareto"]
        assert len(pareto["grid"]) == 4  # the DSE smoke grid
        assert isinstance(pareto["position"]["on_front"], bool)

    def test_byte_identical_re_execution(self):
        canonical = validate_request(good_doc())
        key = request_key(canonical)
        first = canonical_body(execute_request(canonical, key)["body"])
        second = canonical_body(execute_request(canonical, key)["body"])
        assert first == second

    def test_envelope_byte_identical_across_engines(self):
        # all four engine spellings share one request key and must produce
        # byte-identical report bodies; 'ooo' additionally runs the live
        # committed-state cross-check, which must pass silently
        reference = validate_request(good_doc())
        key = request_key(reference)
        expected = canonical_body(execute_request(reference, key)["body"])
        for engine in ("legacy", "fast", "compiled", "ooo"):
            canonical = validate_request(good_doc(engine=engine))
            envelope = execute_request(canonical, key)
            assert envelope["status"] == 200, engine
            assert canonical_body(envelope["body"]) == expected, engine


# -- the server ----------------------------------------------------------------


class TestServer:
    def test_submit_cache_and_coalescing(self, tmp_path):
        async def scenario(server):
            cold = await server.submit(good_doc())
            assert cold["status"] == 200 and cold["source"] == "executed"
            warm = await server.submit(good_doc())
            assert warm["source"] == "cache"
            assert canonical_body(warm["body"]) == canonical_body(cold["body"])

            # distinct tenants share the storage tier
            other = await server.submit(good_doc(tenant="bob"))
            assert other["source"] == "cache"

            assert server.stats.executed == 1
            assert server.stats.cache_hits == 2
            return cold

        asyncio.run(_with_server(serve_config(tmp_path), scenario))

    def test_n_identical_concurrent_submits_execute_once(self, tmp_path):
        async def scenario(server):
            results = await asyncio.gather(
                *(server.submit(good_doc()) for _ in range(8))
            )
            bodies = {canonical_body(r["body"]) for r in results}
            assert len(bodies) == 1
            assert all(r["status"] == 200 for r in results)
            assert server.stats.executed == 1
            assert server.stats.coalesced == 7

        asyncio.run(_with_server(serve_config(tmp_path), scenario))

    def test_byte_identical_across_restart(self, tmp_path):
        config = serve_config(tmp_path)

        async def first(server):
            return await server.submit(good_doc())

        async def second(server):
            envelope = await server.submit(good_doc())
            assert envelope["source"] == "cache"
            assert server.stats.executed == 0
            return envelope

        cold = asyncio.run(_with_server(config, first))
        warm = asyncio.run(_with_server(config, second))
        assert canonical_body(cold["body"]) == canonical_body(warm["body"])

    def test_validation_rejection_is_structured(self, tmp_path):
        async def scenario(server):
            envelope = await server.submit({"config": {"preset": "bitspec-max"}})
            assert envelope["status"] == 400
            assert envelope["body"]["error"]["code"] == "invalid-request"
            assert envelope["body"]["error"]["details"]
            assert server.stats.validation_rejections == 1

        asyncio.run(_with_server(serve_config(tmp_path), scenario))

    def test_quota_429_then_refill(self, tmp_path):
        now = [0.0]
        config = serve_config(tmp_path, quota_capacity=2.0, quota_refill=1.0)

        async def scenario(server):
            assert (await server.submit(good_doc()))["status"] == 200
            assert (await server.submit(good_doc()))["status"] == 200
            third = await server.submit(good_doc())
            assert third["status"] == 429
            error = third["body"]["error"]
            assert error["code"] == "quota-exceeded"
            assert error["retry_after_seconds"] > 0

            # quotas are per tenant: bob is unaffected by alice's burn
            assert (await server.submit(good_doc(tenant="bob")))["status"] == 200

            now[0] += 5.0  # refill alice's bucket
            assert (await server.submit(good_doc()))["status"] == 200
            assert server.stats.quota_rejections == 1

        asyncio.run(_with_server(config, scenario, clock=lambda: now[0]))

    def test_backpressure_503_when_queue_full(self, tmp_path):
        config = serve_config(tmp_path, max_queue=0)

        async def scenario(server):
            envelope = await server.submit(good_doc())
            assert envelope["status"] == 503
            assert envelope["body"]["error"]["code"] == "queue-full"
            assert server.stats.backpressure_rejections == 1

        asyncio.run(_with_server(config, scenario))

    def test_cache_hits_bypass_backpressure(self, tmp_path):
        config = serve_config(tmp_path)

        async def warm_up(server):
            await server.submit(good_doc())

        async def saturated(server):
            server.config.max_queue = 0  # no new work accepted ...
            envelope = await server.submit(good_doc())
            assert envelope["status"] == 200  # ... but cached answers flow
            assert envelope["source"] == "cache"

        asyncio.run(_with_server(config, warm_up))
        asyncio.run(_with_server(config, saturated))


class TestHttp:
    def test_end_to_end_report_and_errors(self, tmp_path):
        async def scenario(server):
            port = server.port
            health = await http_request("127.0.0.1", port, "GET", "/healthz")
            assert health.status == 200

            cold = await submit_report("127.0.0.1", port, good_doc())
            assert cold.status == 200
            assert cold.headers["x-repro-source"] == "executed"
            assert cold.headers["x-repro-key"] == cold.json()["key"]

            warm = await submit_report("127.0.0.1", port, good_doc())
            assert warm.headers["x-repro-source"] == "cache"
            assert warm.body == cold.body  # the byte-identity contract

            bad = await http_request(
                "127.0.0.1", port, "POST", "/v1/reports", ["not", "a", "dict"]
            )
            assert bad.status == 400
            assert bad.json()["error"]["code"] == "invalid-request"

            missing = await http_request("127.0.0.1", port, "GET", "/v1/nope")
            assert missing.status == 404
            assert missing.json()["error"]["code"] == "not-found"

            wrong_verb = await http_request("127.0.0.1", port, "POST", "/healthz")
            assert wrong_verb.status == 405

            schema = await http_request("127.0.0.1", port, "GET", "/v1/schema")
            assert schema.status == 200 and "source" in schema.json()["properties"]

            stats = await http_request("127.0.0.1", port, "GET", "/v1/stats")
            doc = stats.json()
            assert doc["executed"] == 1 and doc["cache_hits"] == 1
            return cold

        asyncio.run(_with_server(serve_config(tmp_path), scenario))

    def test_invalid_json_body_is_400(self, tmp_path):
        async def scenario(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            payload = b"{not json"
            writer.write(
                b"POST /v1/reports HTTP/1.1\r\n"
                b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + payload
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 30)
            writer.close()
            status = int(raw.split(None, 2)[1])
            body = json.loads(raw.split(b"\r\n\r\n", 1)[1].decode())
            assert status == 400
            assert body["error"]["code"] == "invalid-json"

        asyncio.run(_with_server(serve_config(tmp_path), scenario))

    def test_jobs_endpoint_lifecycle(self, tmp_path):
        async def scenario(server):
            port = server.port
            ticket = await http_request(
                "127.0.0.1", port, "POST", "/v1/jobs", good_doc()
            )
            assert ticket.status == 202
            job_id = ticket.json()["job_id"]
            assert len(job_id) == 64

            # resubmission is idempotent: the same content address comes back
            again = await http_request(
                "127.0.0.1", port, "POST", "/v1/jobs", good_doc()
            )
            assert again.json()["job_id"] == job_id

            for _ in range(200):
                status = await http_request(
                    "127.0.0.1", port, "GET", f"/v1/jobs/{job_id}"
                )
                if status.json()["status"] == "done":
                    break
                await asyncio.sleep(0.05)
            assert status.json()["status"] == "done"

            report = await http_request(
                "127.0.0.1", port, "GET", f"/v1/jobs/{job_id}/report"
            )
            assert report.status == 200
            assert report.json()["key"] == job_id

            ghost = await http_request(
                "127.0.0.1", port, "GET", "/v1/jobs/" + "0" * 64
            )
            assert ghost.status == 404
            assert ghost.json()["error"]["code"] == "job-not-found"

        asyncio.run(_with_server(serve_config(tmp_path), scenario))


def test_error_codes_map_to_valid_statuses():
    for code, status in ERROR_CODES.items():
        assert 400 <= status <= 599, (code, status)
