"""Back-end: instruction selection, register allocation, layout, ISAs."""

import pytest

from conftest import run_machine
from repro.backend.isel import ISelError, select_module
from repro.backend.layout import link_program
from repro.backend.mir import (
    ALLOCATABLE,
    CALLEE_SAVED,
    FrameSlot,
    Imm,
    SCRATCH0,
    SCRATCH1,
    Slice,
    THUMB_ALLOCATABLE,
    VReg,
)
from repro.backend.regalloc import RegisterAllocator, _sequence_moves
from repro.core import CompilerConfig, compile_binary
from repro.frontend import compile_source
from repro.passes import ExpanderConfig


def machine_outputs(source, inputs=None, isa="ARM"):
    configs = {
        "ARM": CompilerConfig.baseline(),
        "ARM_BS": CompilerConfig.nospec(),
        "THUMB": CompilerConfig.thumb(),
    }
    return run_machine(source, inputs, configs[isa]).output


class TestISelLowering:
    """Semantics checked end-to-end through the machine simulator."""

    @pytest.mark.parametrize("isa", ["ARM", "ARM_BS", "THUMB"])
    def test_arithmetic(self, isa):
        out = machine_outputs(
            """
            void main() {
                u32 a = 1000;
                u32 b = 37;
                out(a + b); out(a - b); out(a * b); out(a / b); out(a % b);
                out(a & b); out(a | b); out(a ^ b);
                out(a << 3); out(a >> 3);
                s32 c = -64;
                out((u32)(c >> 2));
            }
            """,
            isa=isa,
        )
        assert out == [
            1037, 963, 37000, 27, 1, 1000 & 37, 1000 | 37, 1000 ^ 37,
            8000, 125, (-16) & 0xFFFFFFFF,
        ]

    @pytest.mark.parametrize("isa", ["ARM", "ARM_BS"])
    def test_u64_pairs(self, isa):
        out = machine_outputs(
            """
            void main() {
                u64 a = 0xFFFFFFFF;
                u64 b = a + a;           // carry into the high word
                out((u32)b); out((u32)(b >> 32));
                u64 c = b - a;           // borrow back
                out((u32)c); out((u32)(c >> 32));
                out(a < b); out(b == a + a);
                u64 d = a * 5;           // umull path
                out((u32)d); out((u32)(d >> 32));
                u64 e = a << 4;
                out((u32)e); out((u32)(e >> 32));
                out((u32)(e >> 36));
            }
            """,
            isa=isa,
        )
        a = 0xFFFFFFFF
        b = 2 * a
        d = 5 * a
        e = (a << 4) & 0xFFFFFFFFFFFFFFFF
        assert out == [
            b & 0xFFFFFFFF, b >> 32, a, 0, 1, 1,
            d & 0xFFFFFFFF, d >> 32, e & 0xFFFFFFFF, e >> 32, e >> 36,
        ]

    def test_u64_division_rejected(self):
        module = compile_source(
            "void main() { u64 a = 10; u64 b = 3; out((u32)(a / b)); }"
        )
        with pytest.raises(ISelError, match="64-bit"):
            select_module(module)

    @pytest.mark.parametrize("isa", ["ARM", "ARM_BS", "THUMB"])
    def test_memory_sizes(self, isa):
        out = machine_outputs(
            """
            u8 b8[4]; u16 b16[4]; u32 b32[4]; u64 b64[2];
            void main() {
                b8[1] = 0xAB; b16[1] = 0xABCD; b32[1] = 0xDEADBEEF;
                b64[1] = 0x1122334455667788;
                out(b8[1]); out(b16[1]); out(b32[1]);
                out((u32)b64[1]); out((u32)(b64[1] >> 32));
            }
            """,
            isa=isa,
        )
        assert out == [0xAB, 0xABCD, 0xDEADBEEF, 0x55667788, 0x11223344]

    @pytest.mark.parametrize("isa", ["ARM", "THUMB"])
    def test_calls_and_stack_args(self, isa):
        out = machine_outputs(
            """
            u32 six(u32 a, u32 b, u32 c, u32 d, u32 e, u32 f) {
                return a + 2*b + 3*c + 4*d + 5*e + 6*f;
            }
            void main() { out(six(1, 2, 3, 4, 5, 6)); }
            """,
            isa=isa,
        )
        assert out == [1 + 4 + 9 + 16 + 25 + 36]

    def test_deep_recursion_stack_discipline(self):
        out = machine_outputs(
            """
            u32 s(u32 n) { if (n == 0) { return 0; } return n + s(n - 1); }
            void main() { out(s(100)); }
            """
        )
        assert out == [5050]

    def test_select_and_ternary(self):
        out = machine_outputs(
            """
            u32 g;
            void main() {
                u32 m = g > 10 ? g * 2 : g + 100;
                out(m);
            }
            """,
            {"g": 7},
        )
        assert out == [107]


class TestRegisterAllocation:
    def _alloc(self, source, isa="ARM_BS", func="main"):
        module = compile_source(source)
        program = select_module(module, isa=isa)
        allocator = RegisterAllocator(program.functions[func], isa=isa)
        allocator.allocate()
        return allocator

    def test_slice_packing_density(self):
        """Several simultaneously-live u8 values pack into few registers."""
        source = """
        u8 t[8]; u32 sink;
        void main() {
            u8 a = t[0]; u8 b = t[1]; u8 c = t[2]; u8 d = t[3];
            u8 e = t[4]; u8 f = t[5]; u8 g = t[6]; u8 h = t[7];
            sink = (u32)(a+b) + (u32)(c+d) + (u32)(e+f) + (u32)(g+h);
            out(sink);
        }
        """
        allocator = self._alloc(source, isa="ARM_BS")
        slices = [
            loc for loc in allocator.location.values() if isinstance(loc, Slice)
        ]
        byte_slices = [s for s in slices if s.size == 1]
        assert byte_slices
        regs_used = {s.reg for s in byte_slices}
        # 8 single-byte values cannot need 8 registers under packing
        assert len(regs_used) < len(byte_slices)

    def test_baseline_never_packs(self):
        allocator = self._alloc(
            "u8 t[4]; void main() { out(t[0] + t[1]); }", isa="ARM"
        )
        for loc in allocator.location.values():
            if isinstance(loc, Slice):
                assert loc.offset == 0

    def test_call_crossing_uses_callee_saved(self):
        source = """
        u32 f(u32 x) { return x + 1; }
        void main() {
            u32 keep = 12345;
            u32 r = f(7);
            out(keep + r);
        }
        """
        module = compile_source(source)
        program = select_module(module, isa="ARM")
        allocator = RegisterAllocator(program.functions["main"], isa="ARM")
        intervals = allocator._build_intervals()
        crossing = [iv for iv in intervals if iv.crosses_call]
        assert crossing
        allocator = RegisterAllocator(program.functions["main"], isa="ARM")
        allocator.allocate()
        for iv in allocator._build_intervals():
            if iv.crosses_call:
                loc = allocator.location.get(iv.vreg)
                if isinstance(loc, Slice):
                    assert loc.reg in CALLEE_SAVED

    def test_thumb_pool_is_restricted(self):
        assert set(THUMB_ALLOCATABLE) < set(ALLOCATABLE)
        allocator = self._alloc(
            "void main() { u32 a = 1; u32 b = 2; out(a + b); }", isa="THUMB"
        )
        for loc in allocator.location.values():
            if isinstance(loc, Slice):
                assert loc.reg in THUMB_ALLOCATABLE or loc.reg in (SCRATCH0, SCRATCH1)

    def test_spilling_under_pressure_stays_correct(self):
        # 16 simultaneously-live u32 values exceed the 11-register pool
        decls = "".join(f"u32 v{i} = g + {i};" for i in range(16))
        uses = " + ".join(f"v{i}" for i in range(16))
        source = f"u32 g; void main() {{ {decls} out({uses}); }}"
        out = machine_outputs(source, {"g": 1000})
        assert out == [sum(1000 + i for i in range(16))]

    def test_sequence_moves_breaks_cycles(self):
        a, b = Slice(0, 0, 4), Slice(1, 0, 4)
        moves = [(a, b), (b, a)]  # swap
        insts = _sequence_moves(moves)
        opcodes = [i.opcode for i in insts]
        assert opcodes.count("mov") == 3  # via scratch
        used_scratch = any(
            isinstance(op, Slice) and op.reg == SCRATCH0
            for i in insts
            for op in i.defs + i.uses
        )
        assert used_scratch

    def test_sequence_moves_drops_identity(self):
        a = Slice(0, 0, 4)
        assert _sequence_moves([(a, a)]) == []


class TestLayout:
    def _linked(self, source, config):
        binary = compile_binary(source, config, profile_inputs={})
        return binary.linked

    def test_skeleton_area_delta(self):
        source = "void main() { u32 x = 0; do { x += 1; } while (x <= 255); out(x); }"
        binary = compile_binary(
            source,
            CompilerConfig.bitspec("avg"),
            profile_inputs=None,
        )
        linked = binary.linked
        assert linked.delta == linked.code_size
        spec_indices = [
            i for i, inst in enumerate(linked.insts[: linked.code_size])
            if inst.speculative
        ]
        assert spec_indices
        for index in spec_indices:
            skeleton = linked.insts[index + linked.delta]
            assert skeleton.opcode == "b"
        # non-speculative slots in the skeleton area are nops
        for index in range(linked.code_size):
            if index not in spec_indices:
                assert linked.insts[index + linked.delta].opcode in ("nop",)

    def test_no_skeleton_without_speculation(self):
        linked = self._linked("void main() { out(1); }", CompilerConfig.baseline())
        assert linked.delta == 0
        assert len(linked.insts) == linked.code_size

    def test_fallthrough_branches_removed(self):
        linked = self._linked(
            "void main() { u32 s = 0; for (u32 i = 0; i < 3; i += 1) { s += i; } out(s); }",
            CompilerConfig.baseline(),
        )
        for i, inst in enumerate(linked.insts):
            if inst.opcode == "b":
                assert inst.target != i + 1  # would be a fallthrough

    def test_thumb_instruction_bytes(self):
        linked = self._linked("void main() { out(1); }", CompilerConfig.thumb())
        assert linked.inst_bytes == 2
        arm = self._linked("void main() { out(1); }", CompilerConfig.baseline())
        assert arm.inst_bytes == 4

    def test_thumb_two_address_expansion_increases_count(self):
        source = "u32 g; void main() { out(g * 3 + g / 2 - 1); }"
        arm = self._linked(source, CompilerConfig.baseline())
        thumb = self._linked(source, CompilerConfig.thumb())
        assert len(thumb.insts) >= len(arm.insts)

    def test_entry_is_main(self):
        linked = self._linked(
            "u32 f() { return 1; } void main() { out(f()); }",
            CompilerConfig.baseline(),
        )
        assert linked.entry_index == linked.function_entries["main"]
