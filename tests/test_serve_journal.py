"""Durable serve jobs: the write-ahead journal and crash recovery.

Covers the journal itself (lifecycle fold, torn-tail tolerance,
interior-garbage skipping, in-place healing) and the server-level
contract: a fresh :class:`ReproServer` on the same cache directory and
journal resolves every pre-restart job id with the byte-identical body,
re-enqueues incomplete jobs, and replays uncacheable outcomes from the
journal's inline envelopes.
"""

import asyncio
import json

from repro.serve.client import http_request
from repro.serve.journal import JOURNAL_FORMAT, JobJournal, scan
from repro.serve.schema import request_key, validate_request
from repro.serve.server import ReproServer, ServeConfig, canonical_body

from test_serve import good_doc, serve_config

KEY_A = "a" * 64
KEY_B = "b" * 64


def journal_config(tmp_path, **overrides):
    overrides.setdefault("journal_path", str(tmp_path / "jobs.journal"))
    return serve_config(tmp_path, **overrides)


async def _with_server(config, body):
    server = ReproServer(config)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


# -- the journal itself --------------------------------------------------------


class TestJournal:
    def test_lifecycle_folds_to_latest_state(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.submit(KEY_A, "alice", {"doc": 1})
        journal.start(KEY_A)
        journal.submit(KEY_B, "bob", {"doc": 2})
        journal.complete(KEY_A, cacheable=True)
        journal.close()
        result = scan(tmp_path / "j")
        assert result.records == 4
        assert result.dropped == 0 and not result.torn_tail
        assert result.jobs[KEY_A]["state"] == "done"
        assert result.jobs[KEY_A]["tenant"] == "alice"
        assert result.jobs[KEY_B]["state"] == "submitted"
        assert result.jobs[KEY_B]["request"] == {"doc": 2}

    def test_uncacheable_envelope_rides_inline(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        envelope = {"status": 504, "kind": "error", "body": {}, "cacheable": False}
        journal.submit(KEY_A, "alice", {})
        journal.complete(KEY_A, cacheable=False, envelope=envelope)
        journal.close()
        job = scan(tmp_path / "j").jobs[KEY_A]
        assert job["state"] == "done"
        assert job["envelope"] == envelope

    def test_cacheable_complete_drops_envelope(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.complete(KEY_A, cacheable=True, envelope={"big": "x" * 100})
        journal.close()
        assert scan(tmp_path / "j").jobs[KEY_A]["envelope"] is None

    def test_torn_tail_dropped_not_raised(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.submit(KEY_A, "alice", {})
        journal.close()
        with open(tmp_path / "j", "ab") as handle:
            handle.write(b'{"format": 1, "rec": "compl')  # crash mid-append
        result = scan(tmp_path / "j")
        assert result.torn_tail
        assert result.records == 1
        assert result.jobs[KEY_A]["state"] == "submitted"

    def test_interior_garbage_skipped(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.submit(KEY_A, "alice", {})
        journal.close()
        raw = (tmp_path / "j").read_bytes()
        (tmp_path / "j").write_bytes(
            b"not json at all\n"
            + json.dumps({"format": 999, "rec": "submit", "key": KEY_B}).encode()
            + b"\n"
            + raw
        )
        result = scan(tmp_path / "j")
        assert result.dropped == 2
        assert list(result.jobs) == [KEY_A]

    def test_missing_file_scans_empty(self, tmp_path):
        result = scan(tmp_path / "nope")
        assert result.jobs == {} and result.records == 0

    def test_truncate_to_valid_heals_in_place(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.submit(KEY_A, "alice", {})
        journal.close()
        good = (tmp_path / "j").read_bytes()
        with open(tmp_path / "j", "ab") as handle:
            handle.write(b'{"torn')
        healed = JobJournal(tmp_path / "j")
        assert healed.truncate_to_valid()
        assert (tmp_path / "j").read_bytes() == good
        # the handle reopened after healing: appends still land
        healed.start(KEY_A)
        healed.close()
        assert scan(tmp_path / "j").jobs[KEY_A]["state"] == "started"

    def test_records_are_format_stamped(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.start(KEY_A)
        journal.close()
        record = json.loads((tmp_path / "j").read_text())
        assert record["format"] == JOURNAL_FORMAT

    def test_bit_flipped_record_dropped_not_replayed(self, tmp_path):
        """A damaged inline envelope must never be served verbatim: the
        per-record checksum turns a flip into a dropped record."""
        journal = JobJournal(tmp_path / "j")
        envelope = {"status": 200, "kind": "report", "body": {"x": 12345}}
        journal.complete(KEY_A, cacheable=False, envelope=envelope)
        journal.close()
        raw = bytearray((tmp_path / "j").read_bytes())
        flip = raw.index(b"12345") + 2  # inside the envelope body
        raw[flip] ^= 0x01
        (tmp_path / "j").write_bytes(bytes(raw))
        result = scan(tmp_path / "j")
        assert result.dropped == 1
        assert KEY_A not in result.jobs


# -- server-level recovery -----------------------------------------------------


class TestServerRecovery:
    def test_completed_job_survives_restart_byte_identical(self, tmp_path):
        config = journal_config(tmp_path)

        async def scenario():
            async def first(server):
                response = await http_request(
                    "127.0.0.1", server.port, "POST", "/v1/jobs", good_doc()
                )
                assert response.status == 202
                job_id = response.json()["job_id"]
                for _ in range(400):
                    report = await http_request(
                        "127.0.0.1", server.port, "GET",
                        f"/v1/jobs/{job_id}/report",
                    )
                    if report.status == 200:
                        return job_id, report.body
                    await asyncio.sleep(0.01)
                raise AssertionError("job never completed")

            job_id, body = await _with_server(config, first)

            async def second(server):
                report = await http_request(
                    "127.0.0.1", server.port, "GET",
                    f"/v1/jobs/{job_id}/report",
                )
                status = await http_request(
                    "127.0.0.1", server.port, "GET", f"/v1/jobs/{job_id}"
                )
                return report, status

            report, status = await _with_server(config, second)
            assert report.status == 200
            assert report.body == body  # byte-identical across the restart
            assert status.json()["status"] == "done"

        asyncio.run(scenario())

    def test_incomplete_job_reenqueued_and_executes(self, tmp_path):
        config = journal_config(tmp_path)
        canonical = validate_request(good_doc())
        key = request_key(canonical)
        # a crash after admission: submit + start, never complete
        journal = JobJournal(config.journal_path)
        journal.submit(key, canonical["tenant"], canonical)
        journal.start(key)
        journal.close()

        async def scenario(server):
            assert server.stats.requeued_jobs == 1
            for _ in range(400):
                report = await http_request(
                    "127.0.0.1", server.port, "GET", f"/v1/jobs/{key}/report"
                )
                if report.status == 200:
                    return report
                assert report.status != 404, "recovered job was lost"
                await asyncio.sleep(0.01)
            raise AssertionError("requeued job never completed")

        report = asyncio.run(_with_server(config, scenario))
        assert report.json()["key"] == key

    def test_crash_between_cache_write_and_complete_heals(self, tmp_path):
        config = journal_config(tmp_path)
        canonical = validate_request(good_doc())
        key = request_key(canonical)

        async def first(server):
            envelope = await server.submit(good_doc())
            return canonical_body(envelope["body"])

        body = asyncio.run(_with_server(config, first))
        # forge the crash: drop the complete record, keep submit/start —
        # the cache now holds the answer but the journal says "started"
        journal = JobJournal(str(config.journal_path) + ".forged")
        journal.submit(key, canonical["tenant"], canonical)
        journal.start(key)
        journal.close()
        import os

        os.replace(str(config.journal_path) + ".forged", config.journal_path)

        async def second(server):
            assert server.stats.recovered_jobs == 1
            assert server.stats.requeued_jobs == 0  # healed, not re-run
            report = await http_request(
                "127.0.0.1", server.port, "GET", f"/v1/jobs/{key}/report"
            )
            return report

        report = asyncio.run(_with_server(config, second))
        assert report.status == 200
        assert report.body == body
        # the healing appended a complete record
        assert scan(config.journal_path).jobs[key]["state"] == "done"

    def test_uncacheable_outcome_survives_restart(self, tmp_path):
        config = journal_config(tmp_path)
        envelope = {
            "status": 504,
            "kind": "error",
            "body": {"error": {"code": "execution-timeout", "message": "t"}},
            "cacheable": False,
        }
        journal = JobJournal(config.journal_path)
        journal.submit(KEY_A, "alice", {})
        journal.complete(KEY_A, cacheable=False, envelope=envelope)
        journal.close()

        async def scenario(server):
            return await http_request(
                "127.0.0.1", server.port, "GET", f"/v1/jobs/{KEY_A}/report"
            )

        report = asyncio.run(_with_server(config, scenario))
        assert report.status == 504
        assert report.body == canonical_body(envelope["body"])

    def test_torn_journal_tail_recovers_cleanly(self, tmp_path):
        config = journal_config(tmp_path)

        async def first(server):
            await server.submit(good_doc())

        asyncio.run(_with_server(config, first))
        with open(config.journal_path, "ab") as handle:
            handle.write(b'{"format": 1, "rec": "sub')

        async def second(server):
            # healed on startup: the file parses cleanly again and new
            # submissions append fine
            result = scan(config.journal_path)
            assert not result.torn_tail and result.dropped == 0
            await server.submit(good_doc(tenant="bob"))
            return scan(config.journal_path)

        result = asyncio.run(_with_server(config, second))
        assert not result.torn_tail

    def test_no_journal_config_changes_nothing(self, tmp_path):
        config = serve_config(tmp_path)

        async def scenario(server):
            assert server.journal is None
            envelope = await server.submit(good_doc())
            return envelope

        envelope = asyncio.run(_with_server(config, scenario))
        assert envelope["kind"] == "report"
        assert not (tmp_path / "jobs.journal").exists()
