"""The ``faults`` oracle mode: fuzz-corpus programs under a fault grid.

Replays saved corpus programs (compiled BITSPEC T=MAX, *strict* — a
middle-end failure on a corpus program is a finding, never masked by the
graceful fallback) with seeded injections across every fault kind, and
asserts the resilience contract on real generated programs:

* no injection from a *detectable* fault class ends in silent data
  corruption — spurious asserts and Razor timing errors recover, parity'd
  cache corruption traps;
* the replay matrix is deterministic: same seed ⇒ byte-identical JSON.
"""

from pathlib import Path

import pytest

from repro.faults.campaign import SDC, replay_corpus, to_canonical_json
from repro.faults.plan import FAULT_KINDS, detectable_kinds

CORPUS = Path(__file__).parent / "corpus"

#: the CI-gated detectable grid: spurious + Razor always, D$/I$ under parity
PARITY_GRID = dict(
    count=5, kinds=list(FAULT_KINDS), seed=11, per_kind=1, parity=True
)


@pytest.fixture(scope="module")
def matrix():
    return replay_corpus(CORPUS, **PARITY_GRID)


def test_replay_covers_five_programs_every_kind(matrix):
    assert len(matrix["workloads"]) == 5
    assert all(w.startswith("corpus:") for w in matrix["workloads"])
    assert matrix["summary"]["cells"] == 5 * len(FAULT_KINDS)
    assert matrix["summary"]["errors"] == 0


def test_no_sdc_in_detectable_kinds(matrix):
    """The resilience contract on generated programs: detectable faults
    never silently corrupt the out() stream."""
    assert matrix["summary"]["sdc_in_detectable_kinds"] == 0
    detectable = detectable_kinds(parity=True)
    for cell in matrix["cells"]:
        if cell["kind"] in detectable:
            assert cell["category"] != SDC, cell


def test_spurious_asserts_recover_on_corpus_programs(matrix):
    """Stronger than no-SDC: a spuriously raised misspec signal must leave
    output untouched on every corpus program (handlers re-execute wide)."""
    for cell in matrix["cells"]:
        if cell["kind"] == "misspec_spurious" and cell["triggered"]:
            assert cell["output_matches"], cell


def test_replay_is_deterministic():
    grid = dict(count=3, kinds=["dts_timing", "misspec_spurious"],
                seed=5, per_kind=1)
    assert to_canonical_json(replay_corpus(CORPUS, **grid)) == to_canonical_json(
        replay_corpus(CORPUS, **grid)
    )


def test_cli_replay_smoke(tmp_path):
    from repro.faults.__main__ import main

    out = tmp_path / "replay.json"
    code = main([
        "replay", "--corpus", str(CORPUS), "--count", "2",
        "--kinds", "dts_timing", "--seed", "3", "--json", str(out),
    ])
    assert code == 0
    assert out.exists()
