"""Workload validation: every kernel against its Python oracle."""

import pytest

from repro.core import CompilerConfig, compile_binary, set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.workloads import all_workloads, get_workload, workload_names
from repro.workloads.base import XorShift, mix_seed

NAMES = workload_names()


def test_registry_complete():
    assert len(NAMES) == 14
    for expected in (
        "crc32", "fft", "basicmath", "bitcount", "blowfish", "dijkstra",
        "patricia", "qsort", "rijndael", "sha", "stringsearch",
        "susan-edges", "susan-corners", "susan-smoothing",
    ):
        assert expected in NAMES


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("mp3")


def test_xorshift_determinism():
    assert XorShift(42).next() == XorShift(42).next()
    assert mix_seed(1, "test", 0) != mix_seed(1, "train", 0)
    with pytest.raises(KeyError):
        mix_seed(1, "bogus", 0)


def test_input_kinds_validated():
    wl = get_workload("crc32")
    with pytest.raises(ValueError):
        wl.inputs("huge")


@pytest.mark.parametrize("name", NAMES)
def test_sources_compile_and_verify(name):
    module = compile_source(get_workload(name).source, name)
    verify_module(module)
    assert "main" in module.functions


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("kind", ["test", "train", "alt"])
def test_interpreter_matches_oracle(name, kind):
    workload = get_workload(name)
    module = compile_source(workload.source, name)
    inputs = workload.inputs(kind)
    set_global_inputs(module, inputs)
    output = Interpreter(module).run("main").output
    assert output == workload.expected_output(inputs), (name, kind)


@pytest.mark.parametrize("name", NAMES)
def test_seeded_inputs_differ(name):
    workload = get_workload(name)
    a = workload.inputs("test", seed=0)
    b = workload.inputs("test", seed=1)
    assert a != b


def test_rijndael_oracle_matches_fips_197():
    """The AES reference must be real AES (FIPS-197 appendix C.1... with
    the 128-bit example vector)."""
    from repro.workloads.rijndael import aes128_encrypt

    key = bytes(range(16))  # 000102...0f
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert aes128_encrypt(plaintext, key) == expected


def test_crc32_oracle_matches_zlib():
    import zlib

    from repro.workloads.crc32 import _crc32_py

    data = bytes(range(200))
    assert _crc32_py(list(data)) == zlib.crc32(data)


def test_sha_oracle_matches_hashlib():
    import hashlib

    from repro.workloads.sha import _sha1_blocks

    # hand-pad one block: "abc" + 0x80 + zeros + bit length 24
    block = bytearray(64)
    block[0:3] = b"abc"
    block[3] = 0x80
    block[62:64] = (24).to_bytes(2, "big")
    digest_words = _sha1_blocks(bytes(block))
    digest = b"".join(w.to_bytes(4, "big") for w in digest_words)
    assert digest == hashlib.sha1(b"abc").digest()


def test_wide_variants_available():
    for name in ("stringsearch", "dijkstra"):
        workload = get_workload(name)
        assert workload.wide_source
        module = compile_source(workload.wide_source, name + "-wide")
        verify_module(module)
        inputs = workload.inputs("test")
        set_global_inputs(module, inputs)
        output = Interpreter(module).run("main").output
        assert output == workload.expected_output(inputs)


@pytest.mark.parametrize("name", NAMES)
def test_machine_baseline_matches_oracle(name):
    workload = get_workload(name)
    inputs = workload.inputs("train")  # smaller, keeps this suite quick
    binary = compile_binary(workload.source, CompilerConfig.baseline(), name=name)
    result = binary.run(inputs)
    assert result.output == workload.expected_output(inputs), name
    assert result.instructions > 100


@pytest.mark.parametrize("name", ["crc32", "stringsearch", "rijndael", "qsort"])
def test_machine_bitspec_matches_oracle(name):
    workload = get_workload(name)
    inputs = workload.inputs("train")
    binary = compile_binary(
        workload.source,
        CompilerConfig.bitspec("max"),
        profile_inputs=inputs,
        name=name,
    )
    result = binary.run(inputs)
    assert result.output == workload.expected_output(inputs), name
