"""Property-based differential testing of the whole compiler.

Hypothesis generates small random MiniC programs (expression trees over a
few variables inside a loop); every compiler configuration must produce the
same output as the interpreter, which must match a Python evaluation of the
same expression.  This cross-checks front-end, middle-end (including the
squeezer's speculation machinery), back-end and machine model against each
other on inputs no human wrote.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompilerConfig, compile_binary, set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter

MASK = 0xFFFFFFFF


class Expr:
    """A tiny expression AST rendered both to MiniC and to Python."""

    def __init__(self, kind, a=None, b=None, value=None):
        self.kind = kind
        self.a = a
        self.b = b
        self.value = value

    def to_c(self) -> str:
        if self.kind == "const":
            return str(self.value)
        if self.kind == "var":
            return self.value
        op = self.kind
        return f"({self.a.to_c()} {op} {self.b.to_c()})"

    def eval(self, env) -> int:
        if self.kind == "const":
            return self.value
        if self.kind == "var":
            return env[self.value]
        a = self.a.eval(env)
        b = self.b.eval(env)
        if self.kind == "+":
            return (a + b) & MASK
        if self.kind == "-":
            return (a - b) & MASK
        if self.kind == "*":
            return (a * b) & MASK
        if self.kind == "&":
            return a & b
        if self.kind == "|":
            return a | b
        if self.kind == "^":
            return a ^ b
        if self.kind == ">>":
            return a >> (b & 31)
        raise AssertionError(self.kind)


_VARS = ("x", "y", "z")


def exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(0, 255).map(lambda v: Expr("const", value=v)),
            st.sampled_from(_VARS).map(lambda n: Expr("var", value=n)),
        )
    sub = exprs(depth - 1)
    shift = st.integers(0, 31).map(lambda v: Expr("const", value=v))
    return st.one_of(
        exprs(0),
        st.tuples(st.sampled_from("+-*&|^"), sub, sub).map(
            lambda t: Expr(t[0], t[1], t[2])
        ),
        st.tuples(sub, shift).map(lambda t: Expr(">>", t[0], t[1])),
    )


def build_program(expr: Expr) -> str:
    return f"""
    u32 x0; u32 y0; u32 z0; u32 iters; u32 sink;
    void main() {{
        u32 x = x0; u32 y = y0; u32 z = z0;
        u32 acc = 0;
        for (u32 i = 0; i < iters; i += 1) {{
            u32 t = {expr.to_c()};
            acc = (acc ^ t) + 1;
            x = y; y = z; z = t;
        }}
        sink = acc;
        out(acc);
    }}
    """


def python_reference(expr: Expr, x, y, z, iters) -> int:
    acc = 0
    for _ in range(iters):
        t = expr.eval({"x": x, "y": y, "z": z})
        acc = ((acc ^ t) + 1) & MASK
        x, y, z = y, z, t
    return acc


@settings(max_examples=30, deadline=None)
@given(
    expr=exprs(3),
    x=st.integers(0, 2**32 - 1),
    y=st.integers(0, 255),
    z=st.integers(0, 2**16 - 1),
    iters=st.integers(1, 12),
)
def test_interpreter_matches_python(expr, x, y, z, iters):
    source = build_program(expr)
    module = compile_source(source)
    set_global_inputs(module, {"x0": x, "y0": y, "z0": z, "iters": iters})
    output = Interpreter(module).run("main").output
    assert output == [python_reference(expr, x, y, z, iters)]


@settings(max_examples=12, deadline=None)
@given(
    expr=exprs(2),
    x=st.integers(0, 255),
    y=st.integers(0, 2**32 - 1),
    iters=st.integers(1, 8),
)
def test_all_configs_match_python(expr, x, y, iters):
    """Baseline, BITSPEC (max+min) and Thumb all agree with Python."""
    source = build_program(expr)
    inputs = {"x0": x, "y0": y, "z0": 3, "iters": iters}
    expected = [python_reference(expr, x, y, 3, iters)]
    for config in (
        CompilerConfig.baseline(),
        CompilerConfig.bitspec("max"),
        CompilerConfig.bitspec("min"),
        CompilerConfig.thumb(),
    ):
        binary = compile_binary(source, config, profile_inputs=inputs)
        assert binary.run(inputs).output == expected, config.name


@settings(max_examples=10, deadline=None)
@given(
    profile_x=st.integers(0, 64),
    run_x=st.integers(0, 2**32 - 1),
    iters=st.integers(1, 10),
)
def test_squeezer_correct_under_profile_mismatch(profile_x, run_x, iters):
    """Profile on one input, run on a wildly different one: misspeculation
    recovery must always restore exact semantics."""
    source = build_program(
        Expr("+", Expr("var", value="x"), Expr("const", value=1))
    )
    profile_inputs = {"x0": profile_x, "y0": 1, "z0": 2, "iters": iters}
    run_inputs = {"x0": run_x, "y0": 1, "z0": 2, "iters": iters}
    binary = compile_binary(
        source, CompilerConfig.bitspec("min"), profile_inputs=profile_inputs
    )
    expected = [python_reference(binary_expr(), run_x, 1, 2, iters)]
    assert binary.run(run_inputs).output == expected


def binary_expr():
    return Expr("+", Expr("var", value="x"), Expr("const", value=1))
