"""Negative paths of the engine-selection surfaces.

``parse_engine_list`` is the shared validator behind the pytest
``--engines`` option: a typo'd or empty selection must abort loudly (a
silently-deselected engine matrix would pass CI while testing nothing).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.machine import ENGINES, parse_engine_list

REPO = Path(__file__).resolve().parent.parent


def test_parses_full_and_partial_selections():
    assert parse_engine_list(",".join(ENGINES)) == tuple(ENGINES)
    assert parse_engine_list(ENGINES[0]) == (ENGINES[0],)
    # whitespace and trailing commas are tolerated
    assert parse_engine_list(f" {ENGINES[0]} , {ENGINES[-1]},") == (
        ENGINES[0],
        ENGINES[-1],
    )


def test_unknown_engine_raises_with_valid_set():
    with pytest.raises(ValueError, match="unknown engines"):
        parse_engine_list("warp")
    with pytest.raises(ValueError, match=str(ENGINES[0])):
        parse_engine_list(f"{ENGINES[0]},warp")


@pytest.mark.parametrize("spec", ["", "   ", ",", " , ,"])
def test_empty_selection_raises(spec):
    with pytest.raises(ValueError, match="empty engine selection"):
        parse_engine_list(spec)


def test_pytest_engines_option_rejects_unknown_engine_up_front():
    """``pytest --engines warp`` must die with a UsageError during
    configure — before collection — not silently run zero matrix tests."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--engines",
            "warp",
            "--co",
            "-q",
            "tests/test_engine_selection.py",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    # pytest exits with EXIT_USAGEERROR (4) on UsageError
    assert proc.returncode == 4, proc.stdout + proc.stderr
    assert "unknown engines" in proc.stderr
