"""Unit tests for the IR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    VOID,
    int_type,
    is_int,
    is_pointer,
    required_bits,
)


class TestIntType:
    def test_singletons(self):
        assert int_type(8) is I8
        assert int_type(32) is I32
        assert int_type(13) is int_type(13)

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(65)

    def test_mask(self):
        assert I8.mask == 0xFF
        assert I32.mask == 0xFFFFFFFF
        assert I1.mask == 1

    def test_size_bytes(self):
        assert I1.size_bytes == 1
        assert I8.size_bytes == 1
        assert I16.size_bytes == 2
        assert int_type(17).size_bytes == 4
        assert I64.size_bytes == 8

    def test_wrap(self):
        assert I8.wrap(256) == 0
        assert I8.wrap(257) == 1
        assert I8.wrap(-1) == 255
        assert I32.wrap(2**32 + 5) == 5

    def test_to_signed(self):
        assert I8.to_signed(255) == -1
        assert I8.to_signed(127) == 127
        assert I8.to_signed(128) == -128
        assert I32.to_signed(0xFFFFFFFF) == -1

    def test_repr(self):
        assert repr(I32) == "i32"
        assert repr(VOID) == "void"
        assert repr(PointerType(I8)) == "i8*"


class TestPointerType:
    def test_is_32_bit(self):
        ptr = PointerType(I64)
        assert ptr.bits == 32
        assert ptr.size_bytes == 4
        assert ptr.wrap(2**32 + 7) == 7

    def test_predicates(self):
        assert is_int(I8)
        assert not is_int(PointerType(I8))
        assert is_pointer(PointerType(I32))
        assert not is_pointer(I32)


class TestRequiredBits:
    def test_zero_needs_one_bit(self):
        assert required_bits(0) == 1

    def test_powers_of_two(self):
        assert required_bits(1) == 1
        assert required_bits(2) == 2
        assert required_bits(255) == 8
        assert required_bits(256) == 9
        assert required_bits(2**32 - 1) == 32

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            required_bits(-1)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_value_fits_in_required_bits(self, value):
        bits = required_bits(value)
        assert value < (1 << bits)
        if value > 0:
            assert value >= (1 << (bits - 1))

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_signed_roundtrip(self, value):
        assert I64.to_signed(I64.wrap(value)) == value

    @given(st.integers(), st.sampled_from([1, 8, 16, 32, 64]))
    def test_wrap_idempotent(self, value, bits):
        ty = int_type(bits)
        assert ty.wrap(ty.wrap(value)) == ty.wrap(value)
        assert 0 <= ty.wrap(value) <= ty.mask
