"""Differential tests: predecoded fast path vs the legacy Machine loop.

The fast path (:mod:`repro.arch.predecode`) must be *bit-identical* to the
legacy instruction-at-a-time interpreter — same output stream, same cycle
and instruction counts, same per-width register-file traffic, same cache
and misspeculation events.  Any divergence silently corrupts every energy
figure, so equality is checked field-by-field, not just on the totals.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.arch.energy import EnergyCounters
from repro.arch.machine import Machine, SimResult
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval.harness import get_binary
from repro.fuzz.corpus import load_program
from repro.passes.expander import ExpanderConfig
from repro.workloads import get_workload

CORPUS_DIR = Path(__file__).parent / "corpus"

#: five seed-corpus programs (fixed, so failures are reproducible by name)
CORPUS_PROGRAMS = ("seed000", "seed003", "seed004", "seed009", "seed011")

WORKLOADS = ("crc32", "sha", "bitcount")

CONFIGS = (
    CompilerConfig.baseline(),
    CompilerConfig.bitspec("max"),
    CompilerConfig.thumb(),
)


def assert_sims_identical(fast: SimResult, legacy: SimResult, label: str) -> None:
    """Field-by-field SimResult equality (counters and class mix included)."""
    for f in dataclasses.fields(SimResult):
        if f.name in ("counters", "memory"):
            continue
        assert getattr(fast, f.name) == getattr(legacy, f.name), (
            f"{label}: SimResult.{f.name} differs: "
            f"fast={getattr(fast, f.name)!r} legacy={getattr(legacy, f.name)!r}"
        )
    for f in dataclasses.fields(EnergyCounters):
        assert getattr(fast.counters, f.name) == getattr(legacy.counters, f.name), (
            f"{label}: counters.{f.name} differs: "
            f"fast={getattr(fast.counters, f.name)!r} "
            f"legacy={getattr(legacy.counters, f.name)!r}"
        )
    assert (fast.memory is None) == (legacy.memory is None), label
    if fast.memory is not None:
        assert fast.memory.data == legacy.memory.data, (
            f"{label}: final memory images differ"
        )
    # ... and therefore the energy model sees identical inputs
    assert fast.energy().as_dict() == legacy.energy().as_dict(), label


def _run_both(binary, inputs) -> tuple:
    if inputs:
        set_global_inputs(binary.module, inputs)
    legacy = Machine(binary.linked, binary.module, fast=False).run()
    fast = Machine(binary.linked, binary.module, fast=True).run()
    return fast, legacy


@pytest.mark.parametrize("name", CORPUS_PROGRAMS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_corpus_program_fast_path_identical(name, config):
    program = load_program(CORPUS_DIR / f"{name}.json")
    expander = (
        ExpanderConfig() if program.expander_enabled else ExpanderConfig.disabled()
    )
    config = dataclasses.replace(config, expander=expander)
    binary = compile_binary(
        program.source, config, profile_inputs=program.inputs_profile
    )
    fast, legacy = _run_both(binary, program.inputs_run)
    assert_sims_identical(fast, legacy, f"{name}/{config.name}")


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_workload_fast_path_identical(workload_name, config):
    binary = get_binary(workload_name, config)
    inputs = get_workload(workload_name).inputs("test", 0)
    fast, legacy = _run_both(binary, inputs)
    assert_sims_identical(fast, legacy, f"{workload_name}/{config.name}")
    assert fast.instructions > 0


def test_fast_path_is_the_default_without_trace_hook(monkeypatch):
    monkeypatch.delenv("REPRO_MACHINE_LEGACY", raising=False)
    binary = get_binary("crc32", CompilerConfig.baseline())
    machine = Machine(binary.linked, binary.module)
    assert machine.fast is None  # auto: resolved at run() time
    # an explicit fast=True with a trace hook must be rejected, not ignored
    traced = Machine(
        binary.linked, binary.module, trace_hook=lambda pc, regs: None, fast=True
    )
    with pytest.raises(ValueError):
        traced.run()


def test_legacy_env_escape_hatch(monkeypatch):
    """REPRO_MACHINE_LEGACY=1 forces the legacy loop (and still agrees)."""
    binary = get_binary("bitcount", CompilerConfig.bitspec("max"))
    inputs = get_workload("bitcount").inputs("test", 0)
    set_global_inputs(binary.module, inputs)
    monkeypatch.setenv("REPRO_MACHINE_LEGACY", "1")
    legacy = Machine(binary.linked, binary.module).run()
    monkeypatch.delenv("REPRO_MACHINE_LEGACY")
    fast = Machine(binary.linked, binary.module).run()
    assert_sims_identical(fast, legacy, "bitcount/env-escape")
