"""Engine-matrix differential tests: every engine vs the fast-path reference.

The Machine has four engines.  The three in-order ones — the legacy
instruction-at-a-time interpreter, the predecoded fast path
(:mod:`repro.arch.predecode`) and the compiled template JIT
(:mod:`repro.arch.compiled`) — must be *bit-identical*: same output
stream, same cycle and instruction counts, same per-width register-file
traffic, same cache and misspeculation events.  Any divergence silently
corrupts every energy figure, so equality is checked field-by-field, not
just on the totals.  The out-of-order engine (:mod:`repro.arch.ooo`) has
its own timing/energy model and is held to the *committed* contract
instead: identical traps, out stream, memory image and committed
instruction/misspeculation counts (:func:`repro.arch.machine.committed_view`).

Each test here takes the ``engine`` fixture (see conftest), so the matrix
is (engine × corpus program × config) and (engine × workload × config);
``pytest --engines compiled`` narrows it when bisecting.  The reference
runs are computed once per cell and memoized for the session — the deep
cross-engine matrix over the full corpus lives in
``tests/test_engine_equivalence.py``.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.arch.energy import EnergyCounters
from repro.arch.machine import Machine, SimResult, committed_view
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval.harness import get_binary
from repro.fuzz.corpus import load_program
from repro.passes.expander import ExpanderConfig
from repro.workloads import get_workload

CORPUS_DIR = Path(__file__).parent / "corpus"

#: five seed-corpus programs (fixed, so failures are reproducible by name)
CORPUS_PROGRAMS = ("seed000", "seed003", "seed004", "seed009", "seed011")

WORKLOADS = ("crc32", "sha", "bitcount")

CONFIGS = (
    CompilerConfig.baseline(),
    CompilerConfig.bitspec("max"),
    CompilerConfig.thumb(),
)


def assert_sims_identical(sim: SimResult, ref: SimResult, label: str) -> None:
    """Field-by-field SimResult equality (counters and class mix included)."""
    for f in dataclasses.fields(SimResult):
        if f.name in ("counters", "memory", "obs", "ooo"):
            continue
        assert getattr(sim, f.name) == getattr(ref, f.name), (
            f"{label}: SimResult.{f.name} differs: "
            f"sim={getattr(sim, f.name)!r} ref={getattr(ref, f.name)!r}"
        )
    for f in dataclasses.fields(EnergyCounters):
        assert getattr(sim.counters, f.name) == getattr(ref.counters, f.name), (
            f"{label}: counters.{f.name} differs: "
            f"sim={getattr(sim.counters, f.name)!r} "
            f"ref={getattr(ref.counters, f.name)!r}"
        )
    assert (sim.memory is None) == (ref.memory is None), label
    if sim.memory is not None:
        assert sim.memory.data == ref.memory.data, (
            f"{label}: final memory images differ"
        )
    # ... and therefore the energy model sees identical inputs
    assert sim.energy().as_dict() == ref.energy().as_dict(), label


def assert_committed_identical(sim: SimResult, ref: SimResult, label: str) -> None:
    """The ooo contract: committed architectural state only (docs/engines.md)."""
    got, want = committed_view(sim), committed_view(ref)
    for name in want:
        assert got[name] == want[name], (
            f"{label}: committed {name} differs: "
            f"sim={got[name]!r} ref={want[name]!r}"
        )
    assert (sim.memory is None) == (ref.memory is None), label
    if sim.memory is not None:
        assert sim.memory.data == ref.memory.data, (
            f"{label}: final memory images differ"
        )


def assert_engine_matches(sim: SimResult, ref: SimResult, engine: str, label: str):
    """Dispatch to the contract the engine is held to."""
    if engine == "ooo":
        assert_committed_identical(sim, ref, label)
        assert sim.ooo is not None and sim.cycles > 0, label
    else:
        assert_sims_identical(sim, ref, label)


#: per-cell fast-path reference runs, computed once for the whole matrix
_REFERENCE: dict = {}


def _corpus_binary(name, config):
    program = load_program(CORPUS_DIR / f"{name}.json")
    expander = (
        ExpanderConfig() if program.expander_enabled else ExpanderConfig.disabled()
    )
    config = dataclasses.replace(config, expander=expander)
    binary = compile_binary(
        program.source, config, profile_inputs=program.inputs_profile
    )
    return binary, program.inputs_run


def _reference(key, binary, inputs) -> SimResult:
    ref = _REFERENCE.get(key)
    if ref is None:
        if inputs:
            set_global_inputs(binary.module, inputs)
        ref = Machine(binary.linked, binary.module, engine="fast").run()
        _REFERENCE[key] = ref
    return ref


@pytest.mark.parametrize("name", CORPUS_PROGRAMS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_corpus_program_engines_identical(engine, name, config):
    binary, inputs = _corpus_binary(name, config)
    ref = _reference(("corpus", name, config.name), binary, inputs)
    if inputs:
        set_global_inputs(binary.module, inputs)
    sim = Machine(binary.linked, binary.module, engine=engine).run()
    assert_engine_matches(sim, ref, engine, f"{name}/{config.name}/{engine}")


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_workload_engines_identical(engine, workload_name, config):
    if engine in ("legacy", "ooo") and workload_name != "crc32":
        pytest.skip("stepper workload runs are slow; one workload pins the path")
    binary = get_binary(workload_name, config)
    inputs = get_workload(workload_name).inputs("test", 0)
    ref = _reference(("workload", workload_name, config.name), binary, inputs)
    if inputs:
        set_global_inputs(binary.module, inputs)
    sim = Machine(binary.linked, binary.module, engine=engine).run()
    assert_engine_matches(sim, ref, engine, f"{workload_name}/{config.name}/{engine}")
    assert sim.instructions > 0


def test_fast_path_is_the_default_without_trace_hook(monkeypatch):
    monkeypatch.delenv("REPRO_MACHINE_LEGACY", raising=False)
    monkeypatch.delenv("REPRO_MACHINE_ENGINE", raising=False)
    binary = get_binary("crc32", CompilerConfig.baseline())
    machine = Machine(binary.linked, binary.module)
    assert machine.fast is None  # auto: resolved at run() time
    assert machine.resolve_engine() == "fast"
    # an explicit fast=True with a trace hook must be rejected, not ignored
    traced = Machine(
        binary.linked, binary.module, trace_hook=lambda pc, regs: None, fast=True
    )
    with pytest.raises(ValueError):
        traced.run()


def test_legacy_env_escape_hatch(monkeypatch):
    """REPRO_MACHINE_LEGACY=1 forces the legacy loop (and still agrees)."""
    binary = get_binary("bitcount", CompilerConfig.bitspec("max"))
    inputs = get_workload("bitcount").inputs("test", 0)
    set_global_inputs(binary.module, inputs)
    monkeypatch.setenv("REPRO_MACHINE_LEGACY", "1")
    legacy = Machine(binary.linked, binary.module).run()
    monkeypatch.delenv("REPRO_MACHINE_LEGACY")
    fast = Machine(binary.linked, binary.module).run()
    assert_sims_identical(fast, legacy, "bitcount/env-escape")


def test_engine_env_var_selects_compiled(monkeypatch):
    """REPRO_MACHINE_ENGINE picks an engine when nothing explicit does."""
    binary = get_binary("crc32", CompilerConfig.bitspec("max"))
    inputs = get_workload("crc32").inputs("test", 0)
    set_global_inputs(binary.module, inputs)
    monkeypatch.setenv("REPRO_MACHINE_ENGINE", "compiled")
    machine = Machine(binary.linked, binary.module)
    assert machine.resolve_engine() == "compiled"
    compiled = machine.run()
    monkeypatch.delenv("REPRO_MACHINE_ENGINE")
    fast = Machine(binary.linked, binary.module, engine="fast").run()
    assert_sims_identical(compiled, fast, "crc32/env-engine")
    # explicit arguments beat the environment
    monkeypatch.setenv("REPRO_MACHINE_ENGINE", "legacy")
    assert Machine(
        binary.linked, binary.module, engine="compiled"
    ).resolve_engine() == "compiled"


def test_engine_env_var_rejects_unknown(monkeypatch):
    binary = get_binary("crc32", CompilerConfig.baseline())
    monkeypatch.setenv("REPRO_MACHINE_ENGINE", "warp")
    with pytest.raises(ValueError):
        Machine(binary.linked, binary.module).resolve_engine()
    with pytest.raises(ValueError):
        Machine(binary.linked, binary.module, engine="warp")
