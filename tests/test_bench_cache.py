"""Property tests for the content-addressed on-disk result cache.

Three families:

* **round-trip** — a cache hit reconstructs a RunRecord equal to the one
  that was stored (every SimResult field, every counter, every energy
  component);
* **key separation** — changing any *single* ingredient of the cache key
  (source text, a config field, profile/run selectors, the energy-model
  stamp) misses rather than aliasing;
* **robustness** — corrupt, foreign or stale-format entries are evicted on
  read, never raised.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.energy import EnergyCounters
from repro.arch.machine import SimResult
from repro.bench import cache as bench_cache
from repro.bench.cache import (
    DiskCache,
    RunDiskCache,
    energy_model_stamp,
    install_disk_cache,
    run_key,
)
from repro.core.pipeline import CompilerConfig
from repro.eval import harness
from repro.workloads import get_workload

WORKLOAD = "crc32"
SOURCE = get_workload(WORKLOAD).source


@pytest.fixture
def disk_cache(tmp_path):
    cache = install_disk_cache(tmp_path / "cache")
    try:
        yield cache
    finally:
        harness.set_disk_cache(None)
        harness.clear_caches()


def _records_equal(a, b) -> bool:
    if (a.workload, a.correct) != (b.workload, b.correct):
        return False
    for f in dataclasses.fields(SimResult):
        if f.name == "memory":
            continue  # the image is deliberately not persisted
        if getattr(a.sim, f.name) != getattr(b.sim, f.name):
            if f.name == "counters":
                for cf in dataclasses.fields(EnergyCounters):
                    if getattr(a.sim.counters, cf.name) != getattr(
                        b.sim.counters, cf.name
                    ):
                        return False
                continue
            return False
    if a.energy.as_dict() != b.energy.as_dict():
        return False
    if (a.dts_energy is None) != (b.dts_energy is None):
        return False
    if a.dts_energy is not None and (
        a.dts_energy.as_dict() != b.dts_energy.as_dict()
    ):
        return False
    return abs(a.total_energy - b.total_energy) < 1e-9


# ---------------------------------------------------------------------------
# round-trip
# ---------------------------------------------------------------------------


def test_hit_returns_equal_record(disk_cache):
    config = CompilerConfig.bitspec("max")
    original = harness.run(WORKLOAD, config)
    assert disk_cache.stats.puts == 1

    # A fresh process is simulated by clearing the in-memory memoizer.
    harness.clear_caches()
    cached = harness.run(WORKLOAD, config)
    assert disk_cache.stats.hits == 1
    assert cached is not original
    assert cached.binary is None  # binaries are not persisted
    assert _records_equal(cached, original)


def test_dts_record_round_trips(disk_cache):
    config = CompilerConfig.dts_bitspec("max")
    original = harness.run(WORKLOAD, config)
    harness.clear_caches()
    cached = harness.run(WORKLOAD, config)
    assert cached.dts_energy is not None
    assert _records_equal(cached, original)


def test_incorrect_runs_are_not_persisted(disk_cache, monkeypatch):
    workload = get_workload(WORKLOAD)
    monkeypatch.setattr(
        type(workload), "expected_output", lambda self, inputs: ["bogus"]
    )
    with pytest.raises(AssertionError):
        harness.run(WORKLOAD, CompilerConfig.baseline())
    assert disk_cache.stats.puts == 0


# ---------------------------------------------------------------------------
# key separation — any single ingredient change must miss
# ---------------------------------------------------------------------------


def _store_one(cache) -> CompilerConfig:
    config = CompilerConfig.bitspec("max")
    harness.run(WORKLOAD, config)
    harness.clear_caches()
    return config


def test_source_change_misses(disk_cache):
    config = _store_one(disk_cache)
    assert disk_cache.contains_run(SOURCE, config, "test", 0, "test", 0)
    assert not disk_cache.contains_run(
        SOURCE + "\n", config, "test", 0, "test", 0
    )


@pytest.mark.parametrize(
    "change",
    [
        {"bitmask_elision": False},
        {"compare_elimination": False},
        {"invert_handler_weights": True},
        {"middle_end": "2cfg-min"},
        {"isa": "ARM"},
        {"voltage_scaling": "timesqueezing"},
    ],
    ids=lambda c: next(iter(c)),
)
def test_config_field_change_misses(disk_cache, change):
    config = _store_one(disk_cache)
    mutated = dataclasses.replace(config, **change)
    assert disk_cache.contains_run(SOURCE, config, "test", 0, "test", 0)
    assert not disk_cache.contains_run(SOURCE, mutated, "test", 0, "test", 0)


@pytest.mark.parametrize(
    "change",
    [
        {"slice_width": 16},
        {"squeeze_ops": ("add", "sub")},
        {"min_hotness": 0.25},
        {"confidence_margin": 1},
        {"dts_alpha": 1.6},
        {"dts_bitwidth_aware": True},
        {"l1_kb": 4},
        {"l1_ways": 2},
        {"l2_kb": 128},
        {"l2_ways": 4},
    ],
    ids=lambda c: next(iter(c)),
)
def test_dse_knob_change_misses(disk_cache, change):
    """Every DSE sweep knob is a semantic cache-key ingredient."""
    config = _store_one(disk_cache)
    mutated = dataclasses.replace(config, **change)
    assert disk_cache.contains_run(SOURCE, config, "test", 0, "test", 0)
    assert not disk_cache.contains_run(SOURCE, mutated, "test", 0, "test", 0)


def test_config_name_is_cosmetic(disk_cache):
    """Renaming a config must NOT miss — the name is display-only."""
    config = _store_one(disk_cache)
    renamed = dataclasses.replace(config, name="same-thing-other-label")
    assert disk_cache.contains_run(SOURCE, renamed, "test", 0, "test", 0)


@pytest.mark.parametrize(
    "selector",
    [
        ("alt", 0, "test", 0),
        ("test", 1, "test", 0),
        ("test", 0, "alt", 0),
        ("test", 0, "test", 1),
    ],
    ids=["profile_kind", "profile_seed", "run_kind", "run_seed"],
)
def test_input_selector_change_misses(disk_cache, selector):
    config = _store_one(disk_cache)
    assert not disk_cache.contains_run(SOURCE, config, *selector)


def test_energy_model_version_bump_misses(disk_cache, monkeypatch):
    config = _store_one(disk_cache)
    monkeypatch.setattr(bench_cache, "ENERGY_MODEL_VERSION", 9999)
    fresh = RunDiskCache(disk_cache.root)  # stamps are per-instance
    assert not fresh.contains_run(SOURCE, config, "test", 0, "test", 0)


@settings(max_examples=30, deadline=None)
@given(
    which=st.sampled_from(
        ["source", "profile_kind", "profile_seed", "run_kind", "run_seed", "stamp"]
    ),
    salt=st.integers(min_value=1, max_value=10**6),
)
def test_any_single_perturbation_changes_key(which, salt):
    config = CompilerConfig.bitspec("max")
    base = dict(
        source=SOURCE,
        profile_kind="test",
        profile_seed=0,
        run_kind="test",
        run_seed=0,
        energy_stamp=energy_model_stamp(),
    )
    mutated = dict(base)
    if which == "source":
        mutated["source"] = SOURCE + f"\n// {salt}"
    elif which == "stamp":
        mutated["energy_stamp"] = f"stamp-{salt}"
    elif which.endswith("_seed"):
        mutated[which] = salt
    else:
        mutated[which] = f"kind-{salt}"

    def key(ingredients):
        src = ingredients.pop("source")
        return run_key(src, config, **ingredients)

    assert key(dict(base)) != key(dict(mutated))
    assert key(dict(base)) == key(dict(base))  # and keys are deterministic


# ---------------------------------------------------------------------------
# robustness — corruption is evicted, not raised
# ---------------------------------------------------------------------------


def _entry_path(cache, key):
    return cache._path(key)


@pytest.mark.parametrize(
    "garbage",
    [
        "not json at all {",
        '"a bare string"',
        json.dumps({"format": 999, "key": "k", "payload": {}}),
        json.dumps({"format": 1, "key": "WRONG", "payload": {}}),
        json.dumps({"format": 1, "key": "k", "payload": "not-a-dict"}),
    ],
    ids=["syntax", "non-dict", "stale-format", "key-mismatch", "bad-payload"],
)
def test_corrupted_entry_is_evicted(tmp_path, garbage):
    cache = DiskCache(tmp_path)
    key = "ab" + "0" * 62
    path = _entry_path(cache, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(garbage.replace('"k"', f'"{key}"') if '"k"' in garbage else garbage)

    assert cache.get(key) is None  # no exception
    assert not path.exists(), "corrupt entry should have been unlinked"
    assert cache.stats.evictions == 1
    assert cache.stats.hits == 0


def test_previous_entry_format_is_evicted(disk_cache):
    """A format-2 entry (pre-DSE schema: sims without ``slice_width``)
    under today's key must be evicted and recomputed, never deserialized —
    the ENTRY_FORMAT bump is what protects warm caches from schema
    changes."""
    config = _store_one(disk_cache)
    key = disk_cache._run_key(SOURCE, config, "test", 0, "test", 0)
    path = _entry_path(disk_cache, key)
    entry = json.loads(path.read_text())
    assert entry["format"] == bench_cache.ENTRY_FORMAT == 6
    entry["format"] = 2
    del entry["payload"]["sim"]["slice_width"]  # the format-2 shape
    path.write_text(json.dumps(entry))

    record = harness.run(WORKLOAD, config)  # must recompute, not raise
    assert record.correct
    assert disk_cache.stats.evictions == 1
    assert disk_cache.stats.puts == 2
    # the re-stored entry is the current format again with the new field
    entry = json.loads(path.read_text())
    assert entry["format"] == bench_cache.ENTRY_FORMAT
    assert entry["payload"]["sim"]["slice_width"] == 8


def test_corrupted_entry_recovers_end_to_end(disk_cache):
    """After eviction the harness recomputes and re-stores transparently."""
    config = _store_one(disk_cache)
    key = disk_cache._run_key(SOURCE, config, "test", 0, "test", 0)
    _entry_path(disk_cache, key).write_text("garbage")

    record = harness.run(WORKLOAD, config)  # must not raise
    assert record.correct
    assert disk_cache.stats.evictions == 1
    assert disk_cache.stats.puts == 2  # original store + re-store
    # and the re-stored entry is valid again
    harness.clear_caches()
    assert harness.run(WORKLOAD, config).binary is None


def test_put_then_get_round_trips_payload(tmp_path):
    cache = DiskCache(tmp_path)
    key = "cd" + "f" * 62
    payload = {"nested": {"a": [1, 2, 3]}, "x": 1.5}
    cache.put(key, payload)
    assert cache.get(key) == payload
    assert len(cache) == 1


# ---------------------------------------------------------------------------
# torn writes — what a SIGKILL'd writer process leaves behind
# ---------------------------------------------------------------------------


def test_truncated_shard_is_evicted_not_served(tmp_path):
    """A shard cut mid-document (power loss / SIGKILL between write and
    rename on a filesystem that published it anyway) evicts cleanly."""
    cache = DiskCache(tmp_path)
    key = "ee" + "1" * 62
    cache.put(key, {"value": list(range(64))})
    path = _entry_path(cache, key)
    raw = path.read_bytes()
    for cut in (1, len(raw) // 2, len(raw) - 2):
        path.write_bytes(raw[:cut])
        assert cache.get(key) is None
        assert not path.exists()
        cache.put(key, {"value": list(range(64))})
    assert cache.stats.evictions == 3


def test_bitflipped_shard_fails_checksum_and_evicts(tmp_path):
    """Parseable-but-wrong payloads are caught by the ``sha`` field —
    including flips that only change a digit inside the payload."""
    cache = DiskCache(tmp_path)
    key = "ee" + "2" * 62
    cache.put(key, {"value": 12345})
    path = _entry_path(cache, key)
    raw = path.read_bytes()
    flipped = raw.replace(b"12345", b"12245")
    assert flipped != raw
    path.write_bytes(flipped)
    assert cache.get(key) is None
    assert cache.stats.evictions == 1


def test_invalid_utf8_shard_is_evicted_not_raised(tmp_path):
    """A bit flip can produce invalid UTF-8; that is corruption, not a
    crash — the decode happens inside the eviction guard."""
    cache = DiskCache(tmp_path)
    key = "ee" + "3" * 62
    cache.put(key, {"value": 1})
    path = _entry_path(cache, key)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] = 0xFF
    path.write_bytes(bytes(raw))
    assert cache.get(key) is None
    assert cache.stats.evictions == 1


def test_orphan_tmp_files_are_swept_on_open(tmp_path):
    """Stale ``.tmp-*`` files from a killed writer are removed on the
    next cache open; young ones (a live concurrent writer) are kept."""
    import os
    import time

    shard_dir = tmp_path / "ee"
    shard_dir.mkdir(parents=True)
    stale = shard_dir / ".tmp-stale.json"
    stale.write_text("{partial")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    young = shard_dir / ".tmp-young.json"
    young.write_text("{partial")

    DiskCache(tmp_path)
    assert not stale.exists(), "stale orphan should be swept"
    assert young.exists(), "young temp may belong to a live writer"


def _killable_writer(root, key, barrier):
    """Writer child: signal readiness, then put in a tight loop forever —
    the parent SIGKILLs it at an arbitrary point mid-put."""
    cache = DiskCache(root)
    barrier.wait()
    i = 0
    while True:
        cache.put(key, {"round": i, "pad": "y" * 8192})
        i += 1


def test_killed_writer_never_publishes_torn_entry(tmp_path):
    """SIGKILL a writer mid-put-loop; the published shard (if any) must
    be a complete, checksum-valid payload — the atomic temp-file +
    fsync + rename discipline means a kill can only lose the in-flight
    write, never tear the published one."""
    import multiprocessing
    import os
    import signal
    import time

    key = "ff" + "a" * 62
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    writer = ctx.Process(target=_killable_writer, args=(tmp_path, key, barrier))
    writer.start()
    barrier.wait()
    deadline = time.time() + 30
    while not (tmp_path / "ff").is_dir() and time.time() < deadline:
        time.sleep(0.005)
    time.sleep(0.05)  # let a few put rounds land
    os.kill(writer.pid, signal.SIGKILL)
    writer.join(timeout=30)

    cache = DiskCache(tmp_path)
    payload = cache.get(key)  # must never raise
    if payload is not None:
        assert len(payload["pad"]) == 8192, "torn payload served"
        assert payload["round"] >= 0
    assert cache.stats.evictions == 0


# ---------------------------------------------------------------------------
# concurrency — two writers racing on the same shard
# ---------------------------------------------------------------------------


def _hammer_put(root, key, tag, rounds, barrier):
    """Writer process: repeatedly store a distinguishable payload."""
    cache = DiskCache(root)
    barrier.wait()
    for i in range(rounds):
        cache.put(key, {"writer": tag, "round": i, "pad": "x" * 4096})


def test_same_shard_writer_race_never_tears(tmp_path):
    """Two processes racing ``put`` on the *same key* (hence the same
    shard file) while a reader polls: every read must be ``None`` or one
    writer's complete payload — never an exception, never a torn mix.
    Atomicity comes from temp-file + ``os.replace``; this pins it."""
    import multiprocessing

    key = "ab" + "c" * 62
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(3)
    writers = [
        ctx.Process(target=_hammer_put, args=(tmp_path, key, tag, 60, barrier))
        for tag in ("first", "second")
    ]
    for w in writers:
        w.start()
    reader = DiskCache(tmp_path)
    barrier.wait()
    observed = set()
    for _ in range(300):
        payload = reader.get(key)  # must never raise
        if payload is not None:
            assert payload["writer"] in ("first", "second")
            assert len(payload["pad"]) == 4096, "torn read"
            observed.add(payload["writer"])
    for w in writers:
        w.join(timeout=60)
        assert w.exitcode == 0
    assert reader.stats.evictions == 0, "a racing write must never corrupt"
    final = reader.get(key)
    assert final is not None and final["round"] == 59
    # no stray temp files left behind by either writer
    leftovers = list(tmp_path.rglob(".tmp-*"))
    assert leftovers == []


def test_concurrent_distinct_keys_all_land(tmp_path):
    """Writers on different keys of one cache directory don't interfere."""
    import multiprocessing

    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    keys = ["aa" + f"{i:062x}" for i in range(2)]
    procs = [
        ctx.Process(target=_hammer_put, args=(tmp_path, key, key[:4], 25, barrier))
        for key in keys
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    cache = DiskCache(tmp_path)
    for key in keys:
        payload = cache.get(key)
        assert payload is not None and payload["round"] == 24
