"""Interpreter semantics, memory model, tracing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.interp import (
    FlatMemory,
    Interpreter,
    StepLimitExceeded,
    TrapError,
    read_global,
)
from repro.interp.interpreter import evaluate_binop, evaluate_icmp
from repro.interp.memory import initialize_globals, layout_globals
from repro.ir import int_type


class TestFlatMemory:
    def test_roundtrip(self):
        mem = FlatMemory(1024)
        mem.store(100, 0xDEADBEEF, 4)
        assert mem.load(100, 4) == 0xDEADBEEF
        assert mem.load(100, 1) == 0xEF  # little-endian
        assert mem.load(103, 1) == 0xDE

    def test_bounds(self):
        mem = FlatMemory(64)
        with pytest.raises(MemoryError):
            mem.load(62, 4)
        with pytest.raises(MemoryError):
            mem.store(-1, 0, 1)

    @given(st.integers(0, 2**64 - 1), st.sampled_from([1, 2, 4, 8]))
    def test_store_masks(self, value, size):
        mem = FlatMemory(64)
        mem.store(0, value, size)
        assert mem.load(0, size) == value & ((1 << (8 * size)) - 1)

    def test_global_layout_alignment(self):
        module = compile_source("u8 a[3]; u32 b; u16 c[2]; void main() { out(0); }")
        addrs = layout_globals(module)
        assert addrs["b"] % 4 == 0
        assert addrs["c"] % 2 == 0
        mem = FlatMemory()
        initialize_globals(mem, module, addrs)
        module.globals["b"].initializer = [77]
        initialize_globals(mem, module, addrs)
        assert read_global(mem, module, addrs, "b") == [77]


class TestEvaluate:
    @given(
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_binop_matches_python(self, op, a, b):
        ty = int_type(8)
        python = {
            "add": a + b,
            "sub": a - b,
            "mul": a * b,
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
        }[op]
        assert evaluate_binop(op, a, b, ty) == python & 0xFF

    def test_division_semantics(self):
        ty = int_type(32)
        assert evaluate_binop("udiv", 17, 5, ty) == 3
        assert evaluate_binop("sdiv", (-17) & 0xFFFFFFFF, 5, ty) == (-3) & 0xFFFFFFFF
        assert evaluate_binop("srem", (-17) & 0xFFFFFFFF, 5, ty) == (-2) & 0xFFFFFFFF
        with pytest.raises(TrapError):
            evaluate_binop("udiv", 1, 0, ty)

    def test_shift_out_of_range(self):
        ty = int_type(32)
        assert evaluate_binop("lshr", 0xFFFFFFFF, 64, ty) == 0
        assert evaluate_binop("shl", 1, 64, ty) == 0
        assert evaluate_binop("ashr", 0x80000000, 31, ty) == 0xFFFFFFFF

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_icmp_consistency(self, a, b):
        ty = int_type(32)
        assert evaluate_icmp("ult", a, b, ty) == (a < b)
        assert evaluate_icmp("eq", a, b, ty) == (a == b)
        assert evaluate_icmp("slt", a, b, ty) == (ty.to_signed(a) < ty.to_signed(b))


class TestInterpreter:
    def test_step_limit(self):
        module = compile_source("void main() { while (1) { } }")
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, step_limit=1000).run("main")

    def test_trap_on_div_zero(self):
        module = compile_source("u32 d; void main() { out(5 / d); }")
        with pytest.raises(TrapError):
            Interpreter(module).run("main")

    def test_trace_counts(self):
        module = compile_source(
            "void main() { u32 s = 0; for (u32 i = 0; i < 4; i += 1) { s += i; } out(s); }"
        )
        interp = Interpreter(module, trace=True)
        result = interp.run("main")
        assert result.output == [6]
        trace = result.trace
        assert trace.instructions > 0
        assert trace.int_instructions > 0
        assert sum(trace.declared_hist.values()) == trace.int_instructions
        assert sum(trace.required_hist.values()) == trace.int_instructions
        # loop counter values all fit 8 bits
        assert trace.required_hist[8] > 0

    def test_var_stats_track_ranges(self):
        module = compile_source(
            "void main() { u32 x = 0; do { x += 50; } while (x < 300); out(x); }"
        )
        interp = Interpreter(module, trace=True)
        interp.run("main")
        stats = [
            s
            for (f, name), s in interp.trace.var_stats.items()
            if name.startswith("add")
        ]
        assert stats, "expected stats for the increment"
        combined = max(stats, key=lambda s: s.count)
        assert combined.min_bits <= 6
        assert combined.max_bits == 9  # 300 needs 9 bits
        assert combined.min_bits <= combined.avg_bits <= combined.max_bits

    def test_argument_profiling(self):
        module = compile_source(
            """
            u32 f(u32 x) { return x + 1; }
            void main() { out(f(3) + f(200)); }
            """
        )
        interp = Interpreter(module, trace=True)
        interp.run("main")
        stats = interp.trace.var_stats[("f", "x")]
        assert stats.count == 2
        assert stats.min_bits == 2 and stats.max_bits == 8

    def test_memory_visible_after_run(self):
        module = compile_source("u32 g[2]; void main() { g[0] = 11; g[1] = 22; }")
        result = Interpreter(module).run("main")
        values = read_global(
            result.memory, module, result.global_addresses, "g"
        )
        assert values == [11, 22]

    def test_set_global_inputs_validation(self):
        module = compile_source("u32 g[2]; void main() { out(g[0]); }")
        with pytest.raises(KeyError):
            set_global_inputs(module, {"nope": 1})
        with pytest.raises(ValueError):
            set_global_inputs(module, {"g": [1, 2, 3]})
        set_global_inputs(module, {"g": [9]})
        assert Interpreter(module).run("main").output == [9]


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, 2**32 - 1),
    b=st.integers(1, 2**32 - 1),
    shift=st.integers(0, 31),
)
def test_expression_semantics_match_python(a, b, shift):
    """Property: a straight-line MiniC program computes like Python."""
    source = f"""
    void main() {{
        u32 a = {a};
        u32 b = {b};
        out(a + b);
        out(a - b);
        out((a * b) ^ (a >> {shift}));
        out(a / b);
        out(a % b);
        out((a | b) & ~(a & b));
    }}
    """
    module = compile_source(source)
    out = Interpreter(module).run("main").output
    mask = 0xFFFFFFFF
    assert out == [
        (a + b) & mask,
        (a - b) & mask,
        ((a * b) & mask) ^ (a >> shift),
        a // b,
        a % b,
        (a | b) & (~(a & b) & mask),
    ]
