"""Negative tests: the SIR verifier must catch each §3.1 violation."""

import pytest

from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.ir import IRBuilder, VerificationError, const
from repro.ir.instructions import BinOp, Br
from repro.passes import prepare_cfg_module, squeeze_module
from repro.profiler import BitwidthProfile, compute_squeeze_plan
from repro.sir import regions_of
from repro.sir.verifier import verify_sir_function

COUNTER = """
u32 result;
void main() {
    u32 x = 0;
    do { x += 1; } while (x <= 200);
    result = x;
    out(x);
}
"""


def squeezed_main():
    module = compile_source(COUNTER)
    prepare_cfg_module(module)
    profile = BitwidthProfile.collect(module, "main")
    plans = {
        name: compute_squeeze_plan(func, profile, "avg")
        for name, func in module.functions.items()
    }
    squeeze_module(module, plans)
    func = module.function("main")
    verify_sir_function(func, module)  # sanity: valid as produced
    return module, func


def test_handler_as_branch_target_rejected():
    module, func = squeezed_main()
    region = regions_of(func)[0]
    handler = region.handler
    # add a fresh block branching into the handler (keeps phis intact)
    intruder = func.add_block("intruder")
    intruder.append(Br(handler))
    # route control into the intruder so it is structurally reachable
    entry_term = func.entry.terminator
    old_target = entry_term.successors()[0]
    with pytest.raises(VerificationError):
        entry_term.replace_target(old_target, intruder)
        try:
            verify_sir_function(func, module)
        finally:
            entry_term.replace_target(intruder, old_target)


def test_speculative_outside_region_rejected():
    module, func = squeezed_main()
    for block in func.blocks:
        if block.region is None and block.world == "orig":
            for inst in block.instructions:
                if isinstance(inst, BinOp):
                    inst.speculative = True
                    with pytest.raises(VerificationError, match="outside any region"):
                        verify_sir_function(func, module)
                    return
    pytest.skip("no orig-world binop found")


def test_handler_using_region_value_rejected():
    module, func = squeezed_main()
    region = regions_of(func)[0]
    region_def = next(
        i
        for b in region.blocks
        for i in b.instructions
        if i.has_result and i.speculative
    )
    handler = region.handler
    bad = BinOp("add", region_def, const(1, region_def.type.bits),
                func.next_name("bad"))
    handler.insert(0, bad)
    # Rejected either by the Theorem 3.1 check or, earlier, by SIR (Eq. 1)
    # dominance: the region value cannot dominate the handler.
    with pytest.raises(VerificationError):
        verify_sir_function(func, module)


def test_non_idempotent_region_rejected():
    module, func = squeezed_main()
    region = regions_of(func)[0]
    builder = IRBuilder(region.entry)
    from repro.ir import VOID

    call = builder.block.insert(0, __import_call())
    with pytest.raises(VerificationError, match="not idempotent"):
        verify_sir_function(func, module)


def __import_call():
    from repro.ir.instructions import Call
    from repro.ir.types import VOID

    call = Call("__out", [const(1)], VOID)
    call.volatile = True
    return call


def test_handler_into_spec_world_rejected():
    module, func = squeezed_main()
    region = regions_of(func)[0]
    handler = region.handler
    # retarget the handler branch back into the speculative world
    spec_block = region.entry
    handler.terminator.replace_target(handler.terminator.target, spec_block)
    with pytest.raises(VerificationError):
        verify_sir_function(func, module)
