"""Documentation lint: docstrings, markdown links, code references.

Three guarantees, so the docs tree cannot silently rot:

* every ``repro.*`` package ``__init__`` carries a real module docstring;
* every internal link in ``docs/*.md`` (plus README/EXPERIMENTS/DESIGN)
  points at a file that exists, and every ``#anchor`` fragment matches a
  heading in its target;
* every backticked dotted code reference (``repro.module.symbol``) in
  those documents resolves by import + attribute lookup.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent

#: documents the lint covers (docs/ plus the top-level entry points)
DOCS = sorted(
    [
        *(REPO / "docs").glob("*.md"),
        REPO / "README.md",
        REPO / "EXPERIMENTS.md",
        REPO / "DESIGN.md",
    ]
)

PACKAGES = ["repro"] + [
    f"repro.{m.name}"
    for m in pkgutil.iter_modules(repro.__path__)
    if m.ispkg
]


# -- docstrings ----------------------------------------------------------------


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstring(package):
    module = importlib.import_module(package)
    doc = (module.__doc__ or "").strip()
    assert doc, f"{package}/__init__.py has no module docstring"
    assert len(doc.splitlines()[0]) > 10, (
        f"{package} docstring first line is not a real summary: {doc!r}"
    )


# -- markdown helpers ----------------------------------------------------------


_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`([^`\n]+)`")
_CODE_REF = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")


def _prose(path: Path) -> str:
    """The document text with fenced code blocks removed."""
    return _FENCE.sub("", path.read_text())


def _anchor(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {
        _anchor(line)
        for line in _FENCE.sub("", path.read_text()).splitlines()
        if line.startswith("#")
    }


# -- links ---------------------------------------------------------------------


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_internal_links_resolve(doc):
    problems = []
    for target in _LINK.findall(_prose(doc)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            doc if not path_part else (doc.parent / path_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{target}: {resolved} does not exist")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                problems.append(
                    f"{target}: no heading for anchor #{fragment} "
                    f"in {resolved.name}"
                )
    assert not problems, f"{doc.name}: broken links:\n  " + "\n  ".join(problems)


# -- code references -----------------------------------------------------------


def _resolve(ref: str) -> bool:
    """Import the longest module prefix of ``ref``, getattr the rest."""
    parts = ref.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_code_references_resolve(doc):
    problems = []
    for span in _CODE_SPAN.findall(_prose(doc)):
        if _CODE_REF.match(span) and not _resolve(span):
            problems.append(span)
    assert not problems, (
        f"{doc.name}: unresolvable code references: {problems}"
    )


def test_docs_tree_exists():
    for name in (
        "architecture.md",
        "observability.md",
        "glossary.md",
        "serve.md",
        "configuration.md",
    ):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} missing"


# -- entry points and the serve API reference ---------------------------------


def test_every_cli_entry_point_documented_in_readme():
    """Each ``src/repro/<pkg>/__main__.py`` must appear in README."""
    readme = (REPO / "README.md").read_text()
    missing = [
        f"python -m repro.{main.parent.name}"
        for main in sorted((REPO / "src" / "repro").glob("*/__main__.py"))
        if f"python -m repro.{main.parent.name}" not in readme
    ]
    assert not missing, f"README does not mention: {missing}"


def test_serve_docs_cover_every_error_code():
    """docs/serve.md is the API reference: every error code must appear."""
    from repro.serve.server import ERROR_CODES

    page = (REPO / "docs" / "serve.md").read_text()
    missing = [code for code in ERROR_CODES if f"`{code}`" not in page]
    assert not missing, f"docs/serve.md missing error codes: {missing}"


def test_serve_docs_cover_every_endpoint():
    page = (REPO / "docs" / "serve.md").read_text()
    for endpoint in (
        "/healthz",
        "/v1/schema",
        "/v1/stats",
        "/v1/reports",
        "/v1/jobs",
    ):
        assert endpoint in page, f"docs/serve.md missing endpoint {endpoint}"


def test_configuration_docs_cover_every_env_var():
    """Every REPRO_* variable read by the code is documented."""
    read_by_code = set()
    for source in (REPO / "src").rglob("*.py"):
        read_by_code.update(re.findall(r"REPRO_[A-Z_]+", source.read_text()))
    page = (REPO / "docs" / "configuration.md").read_text()
    missing = sorted(v for v in read_by_code if v not in page)
    assert not missing, f"docs/configuration.md missing env vars: {missing}"
