"""Structural tests of the per-figure experiment drivers (small subsets)."""

import pytest

from repro.eval import figures
from repro.eval.harness import run
from repro.core import CompilerConfig

SUBSET = ("crc32", "bitcount")


def test_fig01_structure():
    data = figures.fig01_bitwidth_selection(SUBSET)
    assert len(data["rows"]) == 2
    for row in data["rows"]:
        for key in ("required", "declared", "static", "bbmax"):
            hist = row[key]
            assert sum(hist.values()) == pytest.approx(100.0)
        # the paper's core premise: required ≤8-bit share exceeds declared
        assert row["required"][8] > row["declared"][8]
    # static analysis helps but does not reach the required distribution
    means = data["mean_8bit_percent"]
    assert means["declared"] <= means["static"] <= means["required"]


def test_fig03_series_shape():
    data = figures.fig03_unrolling(("bitcount",), factors=(1, 2, 4))
    series = data["rows"][0]["series"]
    assert [p["factor"] for p in series] == [1, 2, 4]
    assert series[0]["ir_rel"] == 1.0
    # unrolling monotonically reduces dynamic IR instructions (Fig 3)
    assert series[-1]["ir_instructions"] <= series[0]["ir_instructions"]


def test_fig05_aggressiveness_ordering():
    data = figures.fig05_heuristics(SUBSET)
    for row in data["rows"]:
        assert row["min"][8] >= row["avg"][8] >= row["max"][8]


def test_fig08_and_components():
    f8 = figures.fig08_energy(SUBSET)
    assert all(r["energy_rel"] > 0 for r in f8["rows"])
    f9 = figures.fig09_breakdown(SUBSET)
    for row in f9["rows"]:
        assert set(row["rel"]) == {"alu", "regfile", "dcache", "icache", "pipeline"}
        assert row["baseline"]["regfile"] > 0


def test_fig10_fig11_normalization():
    f10 = figures.fig10_spills(SUBSET)
    for row in f10["rows"]:
        total = sum(row["baseline"].values())
        assert total == pytest.approx(1.0) or total == 0.0
    f11 = figures.fig11_regaccess(SUBSET)
    for row in f11["rows"]:
        assert row["baseline"]["8"] == 0.0  # baseline accesses are 32-bit
        assert sum(row["baseline"].values()) == pytest.approx(1.0)
        assert row["bitspec"]["8"] > 0  # slices in use


def test_fig12_speculation_gap():
    data = figures.fig12_nospec(SUBSET)
    for row in data["rows"]:
        assert row["bitspec_rel"] <= row["nospec_rel"] + 0.05


def test_table2_monotone_misspeculation():
    data = figures.fig14_table2_aggressiveness(("crc32",))
    row = data["rows"][0]
    assert row["max_misspecs"] <= row["avg_misspecs"] <= row["min_misspecs"]


def test_fig15_alt_profile_still_correct():
    data = figures.fig15_sensitivity(("bitcount",))
    row = data["rows"][0]
    assert row["bitspec_altprofile_rel"] > 0


@pytest.mark.slow
def test_fig17_composition():
    data = figures.fig17_dts(("bitcount",))
    row = data["rows"][0]
    assert row["dts_rel"] < 1.0
    assert row["dts_bitspec_rel"] < row["dts_rel"]
    assert row["dts_bitspec_rel"] == pytest.approx(row["product_rel"], rel=0.2)


def test_fig18_thumb_overhead():
    data = figures.fig18_thumb(("bitcount",))
    assert data["rows"][0]["instructions_rel"] > 1.0


@pytest.mark.slow
def test_rq3_reports_all_ablations():
    data = figures.rq3_optimizations()
    assert "dijkstra-compare-elimination" in data
    assert "rijndael-bitmask-elision" in data
    assert "blowfish-bitmask-elision" in data


@pytest.mark.slow
def test_rq7_wide_shape():
    data = figures.rq7_auto_bitwidth()
    for name, cell in data.items():
        # widening every variable costs the baseline dearly; BITSPEC recovers
        assert cell["baseline_wide_rel"] > 1.05
        assert cell["bitspec_wide_rel"] < cell["baseline_wide_rel"]


@pytest.mark.slow
def test_fig16_cdf_population():
    data = figures.fig16_susan_cdf(n_images=2, heuristics=("max",))
    cdf = data["cdfs"]["max"]
    assert len(cdf) == 4  # 2x2 cross product
    assert cdf == sorted(cdf)
    # self-profile runs sit at ratio 1.0
    assert any(abs(r - 1.0) < 1e-9 for r in cdf)
