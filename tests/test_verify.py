"""Bounded symbolic equivalence checker (:mod:`repro.verify`).

Covers the three verdict families (proved / counterexample /
bound-exceeded), the misspeculation-handler traversal of the symbolic
executor, driver synthesis for helper functions, the seeded
broken-compiler soundness canaries, counterexample feedback into the
fuzz corpus, and the determinism contract of the CLI report.
"""

import json

import pytest

from repro.faults.toolchain import BEND_KINDS, bend_compiler
from repro.fuzz.corpus import program_from_dict, save_program
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracles import run_oracles
from repro.verify import (
    CANARIES,
    list_targets,
    run_canary,
    verify_function,
)
from repro.verify.__main__ import main as verify_main

SQUEEZED_LOOP = """
u32 x;
void main()
{
    u32 t = 0;
    u32 i = 0;
    while (i < 8)
    {
        t = t + x;
        i = i + 1;
    }
    out(t);
}
"""

HELPER_SUM = """
u32 acc;
u8 table[8];
u32 n;
u32 sum(u8 *t, u32 count)
{
    u32 s = 0;
    u32 i = 0;
    while (i < count)
    {
        s = s + t[i];
        i = i + 1;
    }
    return s;
}
void main()
{
    acc = sum(table, n);
    out(acc);
}
"""

SUM_INPUTS = {"table": [7, 3, 250, 1, 0, 9, 200, 5], "n": 8}


# -- proved verdicts -------------------------------------------------------


def test_proves_squeezed_loop_through_misspec_handlers():
    verdict = verify_function(
        SQUEEZED_LOOP,
        inputs_profile={"x": 3},
        inputs_run={"x": 0},
        k=8,
    )
    assert verdict["verdict"] == "proved"
    assert verdict["lanes"] == 256
    assert verdict["inputs"] == ["x"]
    assert verdict["bends"] == []
    # the proof is not vacuous: the bitspec world forked through the
    # Δ-redirect handler on the lanes where 8*x overflows the slice
    stats = verdict["stats"]["bitspec"]
    assert stats["misspec_lanes"] > 0
    assert stats["paths"] > 1
    assert verdict["stats"]["baseline"]["paths"] >= 1


def test_proves_signed_narrow_input():
    source = (
        "s8 x;\n"
        "void main()\n"
        "{\n"
        "    s32 w = (s32)x;\n"
        "    out((u32)(w + 1000));\n"
        "}\n"
    )
    verdict = verify_function(
        source, inputs_profile={"x": -3}, inputs_run={"x": 0}, k=8
    )
    assert verdict["verdict"] == "proved"
    # signed 8-bit domain is exactly the 256 two's-complement patterns
    assert verdict["lanes"] == 256


def test_driver_verifies_helper_with_pointer_and_scalar_params():
    verdict = verify_function(
        HELPER_SUM,
        "sum",
        inputs_profile=SUM_INPUTS,
        inputs_run=SUM_INPUTS,
        k=4,
    )
    assert verdict["verdict"] == "proved"
    # the pointer param binds to the table global; only the scalar
    # ``count`` becomes a symbolic input
    assert verdict["inputs"] == ["__vfy_count"]
    assert verdict["lanes"] == 16


def test_list_targets_orders_helpers_before_main():
    assert list_targets(HELPER_SUM) == ["sum", "main"]


def test_unknown_function_raises():
    with pytest.raises(ValueError, match="no such function"):
        verify_function(SQUEEZED_LOOP, "nope", inputs_run={"x": 0})


# -- bounds ----------------------------------------------------------------


def test_lane_bound_exceeded_is_reported_not_run():
    verdict = verify_function(
        SQUEEZED_LOOP,
        inputs_profile={"x": 3},
        inputs_run={"x": 0},
        k=8,
        max_lanes=100,
    )
    assert verdict["verdict"] == "bound-exceeded"
    assert "max-lanes" in verdict["reason"]
    assert verdict["lanes"] == 256
    assert verdict["stats"] == {}


def test_step_budget_exceeded_is_reported():
    verdict = verify_function(
        SQUEEZED_LOOP,
        inputs_profile={"x": 3},
        inputs_run={"x": 0},
        k=8,
        step_budget=50,
    )
    assert verdict["verdict"] == "bound-exceeded"
    assert "step budget" in verdict["reason"]


def test_no_symbolic_inputs_is_skipped():
    source = "void main() { out(42); }\n"
    verdict = verify_function(source, inputs_run={})
    assert verdict["verdict"] == "skipped"
    assert "no scalar inputs" in verdict["reason"]


def test_region_cap_skips():
    verdict = verify_function(
        SQUEEZED_LOOP,
        inputs_profile={"x": 3},
        inputs_run={"x": 0},
        k=4,
        max_regions=-1,  # any nonzero cap below the real region count
    )
    # the loop squeezes into at least one region, so a cap of -1 skips
    assert verdict["verdict"] == "skipped"
    assert "regions exceed cap" in verdict["reason"]


# -- soundness canaries ----------------------------------------------------


@pytest.mark.parametrize("canary", CANARIES, ids=lambda c: c["name"])
def test_canary_bend_is_caught(canary):
    """Every seeded silent miscompile must yield a confirmed concrete
    counterexample — the verifier is allowed to say "proved" on a broken
    compiler exactly never."""
    verdict = run_canary(canary)
    assert verdict["bends"], "bend did not apply — canary is vacuous"
    assert verdict["verdict"] == "counterexample"
    assert verdict["caught"] is True
    cex = verdict["counterexample"]
    confirmation = cex["confirmation"]
    assert confirmation["diverged"] is True
    assert confirmation["engines"]["bitspec"]["unanimous"]
    assert confirmation["engines"]["baseline"]["unanimous"]
    # the concretized inputs are inside the bounded domain
    assert set(cex["inputs"]) == set(verdict["inputs"])


def test_canaries_cover_every_bend_kind():
    assert sorted(c["kind"] for c in CANARIES) == sorted(BEND_KINDS)


@pytest.mark.parametrize("canary", CANARIES, ids=lambda c: c["name"])
def test_canary_source_proves_without_the_bend(canary):
    """The counterexamples are bend-caused, not checker noise: the same
    program under the honest compiler verifies clean."""
    verdict = verify_function(
        canary["source"],
        k=canary["k"],
        inputs_profile=canary["inputs_profile"],
        inputs_run=canary["inputs_run"],
    )
    assert verdict["verdict"] == "proved"
    assert verdict["bends"] == []


def test_counterexample_replays_through_oracle_stack():
    """The emitted corpus entry is a valid fuzz artifact: it loads, runs
    through every oracle level under the honest compiler, and produces
    output (the replay contract of tests/corpus/verify-*.json)."""
    verdict = run_canary(CANARIES[0])
    program = program_from_dict(dict(verdict["program"], format=1, name=""))
    assert program.source == verdict["program"]["source"]
    report = run_oracles(program)
    assert report.ok, report.summary()
    assert report.outputs["ref"]


# -- corpus smoke ----------------------------------------------------------


def test_corpus_entry_verifies_at_small_k():
    from repro.fuzz.corpus import load_program

    entry = load_program("tests/corpus/seed003.json")
    for function in list_targets(entry.source):
        verdict = verify_function(
            entry.source,
            function,
            k=4,
            inputs_profile=entry.inputs_profile,
            inputs_run=entry.inputs_run,
            expander_enabled=entry.expander_enabled,
        )
        assert verdict["verdict"] in ("proved", "bound-exceeded", "skipped")


# -- CLI -------------------------------------------------------------------


def _write_entry(directory, name, source, profile, run):
    program = FuzzProgram(
        source=source,
        inputs_profile=profile,
        inputs_run=run,
        seed=None,
        expander_enabled=True,
        note="test entry",
    )
    return save_program(program, directory / f"{name}.json")


def test_cli_report_is_byte_identical_across_runs(tmp_path):
    corpus = tmp_path / "corpus"
    _write_entry(corpus, "loop", SQUEEZED_LOOP, {"x": 3}, {"x": 0})
    out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
    args = ["--corpus", str(corpus), "--k", "4", "--quiet"]
    assert verify_main(args + ["--json", str(out1)]) == 0
    assert verify_main(args + ["--json", str(out2)]) == 0
    assert out1.read_bytes() == out2.read_bytes()
    report = json.loads(out1.read_text())
    assert report["summary"]["proved"] == 1
    assert report["results"][0]["name"] == "loop:main"


def test_cli_exits_nonzero_and_emits_corpus_on_counterexample(tmp_path):
    corpus = tmp_path / "corpus"
    emit = tmp_path / "emitted"
    canary = CANARIES[0]
    _write_entry(
        corpus,
        "bent",
        canary["source"],
        canary["inputs_profile"],
        canary["inputs_run"],
    )
    args = [
        "--corpus", str(corpus), "--quiet",
        "--json", str(tmp_path / "r.json"),
        "--emit-corpus", str(emit),
    ]
    with bend_compiler(canary["kind"], seed=canary["seed"]):
        assert verify_main(args) == 1
    report = json.loads((tmp_path / "r.json").read_text())
    assert report["summary"]["counterexample"] == 1
    emitted = sorted(emit.glob("verify-*.json"))
    assert len(emitted) == 1
    replay = program_from_dict(json.loads(emitted[0].read_text()))
    assert replay.source == canary["source"]
    # and the honest-compiler rerun of the same corpus proves clean
    assert verify_main(args[:5]) == 0


def test_cli_canary_mode_exits_zero_when_all_caught(tmp_path):
    out = tmp_path / "canary.json"
    assert verify_main(["--canary", "--quiet", "--json", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["all_canaries_caught"] is True
    assert report["summary"]["counterexample"] == len(CANARIES)


def test_cli_rejects_empty_corpus(tmp_path):
    assert verify_main(["--corpus", str(tmp_path / "nothing")]) == 2
