"""Microarchitecture substrate: caches, machine, energy, DTS."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import run_machine
from repro.arch import (
    BITWIDTH_AWARE_SLACK,
    Cache,
    DTSModel,
    EnergyCounters,
    MemoryHierarchy,
    compute_energy,
)
from repro.arch.machine import Machine, MachineError
from repro.core import CompilerConfig, compile_binary


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(8 * 1024, 4)
        assert not cache.lookup(0)
        assert cache.lookup(0)
        assert cache.lookup(31)  # same 32B line
        assert not cache.lookup(32)  # next line

    def test_lru_eviction(self):
        cache = Cache(4 * 32, 1, "tiny")  # 4 sets, direct mapped
        set_stride = 4 * 32  # same set every stride
        assert not cache.lookup(0)
        cache.reset_fastpath()
        assert not cache.lookup(set_stride)  # evicts line 0
        cache.reset_fastpath()
        assert not cache.lookup(0)  # line 0 gone

    def test_associativity_keeps_ways(self):
        cache = Cache(2 * 32 * 2, 2, "2way")  # 2 sets, 2 ways
        stride = 2 * 32
        cache.lookup(0)
        cache.reset_fastpath()
        cache.lookup(stride)
        cache.reset_fastpath()
        assert cache.lookup(0)  # both ways resident

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, 3)

    def test_hierarchy_levels(self):
        mh = MemoryHierarchy()
        assert mh.fetch(0) == "mem"  # cold: L1 miss, L2 miss
        mh.icache.reset_fastpath()
        assert mh.fetch(0) == "l1"
        assert mh.data_access(4096) == "mem"
        mh.dcache.reset_fastpath()
        assert mh.data_access(4096) == "l1"
        assert mh.dram_accesses == 2

    def test_stats(self):
        cache = Cache(8 * 1024, 4)
        cache.lookup(0)
        cache.lookup(0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert 0 < cache.stats.miss_rate < 1


class TestEnergyModel:
    def test_zero_counters_zero_energy(self):
        assert compute_energy(EnergyCounters()).total == 0.0

    def test_slice_access_quarter_cost(self):
        narrow = EnergyCounters()
        narrow.rf_reads_by_width[1] = 100
        wide = EnergyCounters()
        wide.rf_reads_by_width[4] = 100
        ratio = compute_energy(narrow).regfile / compute_energy(wide).regfile
        assert ratio == pytest.approx(0.25)

    def test_component_scaling(self):
        counters = EnergyCounters()
        counters.alu32_ops = 10
        counters.cycles = 10
        scaled = compute_energy(counters, scale={"alu": 0.5, "pipeline": 1.0})
        unscaled = compute_energy(counters)
        assert scaled.alu == pytest.approx(unscaled.alu * 0.5)
        assert scaled.pipeline == pytest.approx(unscaled.pipeline)

    def test_miss_costs_ordered(self):
        l1 = EnergyCounters(); l1.dcache_l1 = 1
        l2 = EnergyCounters(); l2.dcache_l2 = 1
        mem = EnergyCounters(); mem.dcache_mem = 1
        assert (
            compute_energy(l1).dcache
            < compute_energy(l2).dcache
            < compute_energy(mem).dcache
        )


class TestMachine:
    def test_step_limit(self):
        binary = compile_binary(
            "void main() { while (1) { } }", CompilerConfig.baseline()
        )
        machine = Machine(binary.linked, binary.module, step_limit=500)
        with pytest.raises(MachineError):
            machine.run()

    def test_trace_hook(self):
        binary = compile_binary("void main() { out(1); }", CompilerConfig.baseline())
        pcs = []
        machine = Machine(
            binary.linked, binary.module, trace_hook=lambda pc, regs: pcs.append(pc)
        )
        machine.run()
        assert pcs and pcs[0] == binary.linked.entry_index

    def test_misspec_redirects_through_skeleton(self):
        source = "void main() { u32 x = 0; do { x += 1; } while (x <= 255); out(x); }"
        binary = compile_binary(
            source, CompilerConfig.bitspec("avg"), profile_inputs=None
        )
        result = binary.run()
        assert result.output == [256]
        assert result.misspeculations == 1

    def test_event_counters_consistent(self, tiny_sum_workload):
        source, inputs, expected = tiny_sum_workload
        result = run_machine(source, inputs)
        assert result.output == expected
        c = result.counters
        # every executed instruction was fetched exactly once
        fetches = c.icache_l1 + c.icache_l2 + c.icache_mem
        assert fetches == result.instructions
        # loads+stores equal D$ accesses
        assert (
            c.dcache_l1 + c.dcache_l2 + c.dcache_mem
            == result.loads + result.stores
        )
        assert result.cycles >= result.instructions
        assert sum(result.class_counts.values()) >= result.instructions * 0.9

    def test_rf_widths_by_isa(self, tiny_sum_workload):
        source, inputs, expected = tiny_sum_workload
        base = run_machine(source, inputs, CompilerConfig.baseline())
        spec = run_machine(source, inputs, CompilerConfig.bitspec("max"))
        assert base.counters.rf_reads_by_width[1] == 0
        assert spec.counters.rf_reads_by_width[1] > 0

    def test_output_equivalence_machine_vs_interp(self, tiny_sum_workload):
        source, inputs, expected = tiny_sum_workload
        for config in (
            CompilerConfig.baseline(),
            CompilerConfig.bitspec("max"),
            CompilerConfig.bitspec("min"),
            CompilerConfig.nospec(),
            CompilerConfig.thumb(),
        ):
            result = run_machine(source, inputs, config)
            assert result.output == expected, config.name


class TestDTS:
    def test_voltage_monotone_in_slack(self):
        model = DTSModel()
        v_tight = model.voltage_for_delay_scale(1.05)
        v_loose = model.voltage_for_delay_scale(1.5)
        assert v_loose < v_tight <= model.vdd_nominal

    def test_energy_factor_bounds(self):
        model = DTSModel()
        for cls in ("alu32", "alu8", "mul", "div", "move", "mem", "branch"):
            factor = model.energy_factor(cls)
            assert 0.1 < factor <= 1.0
        assert model.energy_factor("mul") == 1.0  # no slack on the multiplier

    def test_mix_weighting(self):
        model = DTSModel()
        slack_heavy = {"move": 100}
        tight = {"mul": 100}
        assert model.scale_for_mix(slack_heavy) < model.scale_for_mix(tight)
        assert model.scale_for_mix({}) == 1.0

    def test_bitwidth_aware_saves_more_on_slices(self):
        blind = DTSModel()
        aware = DTSModel.bitwidth_aware()
        mix = {"alu8": 100}
        assert aware.scale_for_mix(mix) < blind.scale_for_mix(mix)

    def test_apply_scales_all_components(self, tiny_sum_workload):
        source, inputs, _ = tiny_sum_workload
        result = run_machine(source, inputs)
        scaled = DTSModel().apply(result)
        nominal = result.energy()
        assert 0 < scaled.total < nominal.total
        for comp in ("alu", "regfile", "dcache", "icache", "pipeline"):
            assert getattr(scaled, comp) <= getattr(nominal, comp)


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=12),
    mask=st.sampled_from([0xFF, 0xFFFF, 0xFFFFFFFF]),
)
def test_property_machine_matches_python(values, mask):
    """Random reduction over inputs: machine result equals Python's."""
    source = f"""
    u32 data[12]; u32 n;
    void main() {{
        u32 acc = 0;
        for (u32 i = 0; i < n; i += 1) {{
            acc = (acc ^ data[i]) + (data[i] & {mask});
        }}
        out(acc);
    }}
    """
    result = run_machine(source, {"data": values, "n": len(values)})
    acc = 0
    for v in values:
        acc = ((acc ^ v) + (v & mask)) & 0xFFFFFFFF
    assert result.output == [acc]


class TestMetamorphicBitwidth:
    """Metamorphic relations: widening run inputs on a fixed-control-flow
    BITSPEC program shifts work from the 8-bit slices to the wide ALU and
    triggers misspeculation, but never violates the energy-model bounds."""

    SOURCE = """
    u8 data[16];
    u32 acc;
    void main() {
        u32 s = 0;
        for (u32 i = 0; i < 16; i += 1) {
            s = (s + data[i]) & 255;
        }
        acc = s;
        out(acc);
    }
    """
    NARROW = {"data": [i % 7 for i in range(16)]}
    WIDE = {"data": [250 + i % 6 for i in range(16)]}  # sums cross 255

    def _run(self, inputs):
        # run() mutates module globals, so each run gets a fresh binary;
        # both profile on NARROW so WIDE genuinely misspeculates.
        config = CompilerConfig.bitspec("max")
        binary = compile_binary(self.SOURCE, config, profile_inputs=self.NARROW)
        return binary.run(inputs)

    def test_widening_inputs_shifts_alu_work(self):
        narrow = self._run(self.NARROW)
        wide = self._run(self.WIDE)
        assert narrow.misspeculations == 0  # profile == run: speculation holds
        assert wide.misspeculations > 0
        assert wide.counters.alu8_ops <= narrow.counters.alu8_ops
        assert wide.counters.alu32_ops >= narrow.counters.alu32_ops

    def test_outputs_match_reference_both_ways(self):
        for inputs in (self.NARROW, self.WIDE):
            expected = 0
            for v in inputs["data"]:
                expected = (expected + v) & 255
            assert self._run(inputs).output == [expected]

    def test_dts_energy_never_exceeds_nominal(self):
        for inputs in (self.NARROW, self.WIDE):
            sim = self._run(inputs)
            assert DTSModel().apply(sim).total <= sim.energy().total + 1e-9
