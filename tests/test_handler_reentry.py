"""Misspeculation *inside* a Δ handler: the re-entry edge of the redirect
contract.

The squeezer never emits a speculative op inside a handler (handlers run
in CFG_orig at full width), so this corner of the contract — a handler
block that is itself the single block of another speculative region, whose
misspeculation must route to *that* region's handler — is exercised with a
hand-built SIR program, below the verifier:

* region A = {entry}, handler hA;
* region B = {hA}, handler hB  (hA is simultaneously A's handler and B's
  body — legal per §3.1.1: a handler may not lie inside the region it
  handles, but nothing stops it being the body of a *different* region);
* every speculative add overflows the 8-bit slice, so control must walk
  entry → hA → hB deterministically, with exactly two misspeculations.

Pinned at the IR interpreter and all three machine engines (legacy,
predecoded, compiled), which must agree bit-for-bit: output ``[600]`` and
a misspeculation count of 2.  A seeded sweep slides the misspeculating
pcs across block offsets so the compiled engine's mid-region redirect
fires at varying block-boundary positions.  The construction deliberately bypasses the
SIR verifier — it checks the squeezer's single-world invariants, and this
program exists precisely to exercise hardware behavior the squeezer never
generates.
"""

import pytest

from repro.arch.machine import Machine
from repro.backend.isel import select_module
from repro.backend.layout import link_program
from repro.backend.regalloc import RegisterAllocator
from repro.interp.interpreter import Interpreter
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.types import VOID
from repro.sir.regions import SpeculativeRegion


def build_reentry_module() -> Module:
    module = Module("reentry")
    func = module.add_function(Function("main", VOID))
    entry = func.add_block("entry")
    handler_a = func.add_block("hA")
    handler_b = func.add_block("hB")
    exit_block = func.add_block("exit")

    b = IRBuilder(entry)
    # 200 + 100 = 300: carries out of the u8 slice, always misspeculates.
    first = b.add(b.const(200, 8), b.const(100, 8))
    first.speculative = True
    b.call("__out", [first], VOID)  # never reached; anchors the def
    b.br(exit_block)

    b.set_block(handler_a)
    second = b.add(b.const(220, 8), b.const(90, 8))
    second.speculative = True
    b.call("__out", [second], VOID)  # never reached either
    b.br(exit_block)

    b.set_block(handler_b)
    b.call("__out", [b.const(600, 32)], VOID)
    b.br(exit_block)

    b.set_block(exit_block)
    b.ret()

    # Order matters: hA must become A's handler while it is still
    # region-free, then join B as its (only) body block.
    region_a = SpeculativeRegion([entry])
    region_a.set_handler(handler_a)
    region_b = SpeculativeRegion([handler_a])
    region_b.set_handler(handler_b)
    return module


def _link(module: Module):
    program = select_module(module, isa="ARM_BS")
    for mfunc in program.functions.values():
        RegisterAllocator(mfunc, isa="ARM_BS").run()
    return link_program(program)


def test_region_wiring():
    module = build_reentry_module()
    func = module.function("main")
    entry, handler_a, handler_b, _ = func.blocks
    assert entry.region.handler is handler_a
    assert handler_a.handler_for is entry.region
    assert handler_a.region.handler is handler_b
    assert handler_b.handler_for is handler_a.region


def test_interpreter_reenters_through_both_handlers():
    result = Interpreter(build_reentry_module(), trace=True).run("main")
    assert result.output == [600]
    assert result.trace.misspeculations == 2


def test_machine_reenters_through_both_handlers(engine):
    """Every engine walks entry → hA → hB: exactly 2 misspecs.

    For the compiled engine this is the misspec-inside-handler re-entry
    property: the first redirect aborts a compiled region mid-block, the
    dispatcher re-enters at hA's region, and *that* region's own misspec
    must redirect again — a fallback-inside-fallback path.
    """
    module = build_reentry_module()
    linked = _link(module)
    sim = Machine(
        module=module, linked=linked, engine=engine, step_limit=10_000
    ).run()
    assert sim.output == [600]
    assert sim.misspeculations == 2


def test_engines_and_interpreter_agree_exactly():
    module = build_reentry_module()
    linked = _link(module)
    fast = Machine(module=module, linked=linked, fast=True, step_limit=10_000).run()
    legacy = Machine(module=module, linked=linked, fast=False, step_limit=10_000).run()
    assert (fast.output, fast.misspeculations, fast.instructions) == (
        legacy.output, legacy.misspeculations, legacy.instructions
    )
    interp = Interpreter(build_reentry_module(), trace=True).run("main")
    assert interp.output == fast.output
    assert interp.trace.misspeculations == fast.misspeculations


def _lcg(seed: int):
    """Tiny deterministic generator (hypothesis-style seeded exploration)."""
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def step() -> int:
        nonlocal state
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        return state >> 16

    return step


def build_padded_reentry_module(pad_entry: int, pad_handler: int, rng) -> Module:
    """The re-entry program with seeded non-speculative padding.

    The filler adds slide the two misspeculating ops across instruction
    positions — and therefore across compiled-region block offsets and
    icache line boundaries — so the redirect can fire at the first, a
    middle, or the last pc of its block.
    """
    module = Module("reentry_padded")
    func = module.add_function(Function("main", VOID))
    entry = func.add_block("entry")
    handler_a = func.add_block("hA")
    handler_b = func.add_block("hB")
    exit_block = func.add_block("exit")

    b = IRBuilder(entry)
    for _ in range(pad_entry):
        v = rng() % 1000
        b.add(b.const(v, 32), b.const(v + 1, 32))
    first = b.add(b.const(200, 8), b.const(100, 8))
    first.speculative = True
    b.call("__out", [first], VOID)
    b.br(exit_block)

    b.set_block(handler_a)
    for _ in range(pad_handler):
        v = rng() % 1000
        b.add(b.const(v, 32), b.const(v + 2, 32))
    second = b.add(b.const(220, 8), b.const(90, 8))
    second.speculative = True
    b.call("__out", [second], VOID)
    b.br(exit_block)

    b.set_block(handler_b)
    b.call("__out", [b.const(600, 32)], VOID)
    b.br(exit_block)

    b.set_block(exit_block)
    b.ret()

    region_a = SpeculativeRegion([entry])
    region_a.set_handler(handler_a)
    region_b = SpeculativeRegion([handler_a])
    region_b.set_handler(handler_b)
    return module


@pytest.mark.parametrize("seed", range(8))
def test_seeded_block_boundary_redirect_sweep(seed):
    """Seeded sweep: redirects at varying block-boundary pcs, all engines.

    Padding sizes are drawn from the seed, so across the sweep the
    misspeculating pc lands at different offsets within (and at the edges
    of) its block.  Every engine must agree with the fast path on the
    full result — and the walk must still produce exactly 2 misspecs and
    the hB-only output, whatever the redirect pc.
    """
    from test_machine_predecode import assert_engine_matches

    rng = _lcg(seed)
    pad_entry = rng() % 24
    pad_handler = rng() % 24
    module = build_padded_reentry_module(pad_entry, pad_handler, rng)
    linked = _link(module)
    ref = Machine(
        module=module, linked=linked, engine="fast", step_limit=10_000
    ).run()
    assert ref.output == [600]
    assert ref.misspeculations == 2
    for engine in ("legacy", "compiled", "ooo"):
        sim = Machine(
            module=module, linked=linked, engine=engine, step_limit=10_000
        ).run()
        assert_engine_matches(
            sim, ref, engine,
            f"seed={seed} pads=({pad_entry},{pad_handler})/{engine}",
        )
