"""Speculative-IR equivalence for every workload under every heuristic.

Uses the interpreter (fast) on the squeezed IR: whatever the profiler and
squeezer decided, outputs must match the oracle — including when the MIN
heuristic misspeculates heavily.
"""

import pytest

from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.ir.cfg import remove_unreachable_blocks
from repro.passes import (
    eliminate_dead_code_module,
    prepare_cfg_module,
    run_speculative_opts,
    simplify_module,
    squeeze_module,
)
from repro.profiler import BitwidthProfile, compute_squeeze_plan
from repro.sir import verify_sir_module
from repro.workloads import get_workload, workload_names

NAMES = workload_names()


def _squeeze_for(workload, heuristic, profile_kind, run_kind):
    module = compile_source(workload.source, workload.name)
    prepare_cfg_module(module)
    set_global_inputs(module, workload.inputs(profile_kind))
    profile = BitwidthProfile.collect(module, "main")
    plans = {
        name: compute_squeeze_plan(func, profile, heuristic)
        for name, func in module.functions.items()
    }
    squeeze_module(module, plans)
    run_speculative_opts(module)
    for func in module.functions.values():
        remove_unreachable_blocks(func)
    eliminate_dead_code_module(module)
    simplify_module(module)
    verify_module(module)
    verify_sir_module(module)
    inputs = workload.inputs(run_kind)
    set_global_inputs(module, inputs)
    interp = Interpreter(module, trace=True)
    result = interp.run("main")
    return result, workload.expected_output(inputs)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("heuristic", ["avg", "min"])
def test_squeezed_ir_matches_oracle(name, heuristic):
    workload = get_workload(name)
    result, expected = _squeeze_for(workload, heuristic, "train", "train")
    assert result.output == expected, (name, heuristic)


@pytest.mark.parametrize("name", ["crc32", "qsort", "stringsearch", "patricia"])
def test_profile_mismatch_recovers(name):
    """Profile on the alternate input, run on test: misspeculation recovery
    must restore exact semantics even under MIN."""
    workload = get_workload(name)
    result, expected = _squeeze_for(workload, "min", "alt", "test")
    assert result.output == expected, name
