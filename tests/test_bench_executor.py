"""Executor tests: fan-out, retry-once-then-degrade, timeouts, stats.

Parallelism here is exercised for *correctness* (ordering, retry plumbing,
cross-process cache sharing), not speed — CI machines may have any core
count.  The speedup claims live in the BENCH_*.json artifacts produced by
the bench-smoke CI job.
"""

import pytest

from repro.bench.executor import BenchTask, run_matrix
from repro.core.pipeline import CompilerConfig
from repro.eval import harness


@pytest.fixture(autouse=True)
def _isolate_caches():
    harness.clear_caches()
    yield
    harness.set_disk_cache(None)
    harness.clear_caches()


def _task(workload="crc32", config=None, **kw):
    return BenchTask(
        workload=workload, config=config or CompilerConfig.baseline(), **kw
    )


def test_sequential_matrix_ok(tmp_path):
    tasks = [_task("crc32"), _task("bitcount")]
    outcomes, stats = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert [o.workload for o in outcomes] == ["crc32", "bitcount"]
    assert stats.ok == 2 and stats.failed == 0 and stats.retried == 0
    assert all(o.status == "ok" and o.instructions > 0 for o in outcomes)
    assert stats.instructions == sum(o.instructions for o in outcomes)


def test_unknown_workload_degrades_with_one_retry(tmp_path):
    tasks = [_task("crc32"), _task("no-such-workload")]
    outcomes, stats = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    good, bad = outcomes
    assert good.status == "ok"
    assert bad.status == "failed"
    assert bad.attempts == 2, "failed task must be retried exactly once"
    assert "retry:" in bad.error
    assert stats.failed == 1 and stats.retried == 1
    assert stats.ok == 1, "one bad cell must not sink the campaign"


def test_timeout_degrades_instead_of_hanging():
    # 1 ms: fires mid-compile long before the simulation could finish.
    outcomes, stats = run_matrix(
        [_task("sha", CompilerConfig.bitspec("avg"))],
        jobs=1,
        cache_dir=None,
        timeout=0.001,
        retries=0,
    )
    (outcome,) = outcomes
    assert outcome.status == "failed"
    assert "timeout" in outcome.error
    assert stats.failed == 1


def test_warm_rerun_is_all_cache_hits(tmp_path):
    tasks = [_task("crc32"), _task("crc32", CompilerConfig.bitspec("max"))]
    _, cold = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert cold.cache_hits == 0

    harness.clear_caches()  # simulate a fresh process; disk survives
    outcomes, warm = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert warm.cache_hits == len(tasks)
    assert warm.hit_rate == 1.0
    assert all(o.cached and o.status == "ok" for o in outcomes)
    # cached outcomes still carry the full metrics row
    assert all(o.instructions > 0 and o.energy_pj > 0 for o in outcomes)


def test_parallel_matrix_matches_sequential(tmp_path):
    """Same outcomes (modulo wall-clock) whether fanned out or not."""
    tasks = [
        _task(w, c)
        for w in ("crc32", "bitcount")
        for c in (CompilerConfig.baseline(), CompilerConfig.bitspec("max"))
    ]
    seq, _ = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "seq")
    par, stats = run_matrix(tasks, jobs=2, cache_dir=tmp_path / "par")
    assert stats.failed == 0
    assert [o.workload for o in par] == [o.workload for o in seq]
    for a, b in zip(par, seq):
        assert (a.workload, a.config_name, a.status) == (
            b.workload,
            b.config_name,
            b.status,
        )
        assert (a.instructions, a.cycles, a.misspeculations) == (
            b.instructions,
            b.cycles,
            b.misspeculations,
        )
        assert a.energy_pj == pytest.approx(b.energy_pj)


def test_parallel_retry_plumbing(tmp_path):
    tasks = [_task("no-such-workload"), _task("crc32")]
    outcomes, stats = run_matrix(tasks, jobs=2, cache_dir=tmp_path / "c")
    assert outcomes[0].status == "failed" and outcomes[0].attempts == 2
    assert outcomes[1].status == "ok"
    assert stats.retried == 1


def test_progress_callback_sees_every_task(tmp_path):
    seen = []
    run_matrix(
        [_task("crc32"), _task("bitcount")],
        jobs=1,
        cache_dir=tmp_path / "c",
        progress=lambda done, total, o: seen.append((done, total, o.workload)),
    )
    assert [(d, t) for d, t, _ in seen] == [(1, 2), (2, 2)]


def test_task_label():
    assert _task("crc32").label() == "crc32/baseline"
    assert (
        _task("crc32", run_seed=3).label() == "crc32/baseline[p=test:0,r=test:3]"
    )
