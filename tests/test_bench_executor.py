"""Executor tests: fan-out, retry-once-then-degrade, timeouts, stats.

Parallelism here is exercised for *correctness* (ordering, retry plumbing,
cross-process cache sharing), not speed — CI machines may have any core
count.  The speedup claims live in the BENCH_*.json artifacts produced by
the bench-smoke CI job.
"""

import pytest

from repro.bench.executor import BenchTask, run_matrix
from repro.core.pipeline import CompilerConfig
from repro.eval import harness


@pytest.fixture(autouse=True)
def _isolate_caches():
    harness.clear_caches()
    yield
    harness.set_disk_cache(None)
    harness.clear_caches()


def _task(workload="crc32", config=None, **kw):
    return BenchTask(
        workload=workload, config=config or CompilerConfig.baseline(), **kw
    )


def test_sequential_matrix_ok(tmp_path):
    tasks = [_task("crc32"), _task("bitcount")]
    outcomes, stats = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert [o.workload for o in outcomes] == ["crc32", "bitcount"]
    assert stats.ok == 2 and stats.failed == 0 and stats.retried == 0
    assert all(o.status == "ok" and o.instructions > 0 for o in outcomes)
    assert stats.instructions == sum(o.instructions for o in outcomes)


def test_unknown_workload_degrades_with_one_retry(tmp_path):
    tasks = [_task("crc32"), _task("no-such-workload")]
    outcomes, stats = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    good, bad = outcomes
    assert good.status == "ok"
    assert bad.status == "failed"
    assert bad.attempts == 2, "failed task must be retried exactly once"
    assert "retry:" in bad.error
    assert stats.failed == 1 and stats.retried == 1
    assert stats.ok == 1, "one bad cell must not sink the campaign"


def test_timeout_degrades_instead_of_hanging():
    # 1 ms: fires mid-compile long before the simulation could finish.
    outcomes, stats = run_matrix(
        [_task("sha", CompilerConfig.bitspec("avg"))],
        jobs=1,
        cache_dir=None,
        timeout=0.001,
        retries=0,
    )
    (outcome,) = outcomes
    assert outcome.status == "failed"
    assert "timeout" in outcome.error
    assert stats.failed == 1


def test_warm_rerun_is_all_cache_hits(tmp_path):
    tasks = [_task("crc32"), _task("crc32", CompilerConfig.bitspec("max"))]
    _, cold = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert cold.cache_hits == 0

    harness.clear_caches()  # simulate a fresh process; disk survives
    outcomes, warm = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "c")
    assert warm.cache_hits == len(tasks)
    assert warm.hit_rate == 1.0
    assert all(o.cached and o.status == "ok" for o in outcomes)
    # cached outcomes still carry the full metrics row
    assert all(o.instructions > 0 and o.energy_pj > 0 for o in outcomes)


def test_parallel_matrix_matches_sequential(tmp_path):
    """Same outcomes (modulo wall-clock) whether fanned out or not."""
    tasks = [
        _task(w, c)
        for w in ("crc32", "bitcount")
        for c in (CompilerConfig.baseline(), CompilerConfig.bitspec("max"))
    ]
    seq, _ = run_matrix(tasks, jobs=1, cache_dir=tmp_path / "seq")
    par, stats = run_matrix(tasks, jobs=2, cache_dir=tmp_path / "par")
    assert stats.failed == 0
    assert [o.workload for o in par] == [o.workload for o in seq]
    for a, b in zip(par, seq):
        assert (a.workload, a.config_name, a.status) == (
            b.workload,
            b.config_name,
            b.status,
        )
        assert (a.instructions, a.cycles, a.misspeculations) == (
            b.instructions,
            b.cycles,
            b.misspeculations,
        )
        assert a.energy_pj == pytest.approx(b.energy_pj)


def test_parallel_retry_plumbing(tmp_path):
    tasks = [_task("no-such-workload"), _task("crc32")]
    outcomes, stats = run_matrix(tasks, jobs=2, cache_dir=tmp_path / "c")
    assert outcomes[0].status == "failed" and outcomes[0].attempts == 2
    assert outcomes[1].status == "ok"
    assert stats.retried == 1


def test_progress_callback_sees_every_task(tmp_path):
    seen = []
    run_matrix(
        [_task("crc32"), _task("bitcount")],
        jobs=1,
        cache_dir=tmp_path / "c",
        progress=lambda done, total, o: seen.append((done, total, o.workload)),
    )
    assert [(d, t) for d, t, _ in seen] == [(1, 2), (2, 2)]


def test_task_label():
    assert _task("crc32").label() == "crc32/baseline"
    assert (
        _task("crc32", run_seed=3).label() == "crc32/baseline[p=test:0,r=test:3]"
    )


# ---------------------------------------------------------------------------
# retry backoff: exponential, capped, deterministically jittered
# ---------------------------------------------------------------------------


def test_backoff_is_deterministic_and_bounded():
    from repro.bench.executor import BACKOFF_BASE, BACKOFF_CAP, _backoff_delay

    for round_index in range(8):
        base = min(BACKOFF_CAP, BACKOFF_BASE * 2 ** round_index)
        delay = _backoff_delay(round_index, "crc32/baseline")
        assert delay == _backoff_delay(round_index, "crc32/baseline")
        assert base / 2 <= delay <= base
    # jitter de-synchronizes different tasks at the same round
    assert _backoff_delay(0, "a") != _backoff_delay(0, "b")
    # ... and the cap holds forever
    assert _backoff_delay(50, "x") <= BACKOFF_CAP


def test_retry_sleeps_with_backoff(monkeypatch, tmp_path):
    from repro.bench import executor

    naps = []
    monkeypatch.setattr(executor.time, "sleep", naps.append)
    outcomes, stats = run_matrix(
        [_task("no-such-workload")], jobs=1, cache_dir=tmp_path / "c"
    )
    assert outcomes[0].attempts == 2
    assert naps == [executor._backoff_delay(0, _task("no-such-workload").label())]


# ---------------------------------------------------------------------------
# SIGALRM re-entrancy: _task_alarm must compose with outer deadlines
# ---------------------------------------------------------------------------


import signal
import time

from repro.bench.executor import _TaskTimeout, _task_alarm


class _OuterDeadline(Exception):
    pass


def _raise_outer(signum, frame):
    raise _OuterDeadline()


@pytest.fixture
def _clean_alarm():
    prior = signal.getsignal(signal.SIGALRM)
    yield
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, prior)


def test_task_alarm_fires_and_restores(_clean_alarm):
    outer = signal.signal(signal.SIGALRM, _raise_outer)
    with pytest.raises(_TaskTimeout):
        with _task_alarm(0.02):
            time.sleep(0.5)
    # prior handler restored, no timer left ticking
    assert signal.getsignal(signal.SIGALRM) is _raise_outer
    assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
    signal.signal(signal.SIGALRM, outer)


def test_task_alarm_restores_outer_timer_remaining(_clean_alarm):
    """A bench task nested under an outer ITIMER_REAL deadline must not
    disarm it: on scope exit the outer timer is re-armed with (roughly)
    its remaining time."""
    signal.signal(signal.SIGALRM, _raise_outer)
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    with _task_alarm(0.01):
        try:
            time.sleep(0.05)
        except _TaskTimeout:
            pass
    remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    assert 0.0 < remaining <= 30.0
    assert signal.getsignal(signal.SIGALRM) is _raise_outer


def test_task_alarm_expired_outer_deadline_still_fires(_clean_alarm):
    """An outer deadline that lapses while the inner alarm owns ITIMER_REAL
    is not lost — it is re-armed (epsilon) on exit and fires promptly."""
    signal.signal(signal.SIGALRM, _raise_outer)
    signal.setitimer(signal.ITIMER_REAL, 0.03)
    with pytest.raises(_OuterDeadline):
        with _task_alarm(30.0):
            time.sleep(0.08)  # outer would have fired here; inner owns timer
        time.sleep(0.5)  # re-armed with epsilon: fires immediately


def test_task_alarm_nests_within_itself(_clean_alarm):
    """Two stacked _task_alarm scopes: the inner timeout fires without
    killing the outer scope's deadline."""
    with pytest.raises(_TaskTimeout):
        with _task_alarm(0.5):
            with pytest.raises(_TaskTimeout):
                with _task_alarm(0.02):
                    time.sleep(0.2)
            time.sleep(2.0)  # outer deadline (0.5s minus elapsed) fires here


def test_task_alarm_none_is_a_no_op(_clean_alarm):
    sentinel = signal.signal(signal.SIGALRM, _raise_outer)
    with _task_alarm(None):
        pass
    assert signal.getsignal(signal.SIGALRM) is _raise_outer
    signal.signal(signal.SIGALRM, sentinel)
