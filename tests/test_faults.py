"""Fault-injection layer: plans, sessions, classification, campaigns.

Four families:

* **plan derivation** — deterministic, stable across processes, and
  serializable (plans are what make campaign documents reproducible);
* **engine parity under faults** — the legacy and predecoded engines must
  stay bit-identical even while a FaultSession is bending their spec
  verdicts and corrupting their state;
* **classification** — each fault kind lands in the documented coverage
  category on a fixed program, and the recovery guarantee (a spurious
  misspeculation can never corrupt output) holds;
* **campaigns** — same seed ⇒ byte-identical canonical JSON, warm or
  cold, serial or parallel; the CLI round-trips the same matrix.
"""

import json

import pytest

from repro.arch.machine import FaultTrap, Machine, MachineError
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval import harness
from repro.faults import (
    DETECTABLE_KINDS,
    FAULT_KINDS,
    SPEC_KINDS,
    STEP_KINDS,
    FaultPlan,
    FaultSession,
    GoldenProfile,
    derive_plan,
)
from repro.faults.campaign import (
    DETECTED_RECOVERED,
    DETECTED_UNRECOVERABLE,
    MASKED,
    SDC,
    golden_profile,
    resolve_config,
    run_campaign,
    run_injection,
    to_canonical_json,
)
from repro.faults.plan import detectable_kinds

#: profiled with a small seed and run with a large one, so BITSPEC T=MIN
#: genuinely misspeculates (live trigger pools for every spec-fault kind)
SOURCE = """
u32 n;
u32 acc;
void main() {
    u32 x = n;
    for (u32 i = 0; i < 30; i += 1) {
        x = (x + i) & 1023;
        acc = acc + x;
    }
    out(acc);
    out(x);
}
"""

RUN_INPUTS = {"n": 200}


@pytest.fixture(scope="module")
def golden():
    binary = compile_binary(
        SOURCE, CompilerConfig.bitspec("min"), profile_inputs={"n": 3}
    )
    sim = binary.run(RUN_INPUTS, obs=True)
    return binary, sim, golden_profile(binary, sim)


# ---------------------------------------------------------------------------
# plan derivation
# ---------------------------------------------------------------------------


PROFILE = GoldenProfile(
    instructions=1000, misspeculations=7, spec_successes=40,
    mem_base=0x1000, mem_span=64,
)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_derive_plan_is_deterministic(kind):
    a = derive_plan(kind, 1234, PROFILE)
    b = derive_plan(kind, 1234, PROFILE)
    assert a == b
    assert derive_plan(kind, 1235, PROFILE).seed != a.seed


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_plan_round_trips_through_dict(kind):
    plan = derive_plan(kind, 99, PROFILE, parity=True)
    assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan
    assert plan.describe()  # never empty, never raises


def test_plan_fields_respect_the_golden_profile():
    for seed in range(50):
        step = derive_plan("rf_bit", seed, PROFILE)
        assert 1 <= step.trigger_step <= PROFILE.instructions
        assert 0 <= step.reg < 13 and 0 <= step.bit < 32
        mem = derive_plan("mem_bit", seed, PROFILE)
        assert PROFILE.mem_base <= mem.addr < PROFILE.mem_base + PROFILE.mem_span
        spec = derive_plan("misspec_suppress", seed, PROFILE)
        assert 1 <= spec.nth_event <= PROFILE.misspeculations
        spur = derive_plan("misspec_spurious", seed, PROFILE)
        assert 1 <= spur.nth_event <= PROFILE.spec_successes


def test_empty_event_pool_gives_untriggered_plan():
    quiet = GoldenProfile(
        instructions=10, misspeculations=0, spec_successes=0,
        mem_base=0x1000, mem_span=4,
    )
    plan = derive_plan("misspec_suppress", 0, quiet)
    assert plan.nth_event == 1  # unreachable: the run has no event #1
    session = FaultSession(plan)
    assert session.spec_outcome(False) is False
    assert not session.triggered


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        derive_plan("cosmic_ray", 0, PROFILE)


def test_kind_partition():
    from repro.faults.plan import RECOVERY_KINDS

    assert STEP_KINDS | SPEC_KINDS | RECOVERY_KINDS == frozenset(FAULT_KINDS)
    assert not STEP_KINDS & SPEC_KINDS
    assert not (STEP_KINDS | SPEC_KINDS) & RECOVERY_KINDS
    assert DETECTABLE_KINDS == frozenset(
        {"misspec_spurious", "dts_timing", "ooo_flush_drop"}
    )
    assert detectable_kinds(parity=True) == DETECTABLE_KINDS | {
        "mem_bit", "icache", "ooo_ckpt_bit"
    }


# ---------------------------------------------------------------------------
# session semantics
# ---------------------------------------------------------------------------


def test_session_suppress_eats_exactly_the_nth_miss():
    plan = FaultPlan("misspec_suppress", 0, nth_event=2)
    session = FaultSession(plan)
    assert session.spec_outcome(True) is True     # event 1 passes through
    assert session.spec_outcome(False) is False   # successes don't count
    assert session.spec_outcome(True) is False    # event 2: suppressed
    assert session.triggered
    assert session.spec_outcome(True) is True     # later misses unharmed


def test_session_spurious_asserts_exactly_the_nth_success():
    session = FaultSession(FaultPlan("misspec_spurious", 0, nth_event=2))
    assert session.spec_outcome(False) is False
    assert session.spec_outcome(False) is True  # second success flipped
    assert session.triggered
    assert session.spec_outcome(False) is False


def test_session_delta_drop_sabotages_one_redirect():
    session = FaultSession(FaultPlan("delta_drop", 0, nth_event=1))
    assert session.spec_outcome(True) is True  # the miss itself stands
    assert session.redirect(100, 40) == 101    # ... but the Δ jump is dropped
    assert session.redirect(100, 40) == 140    # later redirects are normal


def test_session_delta_misroute_displaces_one_redirect():
    session = FaultSession(FaultPlan("delta_misroute", 0, nth_event=1, offset=3))
    session.spec_outcome(True)
    assert session.redirect(100, 40) == 143
    assert session.redirect(100, 40) == 140


def test_session_parity_trap_on_mem_bit():
    plan = FaultPlan("mem_bit", 0, trigger_step=1, addr=0x1000, bit=0,
                     parity=True)
    session = FaultSession(plan)
    with pytest.raises(FaultTrap):
        session.on_step(1, 0, [0] * 16, None)
    assert session.detected_by_parity


def test_session_razor_replay_counts_cycles():
    session = FaultSession(FaultPlan("dts_timing", 0, trigger_step=3))
    assert session.on_step(2, 0, [], None) is None
    session.on_step(3, 0, [], None)
    assert session.razor_recoveries == 1
    assert session.extra_cycles > 0


# ---------------------------------------------------------------------------
# engine parity under faults
# ---------------------------------------------------------------------------


def _engine_result(binary, plan, fast):
    set_global_inputs(binary.module, RUN_INPUTS)
    machine = Machine(
        binary.linked, binary.module,
        faults=FaultSession(plan), fast=fast, step_limit=5000,
    )
    try:
        sim = machine.run()
        return ("ok", sim.output, sim.misspeculations, sim.instructions)
    except FaultTrap as exc:
        return ("trap", str(exc))
    except (MachineError, MemoryError, OverflowError, ValueError) as exc:
        return (type(exc).__name__, str(exc))


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_engines_agree_under_faults(golden, kind):
    """Legacy and predecoded engines stay bit-identical on faulted runs —
    output, misspeculation count, instruction count, or the exact same
    trap, for every kind and several seeds (parity on and off)."""
    binary, _, profile = golden
    for seed in range(4):
        plan = derive_plan(kind, seed, profile, parity=seed % 2 == 1)
        fast = _engine_result(binary, plan, True)
        legacy = _engine_result(binary, plan, False)
        assert fast == legacy, f"{kind} seed {seed}: {fast} != {legacy}"


def test_no_fault_run_is_unperturbed(golden):
    binary, golden_sim, _ = golden
    again = binary.run(RUN_INPUTS)
    assert again.output == golden_sim.output
    assert again.instructions == golden_sim.instructions
    assert again.misspeculations == golden_sim.misspeculations


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


def test_dts_timing_always_recovers(golden):
    """Razor-detected timing errors are detected + replayed by design."""
    binary, golden_sim, profile = golden
    for seed in range(5):
        plan = derive_plan("dts_timing", seed, profile)
        record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
        assert record["category"] == DETECTED_RECOVERED
        assert record["mechanism"] == "razor-replay"
        assert record["razor_recoveries"] == 1


def test_spurious_misspec_never_corrupts(golden):
    """The recovery guarantee: a spuriously asserted misspec signal routes
    through the Δ handler, which re-executes wide — output must match the
    golden run for every seed (the fault is absorbed, never SDC)."""
    binary, golden_sim, profile = golden
    for seed in range(5):
        plan = derive_plan("misspec_spurious", seed, profile)
        record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
        assert record["triggered"]
        assert record["output_matches"], f"seed {seed} corrupted output"
        assert record["category"] in (DETECTED_RECOVERED, MASKED)


def test_suppressed_misspec_is_silent_corruption(golden):
    """Suppressing the slice carry-out is the one *undetectable* fault the
    paper's net cannot catch: the wrong narrow writeback commits.  The
    campaign must call that SDC — not masked, not recovered."""
    binary, golden_sim, profile = golden
    plan = derive_plan("misspec_suppress", 0, profile)
    record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
    assert record["triggered"]
    assert record["category"] == SDC
    assert "misspec_suppress" not in DETECTABLE_KINDS


def test_parity_turns_mem_corruption_into_a_trap(golden):
    binary, golden_sim, profile = golden
    plan = derive_plan("mem_bit", 0, profile, parity=True)
    record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
    assert record["category"] == DETECTED_UNRECOVERABLE
    assert record["mechanism"] == "parity-trap"
    assert not record["output_matches"]


def test_delta_drop_detected_via_extra_misspecs(golden):
    """A dropped redirect leaves the misspec *detected* (counted) but the
    recovery incomplete — classified unrecoverable, never silent."""
    binary, golden_sim, profile = golden
    plan = derive_plan("delta_drop", 0, profile)
    record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
    assert record["category"] == DETECTED_UNRECOVERABLE
    assert record["mechanism"] == "delta-handler"


def test_untriggered_plan_classifies_masked(golden):
    """A plan waiting for an event ordinal the run never reaches stays
    untriggered and is reported as masked, not dropped."""
    binary, golden_sim, _ = golden
    plan = FaultPlan("delta_misroute", 0, nth_event=99, offset=1)
    record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
    assert record["category"] == MASKED
    assert not record["triggered"]


def test_recovered_faults_carry_attribution():
    """Recovered injections name the absorbing site: function, world,
    region and Δ handler from the obs provenance maps (bitcount under
    T=MIN has enough live regions for spurious asserts to land in one)."""
    from repro.faults.campaign import _golden_for

    binary, inputs, golden_sim, profile = _golden_for(
        "bitcount", resolve_config("bitspec-min")
    )
    hits = []
    for seed in range(6):
        plan = derive_plan("misspec_spurious", seed, profile)
        record = run_injection(binary, inputs, plan, golden_sim)
        assert record["output_matches"]  # the recovery guarantee again
        hits.extend(record["absorbed_by"])
    assert hits, "no spurious seed was absorbed by a region"
    for site in hits:
        assert site["world"] == "spec"
        assert site["function"] in binary.module.functions
        assert site["extra_misspecs"] >= 1
        assert site["handler"] is not None and site["region"] is not None


# ---------------------------------------------------------------------------
# campaigns: reproducibility + CLI
# ---------------------------------------------------------------------------

GRID = dict(
    workloads=("bitcount",),
    config_names=("bitspec-min",),
    kinds=("rf_bit", "misspec_spurious", "dts_timing"),
    seed=7,
    per_kind=1,
)


@pytest.fixture(autouse=True)
def _isolate_harness_caches():
    yield
    harness.set_disk_cache(None)
    harness.clear_caches()


def test_campaign_json_is_byte_stable_warm_or_cold(tmp_path):
    """Same seed ⇒ byte-identical matrix: cold disk cache, then warm disk
    cache, then no disk cache at all (in-process golden memo)."""
    cold = to_canonical_json(run_campaign(cache_dir=tmp_path / "c", **GRID))
    warm = to_canonical_json(run_campaign(cache_dir=tmp_path / "c", **GRID))
    memo = to_canonical_json(run_campaign(**GRID))
    assert cold == warm == memo
    assert json.loads(cold)["summary"]["errors"] == 0


def test_campaign_seed_changes_the_matrix(tmp_path):
    a = run_campaign(cache_dir=tmp_path / "c", **GRID)
    b = run_campaign(cache_dir=tmp_path / "c", **{**GRID, "seed": 8})
    plans_a = [c["plan"] for c in a["cells"]]
    plans_b = [c["plan"] for c in b["cells"]]
    assert plans_a != plans_b


def test_campaign_summary_gates_on_detectable_sdc(golden):
    binary, golden_sim, profile = golden
    from repro.faults.campaign import summarize

    cells = []
    for kind in FAULT_KINDS:
        plan = derive_plan(kind, 0, profile)
        record = run_injection(binary, RUN_INPUTS, plan, golden_sim)
        record.update({"kind": kind, "status": "ok"})
        cells.append(record)
    summary = summarize(cells, parity=False)
    assert summary["cells"] == len(FAULT_KINDS)
    assert summary["sdc_in_detectable_kinds"] == 0
    # ... while the same cells under a stricter detectability claim would
    # count the suppress-SDC, proving the gate actually reads categories
    histogram = summary["per_kind"]["misspec_suppress"]
    assert histogram.get(SDC, 0) == 1


def test_resolve_config_aliases():
    assert resolve_config("baseline").isa == "ARM"
    assert resolve_config("bitspec-min").heuristic == "min"
    assert resolve_config("thumb").isa == "THUMB"
    assert resolve_config("dts-bitspec-max").voltage_scaling == "timesqueezing"
    with pytest.raises(ValueError):
        resolve_config("riscv")


def test_cli_campaign_smoke(tmp_path, capsys):
    from repro.faults.__main__ import main

    out = tmp_path / "matrix.json"
    code = main([
        "campaign", "--workloads", "bitcount", "--configs", "bitspec-min",
        "--kinds", "dts_timing,misspec_spurious", "--per-kind", "1",
        "--seed", "7", "--json", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "fault coverage matrix" in printed
    matrix = json.loads(out.read_text())
    assert matrix["summary"]["sdc_in_detectable_kinds"] == 0
    assert out.read_text() == to_canonical_json(matrix)


def test_cli_rejects_unknown_kind():
    from repro.faults.__main__ import main

    with pytest.raises(SystemExit):
        main(["campaign", "--kinds", "gamma_burst"])
