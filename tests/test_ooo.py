"""Unit tests for the out-of-order engine (:mod:`repro.arch.ooo`).

The cross-engine committed-state matrix lives in
``test_engine_equivalence.py`` / ``test_machine_predecode.py``; this file
covers the OoO-specific surface: structure-size parameters and their env
overrides, the degradation ladder, the OoO stats/energy event taxonomy,
composition of bitwidth-misspeculation recovery with branch recovery, and
the rename/ROB recovery fault kinds.
"""

import pytest

from repro.arch.machine import FaultTrap, Machine, committed_view
from repro.arch.ooo import OooParams, ooo_params
from repro.core.pipeline import CompilerConfig, set_global_inputs
from repro.eval.harness import get_binary
from repro.faults.plan import GoldenProfile, derive_plan
from repro.faults.session import FaultSession
from repro.workloads import get_workload

#: the seven energy-event counters only the OoO engine drives
OOO_COUNTERS = (
    "rename_reads", "rename_writes", "rob_writes", "rob_reads",
    "iq_writes", "iq_wakeups", "ckpt_ops",
)


def _run(workload, config, engine="ooo", obs=False):
    binary = get_binary(workload, config)
    inputs = get_workload(workload).inputs("test", 0)
    if inputs:
        set_global_inputs(binary.module, inputs)
    return Machine(binary.linked, binary.module, engine=engine, obs=obs).run()


# -- parameters ---------------------------------------------------------------


def test_params_defaults():
    assert ooo_params() == OooParams(rob=48, iq=24, width=2, bp_bits=9, ras=8)


def test_params_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_OOO_ROB", "16")
    monkeypatch.setenv("REPRO_OOO_WIDTH", "4")
    params = ooo_params()
    assert params.rob == 16 and params.width == 4
    assert params.iq == 24  # untouched knobs keep their defaults


def test_params_env_rejects_bad_values(monkeypatch):
    monkeypatch.setenv("REPRO_OOO_IQ", "100000")  # out of range
    with pytest.raises(ValueError, match="REPRO_OOO_IQ"):
        ooo_params()
    monkeypatch.setenv("REPRO_OOO_IQ", "nonsense")
    with pytest.raises(ValueError, match="expected an integer"):
        ooo_params()


# -- degradation ladder -------------------------------------------------------


def test_obs_request_degrades_to_fast():
    """obs needs a PcSample; the ooo engine hands the run to the fast path."""
    sim = _run("crc32", CompilerConfig.bitspec("max"), obs=True)
    assert sim.obs is not None
    assert sim.ooo is None  # the fast path ran, not the OoO core


# -- stats, counters, energy --------------------------------------------------


def test_stats_and_energy_events():
    config = CompilerConfig.bitspec("max")
    ooo = _run("crc32", config)
    fast = _run("crc32", config, engine="fast")
    assert ooo.ooo is not None and fast.ooo is None
    assert ooo.ooo.fetched_uops >= ooo.instructions
    assert ooo.ooo.checkpoints >= ooo.ooo.recoveries
    for name in OOO_COUNTERS:
        assert getattr(ooo.counters, name) > 0, name
        assert getattr(fast.counters, name) == 0, name
    # the OoO events price into the pipeline component, so total energy
    # moves while the committed architectural state does not
    assert ooo.energy().total != fast.energy().total
    assert committed_view(ooo) == committed_view(fast)


def test_structure_sizes_change_timing_not_state(monkeypatch):
    config = CompilerConfig.bitspec("max")
    wide = _run("crc32", config)
    monkeypatch.setenv("REPRO_OOO_ROB", "8")
    monkeypatch.setenv("REPRO_OOO_WIDTH", "1")
    narrow = _run("crc32", config)
    assert committed_view(narrow) == committed_view(wide)
    assert narrow.cycles > wide.cycles  # a 1-wide 8-entry core is slower


def test_misspec_recovery_composes_with_branch_recovery():
    """Every bitwidth misspeculation redirects through the same ROB
    recovery path as a mispredicted branch (the composition contract)."""
    sim = _run("crc32", CompilerConfig.bitspec("min"))
    assert sim.misspeculations > 0
    assert sim.ooo.misspec_recoveries == sim.misspeculations
    assert sim.ooo.recoveries >= (
        sim.ooo.misspec_recoveries + sim.ooo.branch_mispredicts
    )


# -- recovery fault kinds -----------------------------------------------------


def test_recovery_plan_derivation():
    golden = GoldenProfile(
        instructions=100, misspeculations=3, spec_successes=50,
        mem_base=0x400000, mem_span=64, recoveries=12,
    )
    plan = derive_plan("ooo_ckpt_bit", 7, golden, parity=True)
    assert 1 <= plan.nth_event <= 12
    assert 0 <= plan.reg < 16 and 0 <= plan.bit < 7
    assert "rename[" in plan.describe() and "+parity" in plan.describe()
    drop = derive_plan("ooo_flush_drop", 7, golden)
    assert 1 <= drop.nth_event <= 12
    assert drop.describe().startswith("ooo_flush_drop @ recovery")


def test_recovery_session_actions():
    golden = GoldenProfile(
        instructions=10, misspeculations=0, spec_successes=0,
        mem_base=0, mem_span=1, recoveries=2,
    )
    plan = derive_plan("ooo_flush_drop", 0, golden)
    session = FaultSession(plan)
    assert session.ooo_native
    actions = [session.recovery_action(5) for _ in range(plan.nth_event)]
    assert actions[-1] == "flush_drop" and all(a is None for a in actions[:-1])
    assert session.triggered and session.trap_mechanism == "rob-epoch-check"

    # suppressing the flush of an empty wrong-path window is masked
    masked = FaultSession(plan)
    assert all(masked.recovery_action(0) is None for _ in range(plan.nth_event))
    assert masked.triggered and masked.trap_mechanism is None

    corrupt = FaultSession(derive_plan("ooo_ckpt_bit", 0, golden))
    acts = [corrupt.recovery_action(3) for _ in range(corrupt.plan.nth_event)]
    assert acts[-1] == "ckpt_bit"

    protected = FaultSession(derive_plan("ooo_ckpt_bit", 0, golden, parity=True))
    with pytest.raises(FaultTrap):
        for _ in range(protected.plan.nth_event):
            protected.recovery_action(3)
    assert protected.detected_by_parity
    assert protected.trap_mechanism == "rename-parity"


def test_recovery_campaign_zero_sdc_under_parity():
    """The acceptance gate: rename/ROB faults are never silent when the
    hardware model makes them detectable."""
    from repro.faults.campaign import run_campaign, to_canonical_json

    document = run_campaign(
        workloads=("crc32",),
        config_names=("bitspec-min",),
        kinds=("ooo_ckpt_bit", "ooo_flush_drop"),
        seed=0,
        per_kind=1,
        parity=True,
        jobs=1,
        engine="ooo",
    )
    from repro.faults.campaign import SDC

    records = document["cells"]
    assert records and all(r["status"] == "ok" for r in records)
    assert all(r["category"] != SDC for r in records)
    triggered = [r for r in records if r["triggered"]]
    assert triggered, "both kinds untriggered — golden run had no recoveries?"
    assert all(r["category"].startswith("detected") for r in triggered)
    assert '"engine"' not in to_canonical_json(document)
