"""Cross-configuration integration tests + pipeline-level checks."""

import pytest

from repro.core import (
    CompiledBinary,
    CompilerConfig,
    compile_binary,
    set_global_inputs,
)
from repro.eval.harness import clear_caches, geomean, run
from repro.passes import ExpanderConfig
from repro.workloads import get_workload

INTEGRATION_WORKLOADS = ("crc32", "stringsearch", "bitcount")

CONFIGS = [
    CompilerConfig.baseline(),
    CompilerConfig.bitspec("max"),
    CompilerConfig.bitspec("avg"),
    CompilerConfig.bitspec("min"),
    CompilerConfig.nospec(),
    CompilerConfig.thumb(),
    CompilerConfig.baseline(expander=ExpanderConfig.disabled(), name="base-noexp"),
    CompilerConfig.bitspec("max", invert_handler_weights=True, name="bs-inv"),
    CompilerConfig.bitspec("max", compare_elimination=False, name="bs-nocmp"),
    CompilerConfig.bitspec("max", bitmask_elision=False, name="bs-nomask"),
]


@pytest.mark.parametrize("name", INTEGRATION_WORKLOADS)
def test_all_configs_agree_on_output(name):
    workload = get_workload(name)
    inputs = workload.inputs("train")
    expected = workload.expected_output(inputs)
    for config in CONFIGS:
        binary = compile_binary(
            workload.source, config, profile_inputs=inputs, name=name
        )
        result = binary.run(inputs)
        assert result.output == expected, (name, config.name)


def test_config_presets():
    assert CompilerConfig.bitspec("avg").heuristic == "avg"
    assert CompilerConfig.dts().voltage_scaling == "timesqueezing"
    assert CompilerConfig.dts_bitspec().isa == "ARM_BS"
    with pytest.raises(ValueError):
        CompilerConfig.baseline().heuristic

    with pytest.raises(ValueError):
        compile_binary("void main() { out(1); }", CompilerConfig(middle_end="magic"))


def test_binary_metadata_populated():
    workload = get_workload("crc32")
    inputs = workload.inputs("train")
    binary = compile_binary(
        workload.source, CompilerConfig.bitspec("max"), profile_inputs=inputs
    )
    assert isinstance(binary, CompiledBinary)
    assert binary.profile is not None
    assert binary.code_size > 0
    assert binary.alloc_stats
    assert any(r.narrowed for r in binary.squeeze_results.values())
    assert "compares_eliminated" in binary.opt_counts


def test_interpret_entry_matches_machine():
    workload = get_workload("bitcount")
    inputs = workload.inputs("train")
    binary = compile_binary(
        workload.source, CompilerConfig.bitspec("max"), profile_inputs=inputs
    )
    machine_out = binary.run(inputs).output
    interp_out = binary.interpret(inputs).output
    assert machine_out == interp_out


def test_harness_caches_and_checks():
    clear_caches()
    first = run("bitcount", CompilerConfig.baseline(), run_kind="train")
    second = run("bitcount", CompilerConfig.baseline(), run_kind="train")
    assert first is second  # memoized
    assert first.correct
    assert first.total_energy > 0
    assert first.epi > 0


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0


def test_headline_shape_on_subset():
    """The paper's core claims hold on a fast subset:

    * BITSPEC saves energy vs BASELINE on bitwidth-friendly workloads;
    * no-speculation saves less than BITSPEC;
    * Thumb executes more instructions than ARM.
    """
    clear_caches()
    names = ("stringsearch", "bitcount")
    bitspec_rel, nospec_rel, thumb_instr = [], [], []
    for name in names:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        nosp = run(name, CompilerConfig.nospec())
        thumb = run(name, CompilerConfig.thumb())
        bitspec_rel.append(spec.total_energy / base.total_energy)
        nospec_rel.append(nosp.total_energy / base.total_energy)
        thumb_instr.append(thumb.instructions / base.instructions)
    assert geomean(bitspec_rel) < 0.95
    assert geomean(bitspec_rel) < geomean(nospec_rel)
    assert geomean(thumb_instr) > 1.1


def test_dts_composition_shape():
    """DTS+BITSPEC lands near the product of the individual savings."""
    base = run("bitcount", CompilerConfig.baseline())
    spec = run("bitcount", CompilerConfig.bitspec("max"))
    dts = run("bitcount", CompilerConfig.dts())
    combo = run("bitcount", CompilerConfig.dts_bitspec("max"))
    spec_rel = spec.total_energy / base.total_energy
    dts_rel = dts.total_energy / base.total_energy
    combo_rel = combo.total_energy / base.total_energy
    assert dts_rel < 0.9  # DTS alone reclaims slack
    assert combo_rel < dts_rel  # composition adds BITSPEC's savings
    assert combo_rel == pytest.approx(spec_rel * dts_rel, rel=0.15)
