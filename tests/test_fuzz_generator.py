"""Generator and shrinker unit tests (no oracle stack — these stay fast).

The corpus replay in ``test_fuzz_corpus.py`` covers end-to-end semantics;
here we pin the generator's contract (determinism, well-formedness of its
output) and the shrinker's contract (minimization while preserving a given
failure predicate).
"""

import pytest

from repro.frontend.codegen import compile_program
from repro.frontend.parser import parse
from repro.fuzz.driver import iteration_seed
from repro.fuzz.generator import GenConfig, generate_program
from repro.fuzz.shrink import shrink_program
from repro.ir.verifier import verify_module


def test_generator_is_deterministic():
    a = generate_program(1234)
    b = generate_program(1234)
    assert a.source == b.source
    assert a.inputs_profile == b.inputs_profile
    assert a.inputs_run == b.inputs_run
    assert a.expander_enabled == b.expander_enabled


def test_generator_seeds_differ():
    assert generate_program(1).source != generate_program(2).source


@pytest.mark.parametrize("seed", range(20))
def test_generated_programs_are_well_formed(seed):
    """Every generated program parses, typechecks, and verifies as IR."""
    program = generate_program(seed)
    module = compile_program(parse(program.source))
    verify_module(module)
    # input vectors only name globals the program declares
    global_names = set(module.globals)
    for inputs in (program.inputs_profile, program.inputs_run):
        assert set(inputs) <= global_names


def test_generator_config_bounds_size():
    small = GenConfig(max_top_stmts=2, max_body_stmts=1, max_helpers=0)
    program = generate_program(7, small)
    big = generate_program(7)
    assert len(program.source) < len(big.source)


def test_iteration_seed_mixing():
    seeds = {iteration_seed(0, i) for i in range(1000)}
    assert len(seeds) == 1000  # no collisions across a campaign
    assert iteration_seed(0, 5) != iteration_seed(1, 5)


def test_shrinker_minimizes_synthetic_failure():
    """Inject a marker construct; the shrinker must keep it and strip the
    rest of a full-size generated program down to a few lines."""
    base = generate_program(42)
    marked = base.source.replace(
        "void main()", "u32 marker_g = 77;\nvoid main()", 1
    )
    program = type(base)(
        source=marked,
        inputs_profile=dict(base.inputs_profile),
        inputs_run=dict(base.inputs_run),
        seed=base.seed,
    )

    def has_marker(candidate):
        return "marker_g" in candidate.source and "out(" in candidate.source

    assert has_marker(program)
    shrunk = shrink_program(program, has_marker)
    assert has_marker(shrunk)
    # the shrunk program still compiles...
    verify_module(compile_program(parse(shrunk.source)))
    # ...and is substantially smaller than the original
    assert len(shrunk.source) < len(program.source) / 2


def test_shrinker_rejects_predicate_exceptions():
    """A candidate that makes the predicate raise must be discarded, not
    accepted as 'still failing'."""
    program = generate_program(3)

    calls = {"n": 0}

    def flaky(candidate):
        calls["n"] += 1
        if candidate.source != program.source:
            raise RuntimeError("oracle crashed on candidate")
        return True

    shrunk = shrink_program(program, flaky, max_predicate_calls=50)
    assert shrunk.source == program.source
    assert calls["n"] > 1  # it did try candidates
