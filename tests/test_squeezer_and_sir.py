"""The squeezer, SIR invariants, speculative optimizations, static narrowing."""

import pytest

from repro.core import set_global_inputs
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.instructions import BinOp, Cast, Icmp
from repro.passes import (
    eliminate_dead_code_module,
    narrow_module,
    prepare_cfg_module,
    run_speculative_opts,
    simplify_module,
    squeeze_module,
)
from repro.profiler import BitwidthProfile, compute_squeeze_plan
from repro.sir import SpeculativeRegion, regions_of, sir_predecessors, smir_predecessors
from repro.sir.verifier import verify_sir_module


def squeeze(source, heuristic="max", inputs=None, opts=False):
    module = compile_source(source)
    prepare_cfg_module(module)
    if inputs:
        set_global_inputs(module, inputs)
    profile = BitwidthProfile.collect(module, "main")
    plans = {
        name: compute_squeeze_plan(func, profile, heuristic)
        for name, func in module.functions.items()
    }
    results = squeeze_module(module, plans)
    if opts:
        run_speculative_opts(module)
    for func in module.functions.values():
        remove_unreachable_blocks(func)
    eliminate_dead_code_module(module)
    verify_module(module)
    verify_sir_module(module)
    return module, results


COUNTER = """
u32 result;
void main() {
    u32 x = 0;
    do { x += 1; } while (x <= 255);
    result = x;
    out(x);
}
"""


class TestSqueezer:
    def test_paper_running_example(self):
        """§3's do-loop: squeezed at 8 bits, one misspeculation at 256."""
        module, results = squeeze(COUNTER, "avg")
        assert results["main"].narrowed >= 1
        assert results["main"].regions >= 1
        interp = Interpreter(module, trace=True)
        out = interp.run("main")
        assert out.output == [256]
        assert out.trace.misspeculations == 1

    def test_no_plan_no_change(self):
        module, results = squeeze(
            "void main() { u32 x = 123456; out(x * 7); }"
        )
        assert results["main"].narrowed == 0

    def test_worlds_are_tagged(self):
        module, _ = squeeze(COUNTER, "avg")
        worlds = {b.world for b in module.function("main").blocks}
        assert "spec" in worlds and "orig" in worlds and "handler" in worlds

    def test_handlers_not_branch_targets(self):
        module, _ = squeeze(COUNTER, "avg")
        func = module.function("main")
        targets = {id(s) for b in func.blocks for s in b.successors()}
        for block in func.blocks:
            if block.handler_for is not None:
                assert id(block) not in targets

    def test_theorem_3_1_region_defs_dead_in_handler(self):
        module, _ = squeeze(COUNTER, "avg")
        func = module.function("main")
        for region in regions_of(func):
            defs = {
                i
                for b in region.blocks
                for i in b.instructions
                if i.has_result
            }
            for inst in region.handler.instructions:
                assert not (set(inst.operands) & defs)

    @pytest.mark.parametrize("heuristic", ["max", "avg", "min"])
    def test_output_equivalence(self, heuristic):
        """Squeezed IR must be input-output equivalent to the source."""
        source = """
        u32 data[32]; u32 n; u32 sink;
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < n; i += 1) {
                u32 v = data[i];
                if (v > 200) { s += v * 2; } else { s += v; }
            }
            sink = s;
            out(s);
        }
        """
        inputs = {"data": [(i * 37) % 256 for i in range(32)], "n": 32}
        expected = [
            sum(v * 2 if v > 200 else v for v in ((i * 37) % 256 for i in range(32)))
        ]
        module, _ = squeeze(source, heuristic, inputs)
        set_global_inputs(module, inputs)
        assert Interpreter(module).run("main").output == expected

    def test_argument_hoisting(self):
        source = """
        u32 vals[16]; u32 sink;
        u32 addup(u32 a, u32 b) { return a + b; }
        void main() {
            u32 s = 0;
            for (u32 i = 0; i < 16; i += 1) { s = addup(s, vals[i]) & 0xFF; }
            sink = s;
            out(s);
        }
        """
        inputs = {"vals": list(range(16))}
        module, results = squeeze(source, "max", inputs)
        set_global_inputs(module, inputs)
        expected = 0
        for i in range(16):
            expected = (expected + i) & 0xFF
        assert Interpreter(module).run("main").output == [expected]

    def test_misspec_over_alternate_input(self):
        """Profile on small values, run on large: misspec path is correct."""
        source = """
        u32 seedv; u32 sink;
        void main() {
            u32 x = seedv;
            u32 s = 0;
            for (u32 i = 0; i < 20; i += 1) {
                x = (x * 5 + 1) & 0xFFFF;
                s += x >> 4;
            }
            sink = s;
            out(s);
        }
        """
        module, _ = squeeze(source, "max", {"seedv": 1})

        def python_ref(seed):
            x, s = seed, 0
            for _ in range(20):
                x = (x * 5 + 1) & 0xFFFF
                s += x >> 4
            return s & 0xFFFFFFFF

        for seed in (1, 60000):
            set_global_inputs(module, {"seedv": seed})
            got = Interpreter(module).run("main").output
            assert got == [python_ref(seed)], seed


class TestRegions:
    def test_region_construction_rules(self):
        module = compile_source(COUNTER)
        func = module.function("main")
        region = SpeculativeRegion([func.blocks[0]])
        with pytest.raises(ValueError):
            SpeculativeRegion([func.blocks[0]])  # already owned
        handler = func.add_block("h")
        region.set_handler(handler)
        with pytest.raises(ValueError):
            region.set_handler(handler)  # double registration
        assert region.entry is func.blocks[0]

    def test_handler_cannot_be_in_region(self):
        module = compile_source(COUNTER)
        func = module.function("main")
        region = SpeculativeRegion([func.blocks[0]])
        inner = SpeculativeRegion([func.blocks[1]])
        with pytest.raises(ValueError):
            region.set_handler(func.blocks[1])

    def test_predecessor_rules(self):
        module, _ = squeeze(COUNTER, "avg")
        func = module.function("main")
        for region in regions_of(func):
            handler = region.handler
            assert sir_predecessors(handler) == region.entry.predecessors()
            assert smir_predecessors(handler) == region.blocks


class TestSpeculativeOpts:
    def test_compare_elimination_folds_and_guards(self):
        source = """
        u32 limit; u32 sink;
        void main() {
            u32 x = 0;
            do { x += 1; } while (x < limit);
            sink = x;
            out(x);
        }
        """
        # limit = 300 cannot fit the slice: the compare depends on speculation
        module, _ = squeeze(source, "avg", {"limit": 200}, opts=True)
        simplify_module(module)
        verify_module(module)
        # correctness across both non-misspec and misspec executions
        for limit in (200, 300):
            set_global_inputs(module, {"limit": limit})
            assert Interpreter(module).run("main").output == [limit]

    def test_bitmask_elision_rewrites(self):
        source = """
        u32 g; u32 sink;
        void main() {
            u32 v = g;
            u32 masked = v & 0xFF;
            sink = masked;
            out(masked + 1);
        }
        """
        module = compile_source(source)
        prepare_cfg_module(module)
        counts = run_speculative_opts(module)
        assert counts["bitmasks_elided"] == 1
        main = module.function("main")
        assert not [
            i
            for i in main.instructions()
            if isinstance(i, BinOp) and i.opcode == "and"
        ]
        set_global_inputs(module, {"g": 0x1234})
        assert Interpreter(module).run("main").output == [0x35]

    def test_opt_toggles(self):
        module = compile_source("u32 g; void main() { out(g & 0xFF); }")
        counts = run_speculative_opts(
            module, compare_elimination=False, bitmask_elision=False
        )
        assert counts == {"compares_eliminated": 0, "bitmasks_elided": 0}


class TestStaticNarrowing:
    def test_narrowing_preserves_semantics(self):
        source = """
        u32 g; u32 sink;
        void main() {
            u32 lo = g & 0x3F;
            u32 s = 0;
            for (u32 i = 0; i < 10; i += 1) { s = (s + lo) & 0xFF; }
            sink = s;
            out(s);
        }
        """
        module = compile_source(source)
        count = narrow_module(module)
        assert count >= 1
        verify_module(module)
        set_global_inputs(module, {"g": 0xABCDEF})
        expected = 0
        lo = 0xABCDEF & 0x3F
        for _ in range(10):
            expected = (expected + lo) & 0xFF
        assert Interpreter(module).run("main").output == [expected]

    def test_no_speculation_introduced(self):
        module = compile_source("u32 g; void main() { out((g & 0xF) + 1); }")
        narrow_module(module)
        for func in module.functions.values():
            for inst in func.instructions():
                assert not inst.speculative

    def test_loads_stay_wide(self):
        module = compile_source("u32 g[4]; void main() { out(g[0] + g[1]); }")
        narrow_module(module)
        from repro.ir.instructions import Load

        loads = [
            i for i in module.function("main").instructions() if isinstance(i, Load)
        ]
        assert loads and all(i.type.bits == 32 for i in loads)
