"""Observability & attribution tests.

The load-bearing property is **conservation**: summing the per-pc
attribution over every executed pc reproduces the aggregate SimResult
counters integer-exactly — no sampling, no tolerance.  Alongside it:
equivalence of the fast path's event sample against a legacy-engine
pc trace, the event bus/expansion semantics, the pass-statistics
registry, and a golden text report over the mini roster.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.arch.machine import Machine
from repro.core.pipeline import CompilerConfig, compile_binary
from repro.eval import harness
from repro.obs import (
    EventBus,
    ObsEvent,
    PcSample,
    attribute,
    check_conservation,
    dts_mode_events,
    events_from_sample,
    source_var,
)
from repro.obs.report import build_report, render_json, render_text
from repro.passes import stats
from repro.workloads import get_workload

GOLDEN = Path(__file__).parent / "golden" / "obs_report_mini.txt"

#: a small program whose train/test-style input split forces misspeculation
MISSPEC_SOURCE = """
u32 n;
u32 result;
void main() {
    u32 x = 0;
    u32 i = 0;
    while (i < n) {
        x = x + 3;
        i = i + 1;
    }
    result = x;
    out(x);
}
"""


def _misspec_binary():
    return compile_binary(
        MISSPEC_SOURCE,
        CompilerConfig.bitspec("max"),
        profile_inputs={"n": 5},  # x stays tiny during profiling...
    )


# -- conservation --------------------------------------------------------------


def _assert_conserved(binary, inputs):
    sim = binary.run(inputs, obs=True)
    assert sim.obs is not None
    attribution = attribute(binary.linked, sim.obs)
    mismatches = check_conservation(attribution, sim)
    assert mismatches == []
    return sim, attribution


def test_conservation_toy_with_misspeculation():
    binary = _misspec_binary()
    sim, attribution = _assert_conserved(binary, {"n": 200})  # ...then overflows
    assert sim.misspeculations > 0
    total = attribution.total()
    assert total.misspeculations == sim.misspeculations
    assert total.instructions == sim.instructions


@pytest.mark.parametrize(
    "workload,config,profile_kind",
    [
        ("crc32", CompilerConfig.bitspec("max"), "train"),  # real misspecs
        ("crc32", CompilerConfig.bitspec("max"), "test"),
        ("sha", CompilerConfig.baseline(), "test"),
        ("bitcount", CompilerConfig.bitspec("min"), "test"),
    ],
    ids=["crc32-misspec", "crc32", "sha-baseline", "bitcount-min"],
)
def test_conservation_on_workloads(workload, config, profile_kind):
    binary = harness.get_binary(workload, config, profile_kind=profile_kind)
    inputs = get_workload(workload).inputs("test", 0)
    _assert_conserved(binary, inputs)


def test_energy_partition_sums_to_total():
    """Every grouping is a partition: group energies sum to the total."""
    binary = harness.get_binary(
        "crc32", CompilerConfig.bitspec("max"), profile_kind="train"
    )
    sim = binary.run(get_workload("crc32").inputs("test", 0), obs=True)
    attribution = attribute(binary.linked, sim.obs)
    want = attribution.total().energy().total
    assert want == pytest.approx(sim.energy().total)
    for groups in (
        attribution.by_variable(),
        attribution.by_function(),
        attribution.by_world(),
        attribution.by_region(),
    ):
        got = sum(t.energy().total for t in groups.values())
        assert got == pytest.approx(want)


def test_attribute_requires_obs_sample():
    binary = _misspec_binary()
    sim = binary.run({"n": 5})
    assert sim.obs is None
    with pytest.raises(ValueError, match="obs"):
        attribute(binary.linked, sim.obs)


def test_obs_forces_fast_path(monkeypatch):
    """REPRO_MACHINE_LEGACY is ignored for obs runs; fast=False raises."""
    binary = _misspec_binary()
    monkeypatch.setenv("REPRO_MACHINE_LEGACY", "1")
    sim = binary.run({"n": 200}, obs=True)
    assert sim.obs is not None  # fast path ran despite the env override
    machine = Machine(binary.linked, binary.module, obs=True, fast=False)
    with pytest.raises(ValueError, match="fast path"):
        machine.run()


# -- legacy-engine equivalence -------------------------------------------------


def _legacy_trace_counts(binary, inputs):
    """Per-pc exec/misspec/taken counts derived from a legacy pc trace."""
    from repro.core.pipeline import set_global_inputs

    if inputs:
        set_global_inputs(binary.module, inputs)
    trace = []
    machine = Machine(
        binary.linked,
        binary.module,
        trace_hook=lambda pc, regs: trace.append(pc),
        fast=False,
    )
    sim = machine.run()
    n = len(binary.linked.insts)
    execs, misspecs, taken = [0] * n, [0] * n, [0] * n
    delta = binary.linked.delta
    insts = binary.linked.insts
    for i, pc in enumerate(trace):
        execs[pc] += 1
        nxt = trace[i + 1] if i + 1 < len(trace) else None
        if nxt is None:
            continue
        if insts[pc].opcode.startswith("bs_") and nxt == pc + delta:
            misspecs[pc] += 1
        if insts[pc].opcode == "bcond" and nxt != pc + 1:
            taken[pc] += 1
    return sim, execs, misspecs, taken


CORPUS_PROGRAMS = sorted(
    (Path(__file__).parent / "corpus").glob("*.json"),
    key=lambda p: p.name,
)[:3]


def _corpus_cases():
    import json

    for path in CORPUS_PROGRAMS:
        data = json.loads(path.read_text())
        yield path.name, data


@pytest.mark.parametrize(
    "name,data", list(_corpus_cases()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_fast_obs_matches_legacy_trace(name, data):
    """Fast-path PcSample == event counts derived from a legacy pc trace."""
    binary = compile_binary(
        data["source"],
        CompilerConfig.bitspec("max"),
        profile_inputs=data["inputs_profile"],
    )
    legacy_sim, execs, misspecs, taken = _legacy_trace_counts(
        binary, data["inputs_run"]
    )
    fast_sim = binary.run(data["inputs_run"], obs=True)
    sample = fast_sim.obs
    assert fast_sim.output == legacy_sim.output
    assert fast_sim.counters == legacy_sim.counters
    assert list(sample.exec_counts) == execs
    assert list(sample.misspecs) == misspecs
    assert list(sample.taken) == taken


# -- events --------------------------------------------------------------------


def test_events_from_sample_pairs_handlers():
    binary = _misspec_binary()
    sim = binary.run({"n": 200}, obs=True)
    events = list(events_from_sample(sim.obs, binary.linked.debug))
    counts = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + event.count
    assert counts["misspeculation"] == sim.misspeculations
    assert counts["handler_enter"] == counts["misspeculation"]
    assert counts["handler_exit"] == counts["handler_enter"]
    miss = next(e for e in events if e.kind == "misspeculation")
    assert miss.info.startswith("handler@")
    # batched: no event appears with count 0, none at a never-executed pc
    for event in events:
        assert event.count > 0
        assert sim.obs.exec_counts[event.pc] > 0


def test_event_bus_ring_semantics():
    bus = EventBus(capacity=4)
    for i in range(6):
        bus.post(ObsEvent("stall", i, 1))
    assert len(bus) == 4
    assert bus.dropped == 2
    drained = bus.drain()
    assert [e.pc for e in drained] == [2, 3, 4, 5]  # oldest two overwritten
    assert len(bus) == 0
    with pytest.raises(ValueError):
        EventBus(capacity=0)


def test_dts_mode_events_only_for_scaled_classes():
    profile = {"alu32": 0.85, "mul": 1.0, "move": 0.62}
    events = list(
        dts_mode_events({"alu32": 10, "mul": 5, "move": 0}, profile)
    )
    # mul runs at nominal (1.0) and move never executed: only alu32 switches
    assert len(events) == 1
    assert events[0].kind == "dts_mode_switch"
    assert events[0].count == 10
    assert "alu32" in events[0].info


def test_source_var_normalization():
    assert source_var("x.loop.1.sp.n.5") == "x"
    assert source_var("crc") == "crc"
    assert source_var("") == ""


# -- pass statistics -----------------------------------------------------------


def test_pass_stats_scoped_registry():
    stats.bump("nobody", "listening")  # no scope open: must be a no-op
    with stats.collecting() as scope:
        stats.bump("squeezer", "variables_narrowed", 3)
        stats.bump("squeezer", "variables_narrowed")
        stats.bump("dce", "instructions_removed", 0)  # falsy: not recorded
        snap = stats.snapshot(scope)
    assert snap == {"squeezer": {"variables_narrowed": 4}}
    stats.bump("nobody", "listening")  # scope closed again


def test_compile_binary_collects_pass_stats():
    binary = _misspec_binary()
    assert "squeezer" in binary.pass_stats
    assert binary.pass_stats["regalloc"]["vregs_assigned"] > 0


def test_pass_stats_survive_bench_cache_roundtrip():
    from repro.bench.cache import payload_to_record, record_to_payload

    harness.clear_caches()
    record = harness.run("crc32", CompilerConfig.bitspec("max"))
    assert record.pass_stats  # populated from the binary
    payload = record_to_payload(record)
    back = payload_to_record(payload, record.config)
    assert back.pass_stats == record.pass_stats


# -- the report ----------------------------------------------------------------


def _mini_report_text() -> str:
    harness.clear_caches()
    chunks = []
    for workload in ("crc32", "sha", "bitcount"):
        report = build_report(
            workload,
            CompilerConfig.bitspec("max"),
            profile_kind="train",
        )
        assert report.mismatches == []
        chunks.append(render_text(report, top=5))
    return "\n".join(chunks)


@pytest.mark.slow
def test_obs_report_golden_mini_roster():
    text = _mini_report_text()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN.write_text(text)
    expected = GOLDEN.read_text()
    assert text == expected, (
        "obs report drifted from tests/golden/obs_report_mini.txt "
        "(REPRO_UPDATE_GOLDEN=1 regenerates after inspection)"
    )


def test_report_json_artifact():
    import json

    report = build_report(
        "crc32", CompilerConfig.bitspec("max"), profile_kind="train"
    )
    data = render_json(report)
    json.dumps(data)  # must be serializable
    assert data["conservation"]["exact"] is True
    assert data["totals"]["misspeculations"] == report.sim.misspeculations
    assert data["top_misspeculating"]  # train-profile crc32 really misspeculates
    assert data["baseline"]["totals"]["energy_pj"] > 0
    # shares re-sum: per-variable energies add up to the total
    var_sum = sum(v["energy_pj"] for v in data["variables"].values())
    assert var_sum == pytest.approx(data["totals"]["energy_pj"], rel=1e-6)


@pytest.mark.slow
def test_obs_overhead_under_budget():
    """obs + attribution must stay under 2x a plain run (mini roster)."""
    import time

    plain_total = obs_total = 0.0
    for name in ("crc32", "sha", "bitcount"):
        binary = harness.get_binary(name, CompilerConfig.bitspec("max"))
        inputs = get_workload(name).inputs("test", 0)
        binary.run(inputs)  # warm the predecode cache
        t0 = time.perf_counter()
        binary.run(inputs)
        plain_total += time.perf_counter() - t0
        t0 = time.perf_counter()
        sim = binary.run(inputs, obs=True)
        attribute(binary.linked, sim.obs).total()
        obs_total += time.perf_counter() - t0
    assert obs_total < 2.0 * plain_total


def test_cli_report_smoke(capsys):
    from repro.obs.__main__ import main

    rc = main(
        [
            "report",
            "--workload",
            "crc32",
            "--config",
            "BITSPEC",
            "--profile-kind",
            "train",
            "--top",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "conservation vs SimResult aggregates: exact" in out
    assert "top misspeculating variables" in out
    assert "BASELINE vs bitspec-max" in out


def test_cli_rejects_unknown_config():
    from repro.obs.__main__ import main

    with pytest.raises(SystemExit):
        main(["report", "--workload", "crc32", "--config", "warpspeed"])
