"""Unit tests for IR values, instructions, blocks, functions, builder."""

import pytest

from repro.ir import (
    BasicBlock,
    BinOp,
    Br,
    Cast,
    CondBr,
    Constant,
    Function,
    Gep,
    GlobalVariable,
    I1,
    I32,
    I8,
    IRBuilder,
    Icmp,
    Load,
    Module,
    Phi,
    PointerType,
    Ret,
    Select,
    Store,
    VOID,
    const,
    int_type,
)


def make_func(ret=I32, args=()):
    return Function("f", ret, args)


class TestValues:
    def test_constant_wraps(self):
        assert Constant(I8, 300).value == 44
        assert const(5).value == 5
        assert const(5, 8).type is I8

    def test_use_lists(self):
        a = const(1)
        b = const(2)
        add = BinOp("add", a, b)
        assert add in a.users and add in b.users
        add.drop_all_references()
        assert add not in a.users

    def test_rauw(self):
        a, b, c = const(1), const(2), const(3)
        add = BinOp("add", a, a)
        a.replace_all_uses_with(c)
        assert add.lhs is c and add.rhs is c
        assert add not in a.users and add in c.users
        b.replace_all_uses_with(b)  # no-op, no error

    def test_global_variable(self):
        gv = GlobalVariable("tab", I32, 4, [1, 2])
        assert gv.initializer == [1, 2, 0, 0]
        assert gv.size_bytes == 16
        assert gv.type == PointerType(I32)
        with pytest.raises(ValueError):
            GlobalVariable("bad", I32, 1, [1, 2])
        with pytest.raises(ValueError):
            GlobalVariable("empty", I32, 0)


class TestInstructions:
    def test_binop_type_check(self):
        with pytest.raises(TypeError):
            BinOp("add", const(1, 32), const(1, 8))
        with pytest.raises(ValueError):
            BinOp("bogus", const(1), const(2))

    def test_icmp(self):
        cmp = Icmp("ult", const(1), const(2))
        assert cmp.type is I1
        with pytest.raises(ValueError):
            Icmp("weird", const(1), const(2))

    def test_cast_constraints(self):
        with pytest.raises(TypeError):
            Cast("trunc", const(1, 8), I32)
        with pytest.raises(TypeError):
            Cast("zext", const(1, 32), I8)
        zext = Cast("zext", const(1, 8), I32)
        assert zext.type is I32

    def test_select_checks(self):
        cond = Icmp("eq", const(0), const(0))
        sel = Select(cond, const(1), const(2))
        assert sel.type is I32
        with pytest.raises(TypeError):
            Select(const(1, 32), const(1), const(2))

    def test_store_type_check(self):
        gv = GlobalVariable("g", I32, 1)
        Store(const(1, 32), gv)
        with pytest.raises(TypeError):
            Store(const(1, 8), gv)

    def test_load_result_type_override(self):
        gv = GlobalVariable("g", I32, 1)
        narrow = Load(gv, result_type=I8)
        assert narrow.type is I8

    def test_phi_incoming(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        phi = Phi(I32, "p")
        phi.add_incoming(const(1), b1)
        phi.add_incoming(const(2), b2)
        assert phi.incoming_for_block(b2).value == 2
        with pytest.raises(TypeError):
            phi.add_incoming(const(1, 8), b1)
        phi.remove_incoming(b1)
        assert len(phi.incoming()) == 1
        with pytest.raises(KeyError):
            phi.incoming_for_block(b1)

    def test_terminators(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        br = Br(b1)
        assert br.is_terminator and br.successors() == [b1]
        br.replace_target(b1, b2)
        assert br.target is b2
        cond = Icmp("eq", const(0), const(0))
        cbr = CondBr(cond, b1, b2)
        assert set(map(id, cbr.successors())) == {id(b1), id(b2)}
        assert Ret(const(1)).value.value == 1
        assert Ret().value is None

    def test_idempotency_flags(self):
        load = Load(GlobalVariable("g", I32, 1))
        assert load.is_idempotent
        load.volatile = True
        assert not load.is_idempotent
        from repro.ir import Call

        call = Call("f", [], VOID)
        assert not call.is_idempotent


class TestBlocksAndFunctions:
    def test_block_truthiness(self):
        assert BasicBlock("empty")  # even when len() == 0

    def test_insert_before_terminator(self):
        func = make_func()
        block = func.add_block("entry")
        builder = IRBuilder(block)
        builder.ret(const(0))
        inst = BinOp("add", const(1), const(2), "x")
        block.insert_before_terminator(inst)
        assert block.instructions[0] is inst
        assert block.terminator.opcode == "ret"

    def test_block_idempotency(self):
        func = make_func()
        block = func.add_block("b")
        builder = IRBuilder(block)
        builder.add(const(1), const(2))
        assert block.is_idempotent()
        builder.call("g", [], VOID)
        assert not block.is_idempotent()

    def test_function_entry_and_names(self):
        func = make_func()
        with pytest.raises(ValueError):
            func.entry
        a = func.add_block("a")
        b = func.add_block("b")
        assert func.entry is a
        func.set_entry(b)
        assert func.entry is b
        assert func.next_name("x") != func.next_name("x")

    def test_module_registry(self):
        mod = Module("m")
        f = mod.add_function(make_func())
        assert mod.function("f") is f
        with pytest.raises(ValueError):
            mod.add_function(make_func())
        mod.add_global(GlobalVariable("g", I32, 1))
        with pytest.raises(ValueError):
            mod.add_global(GlobalVariable("g", I32, 1))


class TestBuilder:
    def test_builds_and_autonames(self):
        func = make_func()
        block = func.add_block("entry")
        b = IRBuilder(block)
        x = b.add(b.const(1), b.const(2))
        y = b.mul(x, b.const(3))
        b.ret(y)
        assert x.name and y.name and x.name != y.name
        assert block.terminator.opcode == "ret"

    def test_width_noop_casts_fold(self):
        func = make_func()
        b = IRBuilder(func.add_block("entry"))
        v = b.add(b.const(1), b.const(2))
        assert b.zext(v, 32) is v
        assert b.trunc(v, 32) is v
        assert b.zext(v, 64).type.bits == 64

    def test_phi_inserted_in_group(self):
        func = make_func()
        block = func.add_block("entry")
        b = IRBuilder(block)
        b.add(b.const(1), b.const(1))
        phi = b.phi(I32)
        assert block.instructions[0] is phi
