"""Per-figure experiment drivers (see DESIGN.md's experiment index).

Every function regenerates one of the paper's tables or figures as
structured rows, using the memoizing harness.  Benchmark lists default to
the full roster; pass a subset for quick runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.bitwidth import static_selection
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.eval.harness import BENCHMARKS, RunRecord, geomean, run
from repro.interp.interpreter import Interpreter, bucket
from repro.ir.types import IntType
from repro.passes.expander import ExpanderConfig, build_module
from repro.profiler.profile import BitwidthProfile
from repro.workloads import get_workload

_WIDTHS = (8, 16, 32, 64)


def figure_run_matrix(benchmarks: Sequence[str] = BENCHMARKS) -> list:
    """Every ``harness.run`` cell the headline figures touch.

    Returned as ``(workload, config, profile_kind, profile_seed, run_kind,
    run_seed)`` tuples — the unit the bench executor shards across
    processes.  ``prewarm`` uses this to fill the persistent result cache
    in parallel before the (sequential) figure drivers read it.
    """
    disabled = ExpanderConfig.disabled()
    cells = []

    def add(name, config, pk="test", ps=0, rk="test", rs=0):
        cells.append((name, config, pk, ps, rk, rs))

    for name in benchmarks:
        add(name, CompilerConfig.baseline())
        for heuristic in ("max", "avg", "min"):
            add(name, CompilerConfig.bitspec(heuristic))
        add(name, CompilerConfig.nospec())
        add(name, CompilerConfig.thumb())
        # figure 13: expander ablation
        add(name, CompilerConfig.baseline(expander=disabled))
        add(name, CompilerConfig.bitspec("max", expander=disabled))
        # figure 15: alternate profile input
        add(name, CompilerConfig.bitspec("max"), pk="alt")
        # figure 17 (the paper excludes basicmath from the DTS experiment)
        if name != "basicmath":
            add(name, CompilerConfig.dts())
            add(name, CompilerConfig.dts_bitspec("max"))
    # RQ3 ablations
    if "dijkstra" in benchmarks:
        add(
            "dijkstra",
            CompilerConfig.bitspec("max", compare_elimination=False, name="nocmpelim"),
        )
    for name in ("blowfish", "rijndael"):
        if name in benchmarks:
            add(
                name,
                CompilerConfig.bitspec("max", bitmask_elision=False, name="nobitmask"),
            )
    # RQ5 handler-weight inversion
    for name in ("susan-smoothing", "crc32", "bitcount"):
        if name in benchmarks:
            add(
                name,
                CompilerConfig.bitspec(
                    "min", invert_handler_weights=True, name="bitspec-min-inv"
                ),
            )
    return cells


def prewarm(
    benchmarks: Sequence[str] = BENCHMARKS,
    *,
    jobs: int = 1,
    cache_dir=".benchcache",
    timeout: Optional[float] = 600.0,
):
    """Fill the persistent result cache for the figure drivers, in parallel.

    Routes the figure run-matrix through :func:`repro.bench.executor
    .run_matrix` and installs the same disk cache in this process, so the
    figure functions that follow hit it instead of re-simulating.  Returns
    the executor's campaign stats.
    """
    from repro.bench.cache import install_disk_cache
    from repro.bench.executor import BenchTask, run_matrix

    tasks = [
        BenchTask(
            workload=w,
            config=c,
            profile_kind=pk,
            profile_seed=ps,
            run_kind=rk,
            run_seed=rs,
        )
        for (w, c, pk, ps, rk, rs) in figure_run_matrix(benchmarks)
    ]
    _outcomes, stats = run_matrix(
        tasks, jobs=jobs, cache_dir=cache_dir, timeout=timeout
    )
    install_disk_cache(cache_dir)
    return stats


def _hist_percent(hist: dict) -> dict:
    total = sum(hist.values()) or 1
    return {w: 100.0 * hist.get(w, 0) / total for w in _WIDTHS}


def _traced_interp(workload_name: str):
    """Expanded IR module + traced run on the test input (cached)."""
    cache = _traced_interp.__dict__.setdefault("cache", {})
    if workload_name in cache:
        return cache[workload_name]
    workload = get_workload(workload_name)
    module = build_module(workload.source, name=workload_name)
    set_global_inputs(module, workload.inputs("test"))
    interp = Interpreter(module, trace=True)
    interp.run("main")
    cache[workload_name] = (module, interp.trace)
    return cache[workload_name]


# ---------------------------------------------------------------------------
# Figure 1 — bitwidth selection techniques
# ---------------------------------------------------------------------------


def fig01_bitwidth_selection(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """% of dynamic integer instructions per bitwidth under four selections:
    (a) RequiredBits, (b) programmer-declared, (c) static analysis,
    (d) basic-block-granularity coercion."""
    rows = []
    for name in benchmarks:
        module, trace = _traced_interp(name)
        required = _hist_percent(trace.required_hist)
        declared = _hist_percent(trace.declared_hist)

        static_hist = {w: 0 for w in _WIDTHS}
        bbmax_hist = {w: 0 for w in _WIDTHS}
        for func in module.functions.values():
            selection = static_selection(func)
            block_max: dict = {}
            for block in func.blocks:
                widest = 1
                for inst in block.instructions:
                    stats = trace.var_stats.get((func.name, inst.name))
                    if stats is not None and stats.count:
                        widest = max(widest, stats.max_bits)
                block_max[id(block)] = widest
            for block in func.blocks:
                for inst in block.instructions:
                    stats = trace.var_stats.get((func.name, inst.name))
                    if stats is None or not stats.count:
                        continue
                    if not isinstance(inst.type, IntType):
                        continue
                    static_bits = min(
                        selection.get(inst, inst.type.bits), inst.type.bits
                    )
                    static_hist[bucket(static_bits)] += stats.count
                    coerced = min(block_max[id(block)], inst.type.bits)
                    bbmax_hist[bucket(coerced)] += stats.count
        rows.append(
            {
                "benchmark": name,
                "required": required,
                "declared": declared,
                "static": _hist_percent(static_hist),
                "bbmax": _hist_percent(bbmax_hist),
            }
        )
    mean8 = {
        key: sum(r[key][8] for r in rows) / len(rows)
        for key in ("required", "declared", "static", "bbmax")
    }
    return {"rows": rows, "mean_8bit_percent": mean8}


# ---------------------------------------------------------------------------
# Figure 3 — loop unrolling: IR vs assembly instructions
# ---------------------------------------------------------------------------


def fig03_unrolling(
    benchmarks: Sequence[str] = ("crc32", "sha", "bitcount"),
    factors: Sequence[int] = (1, 2, 4, 8),
) -> dict:
    """Dynamic IR and baseline-assembly instructions vs unroll factor."""
    rows = []
    for name in benchmarks:
        workload = get_workload(name)
        inputs = workload.inputs("test")
        series = []
        for factor in factors:
            expander = ExpanderConfig(unroll_factor=factor)
            module = build_module(workload.source, expander, name)
            set_global_inputs(module, inputs)
            interp = Interpreter(module, trace=True)
            interp.run("main")
            config = CompilerConfig.baseline(expander=expander)
            record = run(name, config)
            series.append(
                {
                    "factor": factor,
                    "ir_instructions": interp.trace.instructions,
                    "asm_instructions": record.instructions,
                }
            )
        base = series[0]
        for point in series:
            point["ir_rel"] = point["ir_instructions"] / base["ir_instructions"]
            point["asm_rel"] = point["asm_instructions"] / base["asm_instructions"]
        rows.append({"benchmark": name, "series": series})
    return {"rows": rows, "factors": list(factors)}


# ---------------------------------------------------------------------------
# Figure 5 — profiler heuristics classification
# ---------------------------------------------------------------------------


def fig05_heuristics(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Dynamic classification (8/16/32) under T = MAX / AVG / MIN."""
    rows = []
    for name in benchmarks:
        _module, trace = _traced_interp(name)
        profile = BitwidthProfile.from_trace(trace)
        rows.append(
            {
                "benchmark": name,
                "max": _hist_percent(profile.classify_dynamic("max")),
                "avg": _hist_percent(profile.classify_dynamic("avg")),
                "min": _hist_percent(profile.classify_dynamic("min")),
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Figures 8/9/10/11 — the headline energy results
# ---------------------------------------------------------------------------


def fig08_energy(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Energy, dynamic instructions and EPI of BITSPEC vs BASELINE."""
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        rows.append(
            {
                "benchmark": name,
                "energy_rel": spec.total_energy / base.total_energy,
                "instructions_rel": spec.instructions / base.instructions,
                "epi_rel": spec.epi / base.epi,
                "misspeculations": spec.sim.misspeculations,
            }
        )
    energies = [r["energy_rel"] for r in rows]
    return {
        "rows": rows,
        "mean_energy_reduction_percent": 100.0 * (1.0 - geomean(energies)),
        "max_energy_reduction_percent": 100.0 * (1.0 - min(energies)),
        "mean_epi_reduction_percent": 100.0
        * (1.0 - geomean([r["epi_rel"] for r in rows])),
    }


def fig09_breakdown(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Per-component energy (ALU, RF, D$, I$, pipeline) vs BASELINE."""
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        b, s = base.energy, spec.energy
        rows.append(
            {
                "benchmark": name,
                "baseline": b.as_dict(),
                "bitspec": s.as_dict(),
                "rel": {
                    comp: (getattr(s, comp) / getattr(b, comp))
                    if getattr(b, comp)
                    else 1.0
                    for comp in ("alu", "regfile", "dcache", "icache", "pipeline")
                },
            }
        )
    return {"rows": rows}


def fig10_spills(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Dynamic allocator-injected loads/stores/copies, normalized to the
    BASELINE sum (the paper's stacked bars)."""
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        total = (
            base.sim.spill_loads + base.sim.spill_stores + base.sim.copies
        ) or 1
        rows.append(
            {
                "benchmark": name,
                "baseline": {
                    "loads": base.sim.spill_loads / total,
                    "stores": base.sim.spill_stores / total,
                    "copies": base.sim.copies / total,
                },
                "bitspec": {
                    "loads": spec.sim.spill_loads / total,
                    "stores": spec.sim.spill_stores / total,
                    "copies": spec.sim.copies / total,
                },
            }
        )
    return {"rows": rows}


def fig11_regaccess(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Dynamic register accesses at 8 vs 32 bits, normalized to BASELINE."""
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))

        def counts(record: RunRecord) -> dict:
            reads = record.sim.counters.rf_reads_by_width
            writes = record.sim.counters.rf_writes_by_width
            return {
                "8": reads[1] + writes[1],
                "16": reads[2] + writes[2],
                "32": reads[4] + writes[4],
            }

        b, s = counts(base), counts(spec)
        total = sum(b.values()) or 1
        rows.append(
            {
                "benchmark": name,
                "baseline": {k: v / total for k, v in b.items()},
                "bitspec": {k: v / total for k, v in s.items()},
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Figure 12 / RQ2 — register packing without speculation
# ---------------------------------------------------------------------------


def fig12_nospec(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        nospec = run(name, CompilerConfig.nospec())
        rows.append(
            {
                "benchmark": name,
                "bitspec_rel": spec.total_energy / base.total_energy,
                "nospec_rel": nospec.total_energy / base.total_energy,
            }
        )
    gap = geomean([r["nospec_rel"] for r in rows]) - geomean(
        [r["bitspec_rel"] for r in rows]
    )
    return {"rows": rows, "extra_energy_without_speculation_percent": 100.0 * gap}


# ---------------------------------------------------------------------------
# RQ3 — BITSPEC-specific optimizations
# ---------------------------------------------------------------------------


def rq3_optimizations() -> dict:
    """Ablations: compare elimination (dijkstra), bitmask elision
    (blowfish, rijndael)."""
    results = {}
    for name in ("dijkstra",):
        on = run(name, CompilerConfig.bitspec("max"))
        off = run(
            name,
            CompilerConfig.bitspec("max", compare_elimination=False, name="nocmpelim"),
        )
        results[f"{name}-compare-elimination"] = {
            "energy_increase_percent": 100.0
            * (off.total_energy / on.total_energy - 1.0),
            "instruction_increase_percent": 100.0
            * (off.instructions / on.instructions - 1.0),
        }
    for name in ("blowfish", "rijndael"):
        base = run(name, CompilerConfig.baseline())
        on = run(name, CompilerConfig.bitspec("max"))
        off = run(
            name,
            CompilerConfig.bitspec("max", bitmask_elision=False, name="nobitmask"),
        )
        results[f"{name}-bitmask-elision"] = {
            "energy_increase_vs_baseline_percent": 100.0
            * (off.total_energy - on.total_energy)
            / base.total_energy,
        }
    return results


# ---------------------------------------------------------------------------
# Figure 13 / RQ4 — expander ablation
# ---------------------------------------------------------------------------


def fig13_expander(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    rows = []
    disabled = ExpanderConfig.disabled()
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        base_off = run(name, CompilerConfig.baseline(expander=disabled))
        spec_off = run(name, CompilerConfig.bitspec("max", expander=disabled))
        rows.append(
            {
                "benchmark": name,
                "baseline_noexp_energy_rel": base_off.total_energy / base.total_energy,
                "bitspec_epi_rel": spec.epi / base.epi,
                "bitspec_noexp_epi_rel": spec_off.epi / base_off.epi,
            }
        )
    return {
        "rows": rows,
        "baseline_energy_increase_without_expander_percent": 100.0
        * (geomean([r["baseline_noexp_energy_rel"] for r in rows]) - 1.0),
        "bitspec_epi_reduction_with_expander_percent": 100.0
        * (1.0 - geomean([r["bitspec_epi_rel"] for r in rows])),
        "bitspec_epi_reduction_without_expander_percent": 100.0
        * (1.0 - geomean([r["bitspec_noexp_epi_rel"] for r in rows])),
    }


# ---------------------------------------------------------------------------
# Figure 14 + Table 2 / RQ5 — aggressiveness
# ---------------------------------------------------------------------------


def fig14_table2_aggressiveness(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        row = {"benchmark": name}
        for heuristic in ("max", "avg", "min"):
            record = run(name, CompilerConfig.bitspec(heuristic))
            row[f"{heuristic}_energy_rel"] = record.total_energy / base.total_energy
            row[f"{heuristic}_misspecs"] = record.sim.misspeculations
            row[f"{heuristic}_instructions_rel"] = (
                record.instructions / base.instructions
            )
        rows.append(row)
    return {"rows": rows}


def rq5_handler_weights(
    benchmarks: Sequence[str] = ("susan-smoothing", "crc32", "bitcount")
) -> dict:
    """RQ5 deep dive: handler branch weights in the register allocator.

    Under MIN, misspeculation sends most execution into CFG_orig, whose
    allocation quality the default (handlers-presumed-cold) priority
    sacrifices; inverting the weights recovers it — the paper's 12.5% → 2.6%
    dynamic-instruction result.
    """
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        normal = run(name, CompilerConfig.bitspec("min"))
        inverted = run(
            name,
            CompilerConfig.bitspec(
                "min", invert_handler_weights=True, name="bitspec-min-inv"
            ),
        )
        rows.append(
            {
                "benchmark": name,
                "min_misspecs": normal.sim.misspeculations,
                "min_instructions_rel": normal.instructions / base.instructions,
                "min_inverted_instructions_rel": inverted.instructions
                / base.instructions,
                "min_energy_rel": normal.total_energy / base.total_energy,
                "min_inverted_energy_rel": inverted.total_energy
                / base.total_energy,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Figures 15/16 / RQ6 — input sensitivity
# ---------------------------------------------------------------------------


def fig15_sensitivity(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    """Profile on the alternate input, run on the provided input."""
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        alt = run(name, CompilerConfig.bitspec("max"), profile_kind="alt")
        rows.append(
            {
                "benchmark": name,
                "bitspec_rel": spec.total_energy / base.total_energy,
                "bitspec_altprofile_rel": alt.total_energy / base.total_energy,
                "altprofile_misspecs": alt.sim.misspeculations,
            }
        )
    increase = geomean([r["bitspec_altprofile_rel"] for r in rows]) / geomean(
        [r["bitspec_rel"] for r in rows]
    )
    return {"rows": rows, "mean_energy_increase_percent": 100.0 * (increase - 1.0)}


def fig16_susan_cdf(n_images: int = 6, heuristics=("max", "avg", "min")) -> dict:
    """Profile-image × run-image cross product on susan-edges.

    For each (i, j): dynamic instructions of p_i run on j, relative to
    p_j run on j.  Returns the sorted ratio population per heuristic.
    """
    results = {}
    for heuristic in heuristics:
        self_insts = {}
        for j in range(n_images):
            record = run(
                "susan-edges",
                CompilerConfig.bitspec(heuristic),
                profile_kind="test",
                profile_seed=j,
                run_kind="test",
                run_seed=j,
            )
            self_insts[j] = record.instructions
        ratios = []
        for i in range(n_images):
            for j in range(n_images):
                record = run(
                    "susan-edges",
                    CompilerConfig.bitspec(heuristic),
                    profile_kind="test",
                    profile_seed=i,
                    run_kind="test",
                    run_seed=j,
                )
                ratios.append(record.instructions / self_insts[j])
        results[heuristic] = sorted(ratios)
    return {
        "cdfs": results,
        "p95": {h: v[int(0.95 * (len(v) - 1))] for h, v in results.items()},
    }


# ---------------------------------------------------------------------------
# RQ7 — fully automatic bitwidth selection
# ---------------------------------------------------------------------------


def rq7_auto_bitwidth() -> dict:
    results = {}
    for name in ("stringsearch", "dijkstra"):
        workload = get_workload(name)
        inputs = workload.inputs("test")
        expected = workload.expected_output(inputs)
        cell = {}
        for label, source in (("orig", workload.source), ("wide", workload.wide_source)):
            for config in (CompilerConfig.baseline(), CompilerConfig.bitspec("max")):
                binary = compile_binary(
                    source, config, profile_inputs=inputs, name=f"{name}-{label}"
                )
                sim = binary.run(inputs)
                assert sim.output == expected, (name, label, config.name)
                cell[(label, config.name)] = sim.energy().total
        base = cell[("orig", "baseline")]
        results[name] = {
            "bitspec_orig_rel": cell[("orig", "bitspec-max")] / base,
            "baseline_wide_rel": cell[("wide", "baseline")] / base,
            "bitspec_wide_rel": cell[("wide", "bitspec-max")] / base,
        }
    return results


# ---------------------------------------------------------------------------
# Figure 17 / RQ8 — DTS composition
# ---------------------------------------------------------------------------


def fig17_dts(benchmarks: Optional[Sequence[str]] = None) -> dict:
    # The paper excludes basicmath from this experiment (DTS artifact bug).
    if benchmarks is None:
        benchmarks = tuple(b for b in BENCHMARKS if b != "basicmath")
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        spec = run(name, CompilerConfig.bitspec("max"))
        dts = run(name, CompilerConfig.dts())
        combo = run(name, CompilerConfig.dts_bitspec("max"))
        bitspec_rel = spec.total_energy / base.total_energy
        dts_rel = dts.total_energy / base.total_energy
        combo_rel = combo.total_energy / base.total_energy
        rows.append(
            {
                "benchmark": name,
                "bitspec_rel": bitspec_rel,
                "dts_rel": dts_rel,
                "dts_bitspec_rel": combo_rel,
                "product_rel": bitspec_rel * dts_rel,
            }
        )
    return {
        "rows": rows,
        "dts_mean_reduction_percent": 100.0
        * (1.0 - geomean([r["dts_rel"] for r in rows])),
        "combo_mean_reduction_percent": 100.0
        * (1.0 - geomean([r["dts_bitspec_rel"] for r in rows])),
        "max_combo_reduction_percent": 100.0
        * (1.0 - min(r["dts_bitspec_rel"] for r in rows)),
    }


# ---------------------------------------------------------------------------
# Figure 18 / RQ9 — Thumb
# ---------------------------------------------------------------------------


def fig18_thumb(benchmarks: Sequence[str] = BENCHMARKS) -> dict:
    rows = []
    for name in benchmarks:
        base = run(name, CompilerConfig.baseline())
        thumb = run(name, CompilerConfig.thumb())
        rows.append(
            {
                "benchmark": name,
                "instructions_rel": thumb.instructions / base.instructions,
            }
        )
    rels = [r["instructions_rel"] for r in rows]
    return {
        "rows": rows,
        "mean_instruction_increase_percent": 100.0 * (geomean(rels) - 1.0),
        "max_instruction_increase_percent": 100.0 * (max(rels) - 1.0),
    }


def fig_dse_tradeoff(
    benchmarks: Sequence[str] = ("crc32", "sha", "bitcount"),
    widths: Sequence[int] = (4, 8, 16, 32),
) -> dict:
    """Energy/cycles trade-off across slice widths (the DSE headline view).

    One row per (benchmark, slice width), normalized to that benchmark's
    width-32 point — which *is* the BASELINE build, so the width-8 column
    reproduces fig08's energy ratios.  Rows on the per-benchmark Pareto
    front over (energy, cycles, misspec rate) are flagged; the fronts
    come from :mod:`repro.dse.analysis` on the same measurements.
    """
    from repro.dse.analysis import pareto_front
    from repro.dse.runner import PointRow
    from repro.dse.space import SpecPoint

    rows = []
    for name in benchmarks:
        records = {
            w: run(name, SpecPoint(slice_width=w).to_config()) for w in widths
        }
        base = records[32] if 32 in records else run(
            name, SpecPoint(slice_width=32).to_config()
        )
        point_rows = [
            PointRow(
                point=SpecPoint(slice_width=w),
                workload=name,
                instructions=rec.sim.instructions,
                cycles=rec.sim.cycles,
                misspeculations=rec.sim.misspeculations,
                energy_pj=rec.total_energy,
            )
            for w, rec in records.items()
        ]
        front = {r.point.slice_width for r in pareto_front(point_rows)}
        for w, rec in records.items():
            rows.append(
                {
                    "benchmark": name,
                    "slice_width": w,
                    "energy_rel": rec.total_energy / base.total_energy,
                    "cycles_rel": rec.sim.cycles / base.sim.cycles,
                    "misspeculations": rec.sim.misspeculations,
                    "pareto": w in front,
                }
            )
    by_width = {
        w: geomean(
            [r["energy_rel"] for r in rows if r["slice_width"] == w]
        )
        for w in widths
    }
    best_width = min(by_width, key=lambda w: by_width[w])
    return {
        "rows": rows,
        "mean_energy_rel_by_width": by_width,
        "best_width": best_width,
        "mean_energy_reduction_percent_at_best": 100.0
        * (1.0 - by_width[best_width]),
    }
