"""Evaluation harness reproducing the paper's figures and tables."""

from repro.eval.harness import (
    BENCHMARKS,
    RunRecord,
    clear_caches,
    geomean,
    get_binary,
    run,
)
from repro.eval import figures

__all__ = [
    "BENCHMARKS",
    "RunRecord",
    "clear_caches",
    "figures",
    "geomean",
    "get_binary",
    "run",
]
