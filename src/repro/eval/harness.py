"""Experiment harness: compile-and-simulate with memoization.

The unit of work is a :class:`RunRecord` — one (workload, configuration,
profile input, run input) simulation with its energy breakdown and compiler
statistics.  Records are cached per-process so the per-figure drivers can
share runs (each figure touches the same baseline runs, for instance).

Profiling defaults to the *run* input, mirroring the paper's main results
(§2 footnote: all values use the provided large input); the RQ6 sensitivity
experiments override ``profile_kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.arch.energy import EnergyBreakdown
from repro.arch.machine import SimResult
from repro.core.pipeline import CompiledBinary, CompilerConfig, compile_binary
from repro.passes.expander import ExpanderConfig
from repro.workloads import get_workload


@dataclass
class RunRecord:
    """One simulated experiment."""

    workload: str
    config: CompilerConfig
    sim: SimResult
    binary: CompiledBinary
    correct: bool
    energy: EnergyBreakdown
    #: energy under time squeezing (populated when voltage_scaling says so)
    dts_energy: Optional[EnergyBreakdown] = None
    #: per-pass compiler counters (repro.passes.stats), cached with the run
    pass_stats: dict = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        if self.config.voltage_scaling == "timesqueezing":
            if self.dts_energy is None:
                # A record built outside run() (or deserialized) may not
                # carry the scaled breakdown; derive it from the sim rather
                # than dying on `None.total`.
                if self.sim is None:
                    raise ValueError(
                        "timesqueezing record has neither dts_energy nor a "
                        "sim result to derive it from"
                    )
                self.dts_energy = self.config.dts_model().apply(self.sim)
            return self.dts_energy.total
        return self.energy.total

    @property
    def instructions(self) -> int:
        return self.sim.instructions

    @property
    def epi(self) -> float:
        return self.total_energy / max(self.sim.instructions, 1)


def _config_key(config: CompilerConfig) -> str:
    """Memoization key covering every semantic knob (but not ``name``).

    Delegates to :meth:`CompilerConfig.stable_hash`, which hashes the full
    fingerprint — so a knob added to the config dataclass is covered here
    automatically instead of silently aliasing cache entries.
    """
    return config.stable_hash()


_BINARY_CACHE: dict = {}
_RUN_CACHE: dict = {}

#: optional persistent layer under the per-process memoizer — a
#: :class:`repro.bench.cache.RunDiskCache` (installed via
#: ``repro.bench.cache.install_disk_cache`` or the bench executor)
_DISK_CACHE = None


def set_disk_cache(cache) -> None:
    """Install (or remove, with None) the persistent result cache."""
    global _DISK_CACHE
    _DISK_CACHE = cache


def get_disk_cache():
    return _DISK_CACHE


def clear_caches() -> None:
    """Clear the in-process memoizers (the disk cache is untouched)."""
    _BINARY_CACHE.clear()
    _RUN_CACHE.clear()


def get_binary(
    workload_name: str,
    config: CompilerConfig,
    *,
    profile_kind: str = "test",
    profile_seed: int = 0,
) -> CompiledBinary:
    """Compile (memoized) a workload under a configuration."""
    key = (workload_name, _config_key(config), profile_kind, profile_seed)
    cached = _BINARY_CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(workload_name)
    profile_inputs = workload.inputs(profile_kind, profile_seed)
    binary = compile_binary(
        workload.source, config, profile_inputs=profile_inputs, name=workload_name
    )
    _BINARY_CACHE[key] = binary
    return binary


def run(
    workload_name: str,
    config: CompilerConfig,
    *,
    profile_kind: str = "test",
    profile_seed: int = 0,
    run_kind: str = "test",
    run_seed: int = 0,
    engine: Optional[str] = None,
) -> RunRecord:
    """Compile + simulate (memoized); checks output against the oracle.

    ``engine`` selects the simulation engine ("legacy" / "fast" /
    "compiled" / "ooo"; default lets :class:`~repro.arch.machine.Machine`
    resolve).  The in-order engines are bit-identical (docs/engines.md,
    ``tests/test_engine_equivalence.py``), so the engine itself is
    excluded from the disk-cache key — in-order records are
    interchangeable across those engines.  What *does* partition the
    disk key is :func:`~repro.arch.machine.timing_model`: ooo-engine
    records carry different cycles/counters and must never serve an
    in-order lookup.  The engine enters the in-process memo key so that
    engine-comparison harness code measuring a specific engine is not
    short-circuited by a record produced under another one.
    """
    from repro.arch.machine import timing_model

    key = (
        workload_name,
        _config_key(config),
        profile_kind,
        profile_seed,
        run_kind,
        run_seed,
        engine,
    )
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        return cached
    workload = get_workload(workload_name)
    timing = timing_model(engine)
    if _DISK_CACHE is not None:
        record = _DISK_CACHE.lookup_run(
            workload.source,
            config,
            profile_kind,
            profile_seed,
            run_kind,
            run_seed,
            timing,
        )
        if record is not None:
            _RUN_CACHE[key] = record
            return record
    binary = get_binary(
        workload_name, config, profile_kind=profile_kind, profile_seed=profile_seed
    )
    inputs = workload.inputs(run_kind, run_seed)
    sim = binary.run(inputs, engine=engine)
    expected = workload.expected_output(inputs)
    record = RunRecord(
        workload=workload_name,
        config=config,
        sim=sim,
        binary=binary,
        correct=sim.output == expected,
        energy=sim.energy(),
        pass_stats=binary.pass_stats,
    )
    if config.voltage_scaling == "timesqueezing":
        record.dts_energy = config.dts_model().apply(sim)
    _RUN_CACHE[key] = record
    if not record.correct:
        raise AssertionError(
            f"{workload_name} [{config.name}]: output {sim.output} != "
            f"expected {expected}"
        )
    if _DISK_CACHE is not None:
        _DISK_CACHE.store_run(
            workload.source,
            config,
            profile_kind,
            profile_seed,
            run_kind,
            run_seed,
            record,
            timing,
        )
    return record


# -- the benchmark roster, ordered as the paper's figures ---------------------

BENCHMARKS = (
    "crc32",
    "fft",
    "basicmath",
    "bitcount",
    "blowfish",
    "dijkstra",
    "patricia",
    "qsort",
    "rijndael",
    "sha",
    "stringsearch",
    "susan-edges",
    "susan-corners",
    "susan-smoothing",
)


def baseline_config(**kw) -> CompilerConfig:
    return CompilerConfig.baseline(**kw)


def bitspec_config(heuristic: str = "max", **kw) -> CompilerConfig:
    return CompilerConfig.bitspec(heuristic, **kw)


def geomean(values) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
