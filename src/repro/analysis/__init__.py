"""Static bitwidth analyses (demanded bits, known bits, combined selection)."""

from repro.analysis.bitwidth import demanded_bits, known_bits, static_selection

__all__ = ["demanded_bits", "known_bits", "static_selection"]
