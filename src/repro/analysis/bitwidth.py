"""Static bitwidth analyses (§2.2 of the paper).

Two complementary analyses, combined the way LLVM's demanded-bits users do:

* :func:`known_bits` — forward value-range style analysis: an upper bound on
  the number of bits a value can occupy, propagated through the SSA graph
  (the "bit-value inference" family [Budiu et al.]).
* :func:`demanded_bits` — backward analysis: how many low bits of a value
  its users actually observe (LLVM's DemandedBits).

``static_selection`` combines both into a per-value bitwidth selection
``BW(v)``; Figure 1c evaluates exactly this selection.  Like the production
implementation the paper measures, it is sound but conservative: loads,
wrap-capable arithmetic and loop-carried phis frequently pin values at their
declared width — the gap BITSPEC's speculation closes.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Cast,
    CondBr,
    Gep,
    Icmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType, required_bits
from repro.ir.values import Argument, Constant, Value


def _width(value: Value) -> int:
    if isinstance(value.type, IntType):
        return value.type.bits
    return 32  # pointers


def known_bits(func: Function) -> dict[Value, int]:
    """Forward fixpoint: upper bound on RequiredBits of each integer value.

    Starts optimistic (1 bit) and grows monotonically, so loop-carried phis
    converge; every result is capped at the declared width.
    """
    bounds: dict[Value, int] = {}

    def bound_of(value: Value) -> int:
        if isinstance(value, Constant):
            return required_bits(value.value)
        if isinstance(value, Instruction):
            return bounds.get(value, 1)
        # Arguments, globals: unknown, assume full width.
        return _width(value)

    def transfer(inst: Instruction) -> int:
        width = _width(inst)
        if isinstance(inst, BinOp):
            a = bound_of(inst.lhs)
            b = bound_of(inst.rhs)
            op = inst.opcode
            if op == "add":
                out = max(a, b) + 1
            elif op == "sub":
                # Unsigned subtraction may wrap to the top of the range.
                out = width
            elif op == "mul":
                out = a + b
            elif op in ("and",):
                out = min(a, b)
            elif op in ("or", "xor"):
                out = max(a, b)
            elif op == "shl":
                if isinstance(inst.rhs, Constant):
                    out = a + inst.rhs.value
                else:
                    out = width
            elif op == "lshr":
                if isinstance(inst.rhs, Constant):
                    out = max(1, a - inst.rhs.value)
                else:
                    out = a
            elif op == "ashr":
                out = width  # sign bits may fill the top
            elif op == "udiv":
                out = a
            elif op == "urem":
                out = b if isinstance(inst.rhs, Constant) else min(a, b)
            else:  # sdiv, srem: signedness defeats the unsigned bound
                out = width
            return min(out, width)
        if isinstance(inst, Icmp):
            return 1
        if isinstance(inst, Select):
            return min(max(bound_of(inst.true_value), bound_of(inst.false_value)), width)
        if isinstance(inst, Cast):
            if inst.opcode == "zext":
                return min(bound_of(inst.value), width)
            if inst.opcode == "trunc":
                return min(bound_of(inst.value), width)
            return width  # sext
        if isinstance(inst, Phi):
            incoming = [bound_of(v) for v in inst.operands]
            return min(max(incoming, default=1), width)
        if isinstance(inst, Load):
            return width  # memory contents are unknown to the static analysis
        if isinstance(inst, (Call, Gep)):
            return width
        return width

    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in block.instructions:
                if not isinstance(inst.type, IntType):
                    continue
                new = transfer(inst)
                old = bounds.get(inst, 1)
                if new > old:
                    bounds[inst] = new
                    changed = True
                elif inst not in bounds:
                    bounds[inst] = old
    return bounds


def demanded_bits(func: Function) -> dict[Value, int]:
    """Backward fixpoint: number of low bits of each value its users demand.

    The seed demand for values escaping analysis (stores, calls, returns,
    branch conditions) is their full width.
    """
    demand: dict[Value, int] = {}

    def raise_demand(value: Value, bits: int) -> bool:
        if not isinstance(value, Instruction):
            return False
        if not isinstance(value.type, IntType):
            return False
        bits = min(bits, value.type.bits)
        old = demand.get(value, 0)
        if bits > old:
            demand[value] = bits
            return True
        return False

    def demands_of(inst: Instruction, result_demand: int) -> list[tuple[Value, int]]:
        if isinstance(inst, BinOp):
            op = inst.opcode
            a, b = inst.lhs, inst.rhs
            if op in ("and", "or", "xor"):
                if op == "and" and isinstance(b, Constant):
                    masked = min(result_demand, required_bits(b.value))
                    return [(a, masked), (b, masked)]
                return [(a, result_demand), (b, result_demand)]
            if op in ("add", "sub"):
                # Low n bits of the result depend only on low n bits of inputs.
                return [(a, result_demand), (b, result_demand)]
            if op == "mul":
                return [(a, result_demand), (b, result_demand)]
            if op == "shl" and isinstance(b, Constant):
                return [(a, max(1, result_demand - b.value)), (b, 8)]
            if op == "lshr" and isinstance(b, Constant):
                return [(a, min(inst.type.bits, result_demand + b.value)), (b, 8)]
            return [(a, a.type.bits if isinstance(a.type, IntType) else 32),
                    (b, b.type.bits if isinstance(b.type, IntType) else 32)]
        if isinstance(inst, Cast):
            if inst.opcode == "zext":
                return [(inst.value, min(result_demand, inst.value.type.bits))]
            if inst.opcode == "trunc":
                return [(inst.value, min(result_demand, inst.type.bits))]
            return [(inst.value, inst.value.type.bits)]
        if isinstance(inst, Phi):
            return [(v, result_demand) for v in inst.operands]
        if isinstance(inst, Select):
            return [
                (inst.cond, 1),
                (inst.true_value, result_demand),
                (inst.false_value, result_demand),
            ]
        # Everything else demands its operands fully.
        out = []
        for op in inst.operands:
            if isinstance(op.type, IntType):
                out.append((op, op.type.bits))
            else:
                out.append((op, 32))
        return out

    # Seed: escaping uses demand full width.
    worklist: list[Instruction] = []
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, (Store, Ret, Call, Icmp, CondBr, Gep, Load)):
                for op in inst.operands:
                    if raise_demand(op, _width(op)):
                        worklist.append(op)
            if isinstance(inst.type, IntType) and not inst.users:
                # Unused results: demand nothing (stay at 0 -> treated lazily)
                demand.setdefault(inst, demand.get(inst, 0))

    while worklist:
        inst = worklist.pop()
        result_demand = demand.get(inst, 0)
        if result_demand == 0:
            continue
        for operand, bits in demands_of(inst, result_demand):
            if raise_demand(operand, bits):
                worklist.append(operand)

    # Values never demanded (dead) default to 1 bit.
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst.type, IntType):
                demand.setdefault(inst, 1)
    return demand


def static_selection(func: Function) -> dict[Value, int]:
    """Combined static bitwidth selection: min(known-bits, demanded-bits).

    This models Figure 1c's ``BW(v) = DemandedBits(v)`` evaluation with the
    forward range refinement LLVM clients layer on top.
    """
    forward = known_bits(func)
    backward = demanded_bits(func)
    selection: dict[Value, int] = {}
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst.type, IntType):
                selection[inst] = max(
                    1, min(forward.get(inst, inst.type.bits),
                           backward.get(inst, inst.type.bits))
                )
    return selection
