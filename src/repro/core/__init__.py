"""BITSPEC core: the compiler-architecture pipeline and its configurations."""

from repro.core.pipeline import (
    CompiledBinary,
    CompilerConfig,
    ISAS,
    MIDDLE_ENDS,
    compile_binary,
    set_global_inputs,
)

__all__ = [
    "CompiledBinary",
    "CompilerConfig",
    "ISAS",
    "MIDDLE_ENDS",
    "compile_binary",
    "set_global_inputs",
]
