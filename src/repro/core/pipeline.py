"""The BITSPEC compilation pipeline (Fig. 4) and its configurations.

``CompilerConfig`` mirrors the paper artifact's YAML knobs: architecture/ISA,
middle-end (heuristic), expander, per-optimization toggles, voltage scaling.
``compile_binary`` runs front-end → expander → (CFG prep → profile →
squeezer → speculative opts) → back-end → linked machine image;
``CompiledBinary.run`` executes it on the architecture model.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Optional, Union

from repro.arch.cache import CacheGeometry
from repro.arch.dts import BITWIDTH_AWARE_SLACK, DTSModel
from repro.arch.machine import Machine, SimResult
from repro.arch.widths import DEFAULT_SLICE_WIDTH, validate_slice_width
from repro.backend.isel import select_module
from repro.backend.layout import LinkedProgram, link_program
from repro.backend.regalloc import AllocationStats, RegisterAllocator
from repro.faults.toolchain import (
    maybe_bend_linked as _maybe_bend_linked,
    maybe_fail as _maybe_inject_fault,
)
from repro.frontend.ast_nodes import Program
from repro.interp.interpreter import Interpreter, RunResult
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.clone import clone_function
from repro.ir.function import Module
from repro.passes import stats as pass_stats
from repro.passes.dce import eliminate_dead_code
from repro.passes.expander import ExpanderConfig, build_module
from repro.passes.cfg_prep import prepare_cfg_module
from repro.passes.opt import run_speculative_opts
from repro.passes.simplify import simplify_function, simplify_module
from repro.passes.squeezer import SqueezeResult, squeeze_function
from repro.passes.static_narrow import narrow_module
from repro.profiler.profile import BitwidthProfile
from repro.profiler.selection import SqueezePlan, compute_squeeze_plan
from repro.sir.verifier import verify_sir_function

ISAS = ("ARM", "ARM_BS", "THUMB")
MIDDLE_ENDS = ("none", "2cfg-max", "2cfg-avg", "2cfg-min", "static")


@dataclass(frozen=True)
class CompilerConfig:
    """One experiment configuration (the artifact's YAML schema)."""

    name: str = "baseline"
    isa: str = "ARM"
    middle_end: str = "none"
    expander: ExpanderConfig = field(default_factory=ExpanderConfig)
    compare_elimination: bool = True
    bitmask_elision: bool = True
    invert_handler_weights: bool = False
    voltage_scaling: str = "nominal"  # 'nominal' | 'timesqueezing'
    # -- DSE sweep knobs (repro.dse); defaults are the paper's design point --
    #: speculative slice width in bits (4/8/16; 32 = speculation off)
    slice_width: int = DEFAULT_SLICE_WIDTH
    #: binop opcodes the selector may squeeze (subset of Table 1)
    squeeze_ops: tuple = ("add", "sub", "and", "or", "xor", "shl", "lshr")
    #: fraction of the function's hottest assignment count a definition
    #: must reach to be squeezed (0 = no hotness gate)
    min_hotness: float = 0.0
    #: headroom bits: eligible iff profiled target ≤ slice_width - margin
    confidence_margin: int = 0
    #: alpha-power-law exponent of the DTS voltage model
    dts_alpha: float = 1.3
    #: DTS slack estimator exploits slice carry chains (future-work mode)
    dts_bitwidth_aware: bool = False
    #: cache geometry (KiB / ways)
    l1_kb: int = 8
    l1_ways: int = 4
    l2_kb: int = 256
    l2_ways: int = 8
    #: speculation budget: a function whose squeeze creates more than this
    #: many speculative regions falls back to BASELINE codegen (0 = no cap)
    max_spec_regions: int = 0

    def __post_init__(self) -> None:
        validate_slice_width(self.slice_width)
        self.cache_geometry().validate()

    @property
    def heuristic(self) -> str:
        if not self.middle_end.startswith("2cfg-"):
            raise ValueError(f"{self.middle_end} has no heuristic")
        return self.middle_end.split("-", 1)[1]

    def cache_geometry(self) -> CacheGeometry:
        return CacheGeometry(
            l1_kb=self.l1_kb, l1_ways=self.l1_ways,
            l2_kb=self.l2_kb, l2_ways=self.l2_ways,
        )

    def dts_model(self) -> DTSModel:
        """The DTS model this configuration's knobs describe."""
        if self.dts_bitwidth_aware:
            return DTSModel(
                alpha=self.dts_alpha,
                slack_profile=dict(BITWIDTH_AWARE_SLACK),
            )
        return DTSModel(alpha=self.dts_alpha)

    def fingerprint(self) -> dict:
        """Canonical, JSON-serializable view of every semantic knob.

        Excludes ``name`` (a display label): two configs that differ only
        in name must hash identically, mirroring the in-process memoizer's
        ``_config_key``.  Used as a content-address ingredient by the
        persistent result cache (:mod:`repro.bench.cache`).
        """
        data = asdict(self)
        data.pop("name")
        return data

    def stable_hash(self) -> str:
        """SHA-256 over the canonical fingerprint."""
        blob = json.dumps(self.fingerprint(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- presets matching the artifact configs -------------------------------

    @classmethod
    def baseline(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "baseline")
        return cls(isa="ARM", middle_end="none", **kw)

    @classmethod
    def bitspec(cls, heuristic: str = "max", **kw) -> "CompilerConfig":
        kw.setdefault("name", f"bitspec-{heuristic}")
        return cls(isa="ARM_BS", middle_end=f"2cfg-{heuristic}", **kw)

    @classmethod
    def nospec(cls, **kw) -> "CompilerConfig":
        """RQ2: static narrowing + slice packing, no speculation."""
        kw.setdefault("name", "nospec")
        return cls(isa="ARM_BS", middle_end="static", **kw)

    @classmethod
    def thumb(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "thumb")
        return cls(isa="THUMB", middle_end="none", **kw)

    @classmethod
    def dts(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "dts")
        return cls(isa="ARM", middle_end="none", voltage_scaling="timesqueezing", **kw)

    @classmethod
    def dts_bitspec(cls, heuristic: str = "max", **kw) -> "CompilerConfig":
        kw.setdefault("name", f"dts-bitspec-{heuristic}")
        return cls(
            isa="ARM_BS",
            middle_end=f"2cfg-{heuristic}",
            voltage_scaling="timesqueezing",
            **kw,
        )


def set_global_inputs(module: Module, inputs: dict) -> None:
    """Inject workload inputs into global initializers.

    ``inputs`` maps global names to a scalar or list of element values;
    omitted globals keep their source-level initializers.
    """
    for name, value in inputs.items():
        gv = module.globals.get(name)
        if gv is None:
            raise KeyError(f"no such global: {name}")
        values = value if isinstance(value, (list, tuple)) else [value]
        if len(values) > gv.count:
            raise ValueError(
                f"{name}: {len(values)} values exceed capacity {gv.count}"
            )
        init = [gv.elem_type.wrap(v) for v in values]
        init += [0] * (gv.count - len(init))
        gv.initializer = init


@dataclass(frozen=True)
class CompileDiagnostic:
    """One structured graceful-degradation event emitted by the pipeline.

    ``function`` is the MiniC function that fell back to BASELINE codegen
    (``"*"`` when a back-end/layout failure degraded the whole module);
    ``stage`` is where it failed: ``squeeze``, ``limits``, ``verify`` or
    ``layout``.
    """

    function: str
    stage: str
    error: str
    message: str

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class CompiledBinary:
    """The output of a pipeline run, ready to simulate."""

    config: CompilerConfig
    module: Module
    linked: LinkedProgram
    profile: Optional[BitwidthProfile] = None
    squeeze_results: dict = field(default_factory=dict)
    alloc_stats: dict = field(default_factory=dict)
    opt_counts: dict = field(default_factory=dict)
    #: LLVM `-stats`-style per-pass counters collected during compilation
    pass_stats: dict = field(default_factory=dict)
    #: static code size in instructions (excluding the skeleton area)
    code_size: int = 0
    #: graceful-degradation events (empty on a clean compile)
    diagnostics: list = field(default_factory=list)
    #: silent-miscompile injections applied to the linked image (testing
    #: only — see ``repro.faults.toolchain.bend_compiler``)
    toolchain_bends: list = field(default_factory=list)

    def run(
        self,
        inputs: Optional[dict] = None,
        entry: str = "main",
        *,
        obs: bool = False,
        faults=None,
        step_limit: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> SimResult:
        """Simulate on the architecture model with the given inputs.

        ``obs=True`` attaches a per-pc :class:`repro.obs.events.PcSample`
        to ``SimResult.obs``.  The sample comes from the batching
        engines' own per-pc counters, so obs selects the fast engine
        (never a ``_run_legacy`` fallback — the engines are bit-identical,
        so ``REPRO_MACHINE_LEGACY`` is ignored for obs runs) unless an
        explicit ``engine`` says otherwise.

        ``engine`` picks the execution engine ("legacy" / "fast" /
        "compiled"); None defers to ``REPRO_MACHINE_ENGINE`` and the
        historical defaults.  All engines produce bit-identical results
        (docs/engines.md).

        ``faults`` attaches a :class:`repro.faults.FaultSession` to the
        machine; ``step_limit`` overrides the default watchdog (fault
        campaigns shrink it so a corrupted loop counter cannot spin for
        the full default budget).
        """
        if inputs:
            set_global_inputs(self.module, inputs)
        if entry != "main":
            raise ValueError("the machine image always enters at main")
        kwargs = {}
        if step_limit is not None:
            kwargs["step_limit"] = step_limit
        machine = Machine(
            self.linked, self.module, obs=obs, engine=engine,
            fast=True if (obs and engine is None) else None,
            geometry=self.config.cache_geometry(), faults=faults, **kwargs,
        )
        result = machine.run()
        if self.config.voltage_scaling == "timesqueezing":
            result.dts_energy = self.config.dts_model().apply(result)
        return result

    def interpret(
        self, inputs: Optional[dict] = None, entry: str = "main", trace: bool = False
    ) -> RunResult:
        """Run the (post-middle-end) IR on the functional simulator."""
        if inputs:
            set_global_inputs(self.module, inputs)
        return Interpreter(self.module, trace=trace).run(entry)

    def fingerprint(self) -> str:
        """SHA-256 over the linked machine image (config + instructions).

        Stable across processes — a content address for the compiled
        artifact, used by diagnostics and the bench cache to attribute
        results to an exact binary.
        """
        h = hashlib.sha256()
        h.update(self.config.stable_hash().encode())
        h.update(f"isa={self.linked.isa};delta={self.linked.delta};".encode())
        for inst in self.linked.insts:
            h.update(repr(inst).encode())
            h.update(b"\n")
        return h.hexdigest()


def compile_binary(
    source: str,
    config: CompilerConfig,
    *,
    profile_inputs: Optional[dict] = None,
    entry: str = "main",
    name: str = "program",
    stage_hook: Optional[Callable[[str, Module], None]] = None,
    strict: Optional[bool] = None,
) -> CompiledBinary:
    """Run the full pipeline of Fig. 4 for one configuration.

    ``stage_hook(stage_name, module)`` is called after every middle-end
    stage; the fuzzer's differential oracles use it to run the IR/SIR
    verifiers between passes.

    ``strict`` controls graceful degradation: when False (the default), a
    per-function failure in the squeezer, the SIR verifier, or the
    ``max_spec_regions`` budget restores that function's pre-middle-end
    IR and compiles it with BASELINE codegen (a mixed-world binary),
    recording a :class:`CompileDiagnostic`; a back-end/layout failure
    degrades the whole module.  When True, every failure propagates.
    ``strict=None`` reads the ``REPRO_STRICT_COMPILE`` environment
    variable (``"1"`` = strict).
    """
    hook = stage_hook or (lambda stage, mod: None)
    if strict is None:
        strict = os.environ.get("REPRO_STRICT_COMPILE", "") == "1"
    with pass_stats.collecting() as stats_scope:
        binary = _compile_binary(
            source, config, profile_inputs, entry, name, hook, strict
        )
    binary.pass_stats = pass_stats.snapshot(stats_scope)
    return binary


class SpeculationLimitError(Exception):
    """A function exceeded ``CompilerConfig.max_spec_regions``."""


def _squeeze_with_fallback(binary, module, profile, config, strict) -> set:
    """Per-function squeeze + verify with graceful degradation.

    Returns the set of function names that fell back to BASELINE.  A
    fallback function's IR is restored to its pre-``cfg-prep`` snapshot,
    so later middle-end passes must leave it untouched and the back-end
    must select it without speculation (as if ``middle_end == "none"``).
    """
    snapshots = binary._snapshots
    fallback: set = set()
    limit = config.max_spec_regions
    for fname in list(module.functions):
        func = module.functions[fname]
        stage = "squeeze"
        try:
            _maybe_inject_fault("squeeze", fname)
            plan = compute_squeeze_plan(
                func,
                profile,
                config.heuristic,
                width=config.slice_width,
                ops=frozenset(config.squeeze_ops),
                min_hotness=config.min_hotness,
                confidence_margin=config.confidence_margin,
            )
            result = squeeze_function(func, plan, module)
            stage = "limits"
            if limit and result.regions > limit:
                raise SpeculationLimitError(
                    f"{result.regions} speculative regions exceed "
                    f"max_spec_regions={limit}"
                )
            stage = "verify"
            _maybe_inject_fault("verify", fname)
            verify_sir_function(func, module)
        except Exception as exc:
            if strict:
                raise
            binary.diagnostics.append(
                CompileDiagnostic(
                    function=fname,
                    stage=stage,
                    error=type(exc).__name__,
                    message=str(exc),
                )
            )
            restored = snapshots[fname]
            restored.parent = module
            module.functions[fname] = restored
            fallback.add(fname)
            pass_stats.bump("pipeline-fallback", "functions_degraded", 1)
            continue
        binary.squeeze_results[fname] = result
        # mirror squeeze_module's counters for the functions that made it
        pass_stats.bump("squeezer", "variables_narrowed", result.narrowed)
        pass_stats.bump("squeezer", "compares_narrowed", result.narrowed_cmps)
        pass_stats.bump("squeezer", "casts_inserted", result.spec_truncs)
        pass_stats.bump("squeezer", "regions_created", result.regions)
        pass_stats.bump(
            "squeezer",
            "functions_squeezed",
            1 if (plan.narrow or plan.narrow_cmps) else 0,
        )
    return fallback


def _compile_binary(
    source, config, profile_inputs, entry, name, hook, strict
) -> CompiledBinary:
    module = build_module(source, config.expander, name)
    hook("frontend+expander", module)
    binary = CompiledBinary(config=config, module=module, linked=None)
    fallback: set = set()

    if config.middle_end.startswith("2cfg-"):
        # Pristine per-function snapshots, taken before any middle-end
        # pass mutates the IR: the graceful-degradation path restores
        # these, so a fallback function compiles exactly as BASELINE
        # (middle_end == "none") would have compiled it.
        binary._snapshots = {
            fname: clone_function(func)
            for fname, func in module.functions.items()
        }
        prepare_cfg_module(module)
        hook("cfg-prep", module)
        if profile_inputs:
            set_global_inputs(module, profile_inputs)
        profile = BitwidthProfile.collect(module, entry)
        binary.profile = profile
        fallback = _squeeze_with_fallback(binary, module, profile, config, strict)
        hook("squeeze", module)
        binary.opt_counts = run_speculative_opts(
            module,
            compare_elimination=config.compare_elimination,
            bitmask_elision=config.bitmask_elision,
            slice_width=config.slice_width,
            skip=frozenset(fallback),
        )
        hook("speculative-opts", module)
        removed = 0
        for fname, func in module.functions.items():
            if fname in fallback:
                continue  # restored bodies must stay bit-equal to BASELINE's
            remove_unreachable_blocks(func)
            removed += eliminate_dead_code(func)
            simplify_function(func)
        pass_stats.bump("dce", "instructions_removed", removed)
        hook("cleanup", module)
    elif config.middle_end == "static":
        narrow_module(module)
        simplify_module(module)
        hook("static-narrow", module)
    elif config.middle_end != "none":
        raise ValueError(f"unknown middle-end: {config.middle_end}")

    def backend(baseline_fns: frozenset):
        program = select_module(
            module, isa=config.isa, name=name,
            slice_width=config.slice_width,
            baseline_functions=baseline_fns,
        )
        alloc_stats = {}
        for mfunc in program.functions.values():
            isa = config.isa
            if mfunc.name in baseline_fns and isa == "ARM_BS":
                isa = "ARM"  # no slice packing for BASELINE-fallback code
            allocator = RegisterAllocator(
                mfunc,
                isa=isa,
                invert_handler_weights=config.invert_handler_weights,
            )
            alloc_stats[mfunc.name] = allocator.run()
        return link_program(program, slice_width=config.slice_width), alloc_stats

    fallback_set = frozenset(fallback)
    try:
        _maybe_inject_fault("layout", "*")
        linked, binary.alloc_stats = backend(fallback_set)
    except Exception as exc:
        snapshots = getattr(binary, "_snapshots", None)
        if strict or snapshots is None:
            raise
        # Back-end failures have no per-function attribution (layout is
        # module-wide), so degrade the whole module to BASELINE.
        binary.diagnostics.append(
            CompileDiagnostic(
                function="*",
                stage="layout",
                error=type(exc).__name__,
                message=str(exc),
            )
        )
        fresh = {f for f in module.functions if f not in fallback_set}
        pass_stats.bump("pipeline-fallback", "functions_degraded", len(fresh))
        for fname, snap in snapshots.items():
            snap.parent = module
            module.functions[fname] = snap
        fallback_set = frozenset(module.functions)
        linked, binary.alloc_stats = backend(fallback_set)
    linked.fallback_functions = fallback_set
    binary.linked = linked
    binary.code_size = linked.code_size
    # Testing hook: an armed bend_compiler() context silently miscompiles
    # the image — the soundness canary for repro.verify.
    binary.toolchain_bends = _maybe_bend_linked(linked)
    return binary
