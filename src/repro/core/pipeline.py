"""The BITSPEC compilation pipeline (Fig. 4) and its configurations.

``CompilerConfig`` mirrors the paper artifact's YAML knobs: architecture/ISA,
middle-end (heuristic), expander, per-optimization toggles, voltage scaling.
``compile_binary`` runs front-end → expander → (CFG prep → profile →
squeezer → speculative opts) → back-end → linked machine image;
``CompiledBinary.run`` executes it on the architecture model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Optional, Union

from repro.arch.cache import CacheGeometry
from repro.arch.dts import BITWIDTH_AWARE_SLACK, DTSModel
from repro.arch.machine import Machine, SimResult
from repro.arch.widths import DEFAULT_SLICE_WIDTH, validate_slice_width
from repro.backend.isel import select_module
from repro.backend.layout import LinkedProgram, link_program
from repro.backend.regalloc import AllocationStats, RegisterAllocator
from repro.frontend.ast_nodes import Program
from repro.interp.interpreter import Interpreter, RunResult
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Module
from repro.passes import stats as pass_stats
from repro.passes.dce import eliminate_dead_code_module
from repro.passes.expander import ExpanderConfig, build_module
from repro.passes.cfg_prep import prepare_cfg_module
from repro.passes.opt import run_speculative_opts
from repro.passes.simplify import simplify_module
from repro.passes.squeezer import SqueezeResult, squeeze_module
from repro.passes.static_narrow import narrow_module
from repro.profiler.profile import BitwidthProfile
from repro.profiler.selection import SqueezePlan, compute_squeeze_plan

ISAS = ("ARM", "ARM_BS", "THUMB")
MIDDLE_ENDS = ("none", "2cfg-max", "2cfg-avg", "2cfg-min", "static")


@dataclass(frozen=True)
class CompilerConfig:
    """One experiment configuration (the artifact's YAML schema)."""

    name: str = "baseline"
    isa: str = "ARM"
    middle_end: str = "none"
    expander: ExpanderConfig = field(default_factory=ExpanderConfig)
    compare_elimination: bool = True
    bitmask_elision: bool = True
    invert_handler_weights: bool = False
    voltage_scaling: str = "nominal"  # 'nominal' | 'timesqueezing'
    # -- DSE sweep knobs (repro.dse); defaults are the paper's design point --
    #: speculative slice width in bits (4/8/16; 32 = speculation off)
    slice_width: int = DEFAULT_SLICE_WIDTH
    #: binop opcodes the selector may squeeze (subset of Table 1)
    squeeze_ops: tuple = ("add", "sub", "and", "or", "xor", "shl", "lshr")
    #: fraction of the function's hottest assignment count a definition
    #: must reach to be squeezed (0 = no hotness gate)
    min_hotness: float = 0.0
    #: headroom bits: eligible iff profiled target ≤ slice_width - margin
    confidence_margin: int = 0
    #: alpha-power-law exponent of the DTS voltage model
    dts_alpha: float = 1.3
    #: DTS slack estimator exploits slice carry chains (future-work mode)
    dts_bitwidth_aware: bool = False
    #: cache geometry (KiB / ways)
    l1_kb: int = 8
    l1_ways: int = 4
    l2_kb: int = 256
    l2_ways: int = 8

    def __post_init__(self) -> None:
        validate_slice_width(self.slice_width)
        self.cache_geometry().validate()

    @property
    def heuristic(self) -> str:
        if not self.middle_end.startswith("2cfg-"):
            raise ValueError(f"{self.middle_end} has no heuristic")
        return self.middle_end.split("-", 1)[1]

    def cache_geometry(self) -> CacheGeometry:
        return CacheGeometry(
            l1_kb=self.l1_kb, l1_ways=self.l1_ways,
            l2_kb=self.l2_kb, l2_ways=self.l2_ways,
        )

    def dts_model(self) -> DTSModel:
        """The DTS model this configuration's knobs describe."""
        if self.dts_bitwidth_aware:
            return DTSModel(
                alpha=self.dts_alpha,
                slack_profile=dict(BITWIDTH_AWARE_SLACK),
            )
        return DTSModel(alpha=self.dts_alpha)

    def fingerprint(self) -> dict:
        """Canonical, JSON-serializable view of every semantic knob.

        Excludes ``name`` (a display label): two configs that differ only
        in name must hash identically, mirroring the in-process memoizer's
        ``_config_key``.  Used as a content-address ingredient by the
        persistent result cache (:mod:`repro.bench.cache`).
        """
        data = asdict(self)
        data.pop("name")
        return data

    def stable_hash(self) -> str:
        """SHA-256 over the canonical fingerprint."""
        blob = json.dumps(self.fingerprint(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- presets matching the artifact configs -------------------------------

    @classmethod
    def baseline(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "baseline")
        return cls(isa="ARM", middle_end="none", **kw)

    @classmethod
    def bitspec(cls, heuristic: str = "max", **kw) -> "CompilerConfig":
        kw.setdefault("name", f"bitspec-{heuristic}")
        return cls(isa="ARM_BS", middle_end=f"2cfg-{heuristic}", **kw)

    @classmethod
    def nospec(cls, **kw) -> "CompilerConfig":
        """RQ2: static narrowing + slice packing, no speculation."""
        kw.setdefault("name", "nospec")
        return cls(isa="ARM_BS", middle_end="static", **kw)

    @classmethod
    def thumb(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "thumb")
        return cls(isa="THUMB", middle_end="none", **kw)

    @classmethod
    def dts(cls, **kw) -> "CompilerConfig":
        kw.setdefault("name", "dts")
        return cls(isa="ARM", middle_end="none", voltage_scaling="timesqueezing", **kw)

    @classmethod
    def dts_bitspec(cls, heuristic: str = "max", **kw) -> "CompilerConfig":
        kw.setdefault("name", f"dts-bitspec-{heuristic}")
        return cls(
            isa="ARM_BS",
            middle_end=f"2cfg-{heuristic}",
            voltage_scaling="timesqueezing",
            **kw,
        )


def set_global_inputs(module: Module, inputs: dict) -> None:
    """Inject workload inputs into global initializers.

    ``inputs`` maps global names to a scalar or list of element values;
    omitted globals keep their source-level initializers.
    """
    for name, value in inputs.items():
        gv = module.globals.get(name)
        if gv is None:
            raise KeyError(f"no such global: {name}")
        values = value if isinstance(value, (list, tuple)) else [value]
        if len(values) > gv.count:
            raise ValueError(
                f"{name}: {len(values)} values exceed capacity {gv.count}"
            )
        init = [gv.elem_type.wrap(v) for v in values]
        init += [0] * (gv.count - len(init))
        gv.initializer = init


@dataclass
class CompiledBinary:
    """The output of a pipeline run, ready to simulate."""

    config: CompilerConfig
    module: Module
    linked: LinkedProgram
    profile: Optional[BitwidthProfile] = None
    squeeze_results: dict = field(default_factory=dict)
    alloc_stats: dict = field(default_factory=dict)
    opt_counts: dict = field(default_factory=dict)
    #: LLVM `-stats`-style per-pass counters collected during compilation
    pass_stats: dict = field(default_factory=dict)
    #: static code size in instructions (excluding the skeleton area)
    code_size: int = 0

    def run(
        self,
        inputs: Optional[dict] = None,
        entry: str = "main",
        *,
        obs: bool = False,
    ) -> SimResult:
        """Simulate on the architecture model with the given inputs.

        ``obs=True`` attaches a per-pc :class:`repro.obs.events.PcSample`
        to ``SimResult.obs``.  The sample comes from the predecoded fast
        path's own batched counters, so obs always uses the fast engine
        (never a ``_run_legacy`` fallback — the engines are bit-identical,
        so ``REPRO_MACHINE_LEGACY`` is ignored for obs runs).
        """
        if inputs:
            set_global_inputs(self.module, inputs)
        if entry != "main":
            raise ValueError("the machine image always enters at main")
        machine = Machine(
            self.linked, self.module, obs=obs, fast=True if obs else None,
            geometry=self.config.cache_geometry(),
        )
        result = machine.run()
        if self.config.voltage_scaling == "timesqueezing":
            result.dts_energy = self.config.dts_model().apply(result)
        return result

    def interpret(
        self, inputs: Optional[dict] = None, entry: str = "main", trace: bool = False
    ) -> RunResult:
        """Run the (post-middle-end) IR on the functional simulator."""
        if inputs:
            set_global_inputs(self.module, inputs)
        return Interpreter(self.module, trace=trace).run(entry)

    def fingerprint(self) -> str:
        """SHA-256 over the linked machine image (config + instructions).

        Stable across processes — a content address for the compiled
        artifact, used by diagnostics and the bench cache to attribute
        results to an exact binary.
        """
        h = hashlib.sha256()
        h.update(self.config.stable_hash().encode())
        h.update(f"isa={self.linked.isa};delta={self.linked.delta};".encode())
        for inst in self.linked.insts:
            h.update(repr(inst).encode())
            h.update(b"\n")
        return h.hexdigest()


def compile_binary(
    source: str,
    config: CompilerConfig,
    *,
    profile_inputs: Optional[dict] = None,
    entry: str = "main",
    name: str = "program",
    stage_hook: Optional[Callable[[str, Module], None]] = None,
) -> CompiledBinary:
    """Run the full pipeline of Fig. 4 for one configuration.

    ``stage_hook(stage_name, module)`` is called after every middle-end
    stage; the fuzzer's differential oracles use it to run the IR/SIR
    verifiers between passes.
    """
    hook = stage_hook or (lambda stage, mod: None)
    with pass_stats.collecting() as stats_scope:
        binary = _compile_binary(
            source, config, profile_inputs, entry, name, hook
        )
    binary.pass_stats = pass_stats.snapshot(stats_scope)
    return binary


def _compile_binary(
    source, config, profile_inputs, entry, name, hook
) -> CompiledBinary:
    module = build_module(source, config.expander, name)
    hook("frontend+expander", module)
    binary = CompiledBinary(config=config, module=module, linked=None)

    if config.middle_end.startswith("2cfg-"):
        prepare_cfg_module(module)
        hook("cfg-prep", module)
        if profile_inputs:
            set_global_inputs(module, profile_inputs)
        profile = BitwidthProfile.collect(module, entry)
        binary.profile = profile
        plans = {
            fname: compute_squeeze_plan(
                func,
                profile,
                config.heuristic,
                width=config.slice_width,
                ops=frozenset(config.squeeze_ops),
                min_hotness=config.min_hotness,
                confidence_margin=config.confidence_margin,
            )
            for fname, func in module.functions.items()
        }
        binary.squeeze_results = squeeze_module(module, plans)
        hook("squeeze", module)
        binary.opt_counts = run_speculative_opts(
            module,
            compare_elimination=config.compare_elimination,
            bitmask_elision=config.bitmask_elision,
            slice_width=config.slice_width,
        )
        hook("speculative-opts", module)
        for func in module.functions.values():
            remove_unreachable_blocks(func)
        eliminate_dead_code_module(module)
        simplify_module(module)
        hook("cleanup", module)
    elif config.middle_end == "static":
        narrow_module(module)
        simplify_module(module)
        hook("static-narrow", module)
    elif config.middle_end != "none":
        raise ValueError(f"unknown middle-end: {config.middle_end}")

    program = select_module(
        module, isa=config.isa, name=name, slice_width=config.slice_width
    )
    for mfunc in program.functions.values():
        allocator = RegisterAllocator(
            mfunc,
            isa=config.isa,
            invert_handler_weights=config.invert_handler_weights,
        )
        binary.alloc_stats[mfunc.name] = allocator.run()
    binary.linked = link_program(program, slice_width=config.slice_width)
    binary.code_size = binary.linked.code_size
    return binary
