"""Fault-injection campaigns and the recovery coverage matrix.

A campaign sweeps a grid of (workload × config × fault kind × seed)
cells.  Each cell derives one :class:`~repro.faults.plan.FaultPlan` from
the cell's golden execution profile, replays the run with the fault
armed, and classifies the injection:

==========================  ==================================================
category                    meaning
==========================  ==================================================
``detected-and-recovered``  output matches golden and a detection mechanism
                            fired (Δ handler, Razor replay)
``detected-unrecoverable``  a detection mechanism fired (parity trap, machine
                            exception, or extra misspeculations) but the run
                            did not reproduce the golden output
``masked``                  output matches golden with no detection event —
                            including plans whose trigger never arrived
``silent-data-corruption``  output differs and nothing detected anything
==========================  ==================================================

Recovered faults are *attributed* with the observability layer: the per-pc
misspeculation deltas against the golden run name the function, world,
region and Δ handler that absorbed the fault (``repro.obs`` provenance).

Everything is deterministic: cell seeds come from the fuzz driver's
splitmix64 stream, plans are derived with ``random.Random``, and the
canonical JSON matrix carries no wall-clock — the same campaign seed
yields a byte-identical matrix whether the bench disk cache is warm or
cold.  Golden runs go through :mod:`repro.eval.harness` (memoized, disk
cached when a cache is installed) so campaigns ride the bench
infrastructure; faulty runs are never cached.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from typing import Optional, Sequence

from repro.arch.machine import FaultTrap, MachineError
from repro.arch.predecode import (
    OP_BS_BIN,
    OP_BS_LDR,
    OP_BS_TRUNC,
    OP_BS_TRUNC_HI,
    predecode,
)
from repro.core.pipeline import CompilerConfig
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    GoldenProfile,
    derive_plan,
    detectable_kinds,
)
from repro.faults.session import FaultSession
from repro.fuzz.driver import iteration_seed
from repro.interp.memory import STACK_TOP

# -- classification outcomes --------------------------------------------------

DETECTED_RECOVERED = "detected-and-recovered"
DETECTED_UNRECOVERABLE = "detected-unrecoverable"
MASKED = "masked"
SDC = "silent-data-corruption"

CATEGORIES = (DETECTED_RECOVERED, DETECTED_UNRECOVERABLE, MASKED, SDC)

#: opcode ids that resolve a speculation (the engines' four spec sites)
_SPEC_OPS = frozenset({OP_BS_BIN, OP_BS_TRUNC, OP_BS_TRUNC_HI, OP_BS_LDR})

#: watchdog floor — a corrupted loop bound must not spin for the default
#: 400M-step machine budget
_MIN_WATCHDOG = 10_000

DEFAULT_WORKLOADS = ("crc32", "bitcount")
#: T=MAX is the paper's design point; T=MIN misspeculates even on the
#: profiled input, giving the spec-fault kinds a live trigger pool
DEFAULT_CONFIGS = ("bitspec-max", "bitspec-min")


def resolve_config(name: str) -> CompilerConfig:
    """Map a CLI config alias to a :class:`CompilerConfig`."""
    key = name.strip().lower()
    if key in ("baseline", "arm"):
        return CompilerConfig.baseline()
    if key in ("bitspec", "arm_bs"):
        return CompilerConfig.bitspec("max")
    if key.startswith("bitspec-"):
        return CompilerConfig.bitspec(key.split("-", 1)[1])
    if key.startswith("dts-bitspec-"):
        return CompilerConfig.dts_bitspec(key.split("-", 2)[2])
    if key == "nospec":
        return CompilerConfig.nospec()
    if key == "thumb":
        return CompilerConfig.thumb()
    if key == "dts":
        return CompilerConfig.dts()
    raise ValueError(f"unknown config alias: {name}")


def spec_successes(linked, sample) -> int:
    """Successful speculation resolutions in an obs run (Σ execs − misses
    over the image's speculative ops) — the event pool spurious-assert
    plans draw their trigger from."""
    code, _ = predecode(linked, sample.narrow_rf)
    total = 0
    for entry, n, miss in zip(code, sample.exec_counts, sample.misspecs):
        if entry[0] in _SPEC_OPS:
            total += n - miss
    return total


def _mem_window(linked, module) -> tuple[int, int]:
    """The [base, base+span) data window mem_bit plans corrupt.

    Globals when the program has any (that is where workload state lives);
    otherwise a small window at the top of the stack region.
    """
    extents = []
    for name, addr in linked.global_addresses.items():
        gv = module.globals.get(name)
        extents.append((addr, gv.size_bytes if gv is not None else 4))
    if not extents:
        return STACK_TOP - 256, 256
    base = min(addr for addr, _ in extents)
    end = max(addr + size for addr, size in extents)
    return base, end - base


def golden_profile(binary, golden_sim, *, recoveries: int = 0) -> GoldenProfile:
    """Derive the plan-derivation profile from a golden ``obs=True`` run.

    ``recoveries`` is the ROB recovery count of the golden *ooo* run —
    always measured on the ooo engine (see :func:`ooo_recoveries`),
    whatever engine the campaign executes with, so recovery-kind plans
    serialize identically across engines.
    """
    base, span = _mem_window(binary.linked, binary.module)
    return GoldenProfile(
        instructions=golden_sim.instructions,
        misspeculations=golden_sim.misspeculations,
        spec_successes=spec_successes(binary.linked, golden_sim.obs),
        mem_base=base,
        mem_span=span,
        recoveries=recoveries,
    )


def ooo_recoveries(binary, inputs) -> int:
    """ROB recoveries of the fault-free ooo-engine run — the trigger pool
    for :data:`~repro.faults.plan.RECOVERY_KINDS` plans.  Deterministic
    for fixed ``REPRO_OOO_*`` structure sizes."""
    sim = binary.run(inputs, engine="ooo")
    return sim.ooo.recoveries if sim.ooo is not None else 0


def _absorbers(linked, golden_obs, faulty_obs) -> list:
    """Name the sites whose misspeculation counts grew under the fault.

    ``region`` is the region's *ordinal within the image* (1-based, in
    region-id order), not the raw ``SpeculativeRegion`` id: raw ids come
    from a process-global counter, so two compiles of the same program
    would stamp different numbers and break the matrix's byte-stability.
    """
    debug = linked.debug
    ordinal = {
        raw: i + 1
        for i, raw in enumerate(
            sorted({r for r in debug.region if r is not None})
        )
    }
    sites = []
    for pc, (g, f) in enumerate(zip(golden_obs.misspecs, faulty_obs.misspecs)):
        if f > g:
            raw = debug.region[pc] if pc < len(debug.region) else None
            sites.append(
                {
                    "pc": pc,
                    "function": linked.owner[pc] if pc < len(linked.owner) else "",
                    "world": debug.world[pc] if pc < len(debug.world) else "",
                    "region": ordinal.get(raw),
                    "handler": debug.handler_of.get(pc),
                    "extra_misspecs": f - g,
                }
            )
    return sites


def run_injection(
    binary,
    inputs: Optional[dict],
    plan: FaultPlan,
    golden_sim,
    engine: Optional[str] = None,
) -> dict:
    """Replay one faulted run and classify it against the golden run.

    ``engine`` selects the simulation engine for the faulted run.  Fault
    hooks degrade the compiled engine to the predecoded stepper for the
    whole run (docs/engines.md), so classification is engine-invariant;
    the engine is deliberately *not* recorded in the returned record —
    FAULTS documents must be byte-identical across engines
    (``tests/test_faults.py`` parity grid).
    """
    session = FaultSession(plan)
    watchdog = max(4 * golden_sim.instructions, _MIN_WATCHDOG)
    record = {
        "kind": plan.kind,
        "fault_seed": plan.seed,
        "plan": plan.to_dict(),
        "triggered": False,
        "category": MASKED,
        "mechanism": "",
        "absorbed_by": [],
        "error": "",
        "instructions": 0,
        "misspeculations": 0,
        "razor_recoveries": 0,
        "output_matches": True,
    }
    trapped = False
    sim = None
    try:
        sim = binary.run(
            inputs, obs=True, faults=session, step_limit=watchdog, engine=engine
        )
    except FaultTrap as exc:
        trapped = True
        record["error"] = f"FaultTrap: {exc}"
    except (MachineError, MemoryError, OverflowError, ValueError) as exc:
        # post-corruption wreckage surfacing as a machine/memory exception:
        # the fault was *detected* by an architectural check, not silent
        trapped = True
        record["error"] = f"{type(exc).__name__}: {exc}"

    record["triggered"] = session.triggered
    record["razor_recoveries"] = session.razor_recoveries

    if sim is not None:
        record["instructions"] = sim.instructions
        record["misspeculations"] = sim.misspeculations
        # The observable channel is the out() stream.  return_value is NOT
        # compared: workload mains are void, so r0 at halt is dead-register
        # state that legitimately differs between the spec and orig worlds
        # once a recovery re-enters CFG_orig.
        matches = sim.output == golden_sim.output
        record["output_matches"] = matches
        extra_misses = sim.misspeculations > golden_sim.misspeculations
        detected = extra_misses or session.razor_recoveries > 0
        if matches:
            record["category"] = DETECTED_RECOVERED if detected else MASKED
        else:
            record["category"] = DETECTED_UNRECOVERABLE if detected else SDC
        if detected:
            if session.razor_recoveries:
                record["mechanism"] = "razor-replay"
            else:
                record["mechanism"] = "delta-handler"
            if extra_misses and sim.obs is not None and golden_sim.obs is not None:
                record["absorbed_by"] = _absorbers(
                    binary.linked, golden_sim.obs, sim.obs
                )
    elif trapped:
        record["output_matches"] = False
        record["category"] = DETECTED_UNRECOVERABLE
        record["mechanism"] = session.trap_mechanism or (
            "parity-trap" if session.detected_by_parity else "machine-exception"
        )
    return record


# -- workload campaigns -------------------------------------------------------

#: per-process golden cache: (workload, config hash) -> (binary, sim, profile)
_GOLDEN: dict = {}


def _golden_for(workload: str, config: CompilerConfig):
    from repro.eval import harness
    from repro.workloads import get_workload

    key = (workload, config.stable_hash())
    cached = _GOLDEN.get(key)
    if cached is not None:
        return cached
    # harness.run validates output against the workload oracle and rides
    # the bench caches; the obs run below feeds plan derivation.
    harness.run(workload, config)
    binary = harness.get_binary(workload, config)
    inputs = get_workload(workload).inputs("test", 0)
    golden_sim = binary.run(inputs, obs=True)
    profile = golden_profile(
        binary, golden_sim, recoveries=ooo_recoveries(binary, inputs)
    )
    bundle = (binary, inputs, golden_sim, profile)
    _GOLDEN[key] = bundle
    return bundle


def _run_cell(task: tuple) -> dict:
    workload, config_name, kind, fault_seed, parity, engine = task
    base = {
        "workload": workload,
        "config": config_name,
        "kind": kind,
        "fault_seed": fault_seed,
    }
    try:
        config = resolve_config(config_name)
        binary, inputs, golden_sim, profile = _golden_for(workload, config)
        plan = derive_plan(kind, fault_seed, profile, parity=parity)
        record = run_injection(binary, inputs, plan, golden_sim, engine=engine)
        record.update(base)
        record["golden_instructions"] = golden_sim.instructions
        record["golden_misspeculations"] = golden_sim.misspeculations
        record["status"] = "ok"
        return record
    except Exception:
        base.update(
            {
                "status": "error",
                "category": "error",
                "error": traceback.format_exc().strip().splitlines()[-1],
            }
        )
        return base


def _init_worker(cache_dir) -> None:
    if cache_dir is not None:
        from repro.bench.cache import install_disk_cache

        install_disk_cache(cache_dir)


def enumerate_cells(
    workloads: Sequence[str],
    config_names: Sequence[str],
    kinds: Sequence[str],
    seed: int,
    per_kind: int,
    parity: bool,
    engine: Optional[str] = None,
) -> list:
    """The campaign grid, with deterministic per-cell fault seeds."""
    cells = []
    for workload in workloads:
        for config_name in config_names:
            for kind in kinds:
                for _ in range(per_kind):
                    cells.append(
                        (
                            workload,
                            config_name,
                            kind,
                            iteration_seed(seed, len(cells)),
                            parity,
                            engine,
                        )
                    )
    return cells


def summarize(cells: list, parity: bool) -> dict:
    """Aggregate the coverage matrix: per-kind category histograms plus
    the count of silent corruptions in detectable fault classes (the
    campaign's pass/fail signal)."""
    per_kind: dict = {}
    detectable = detectable_kinds(parity)
    sdc_detectable = 0
    for cell in cells:
        kind = cell["kind"]
        category = cell.get("category", "error")
        histogram = per_kind.setdefault(kind, {})
        histogram[category] = histogram.get(category, 0) + 1
        if category == SDC and kind in detectable:
            sdc_detectable += 1
    return {
        "per_kind": per_kind,
        "cells": len(cells),
        "errors": sum(1 for c in cells if c.get("status") != "ok"),
        "sdc_in_detectable_kinds": sdc_detectable,
    }


def run_campaign(
    *,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    config_names: Sequence[str] = DEFAULT_CONFIGS,
    kinds: Sequence[str] = FAULT_KINDS,
    seed: int = 0,
    per_kind: int = 2,
    parity: bool = False,
    jobs: int = 1,
    cache_dir=None,
    engine: Optional[str] = None,
    progress=None,
) -> dict:
    """Run the grid; returns the coverage matrix (canonical-JSON-able).

    ``engine`` is an execution choice, not a result axis: it is threaded
    to every injection but never serialized into the document, which
    must stay byte-identical across engines.
    """
    tasks = enumerate_cells(
        workloads, config_names, kinds, seed, per_kind, parity, engine
    )
    results: list = []
    if jobs > 1 and len(tasks) > 1:
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=jobs, initializer=_init_worker, initargs=(cache_dir,)
        ) as pool:
            for done, record in enumerate(pool.imap(_run_cell, tasks), start=1):
                results.append(record)
                if progress is not None:
                    progress(done, len(tasks), record)
    else:
        _init_worker(cache_dir)
        for done, task in enumerate(tasks, start=1):
            record = _run_cell(task)
            results.append(record)
            if progress is not None:
                progress(done, len(tasks), record)
    return {
        "seed": seed,
        "parity": parity,
        "per_kind_plans": per_kind,
        "workloads": list(workloads),
        "configs": list(config_names),
        "kinds": list(kinds),
        "cells": results,
        "summary": summarize(results, parity),
    }


# -- fuzz-corpus replay -------------------------------------------------------


def replay_corpus(
    corpus_dir,
    *,
    count: int = 5,
    kinds: Sequence[str] = FAULT_KINDS,
    seed: int = 0,
    per_kind: int = 1,
    parity: bool = False,
    engine: Optional[str] = None,
) -> dict:
    """Replay fuzz-corpus programs under a fault grid (the ``faults``
    oracle mode): compile each saved program as BITSPEC T=MAX, golden-run
    it, and classify every injection.  Detectable fault classes must not
    silently corrupt — checked by the caller via the summary."""
    from repro.core.pipeline import compile_binary
    from repro.fuzz.corpus import iter_corpus

    programs = []
    for path, program in iter_corpus(corpus_dir):
        programs.append((path.name, program))
        if len(programs) >= count:
            break

    cells: list = []
    config = CompilerConfig.bitspec("max")
    for name, program in programs:
        binary = compile_binary(
            program.source,
            config,
            profile_inputs=program.inputs_profile,
            strict=True,
        )
        golden_sim = binary.run(program.inputs_run, obs=True)
        profile = golden_profile(
            binary,
            golden_sim,
            recoveries=ooo_recoveries(binary, program.inputs_run),
        )
        for kind in kinds:
            for _ in range(per_kind):
                fault_seed = iteration_seed(seed, len(cells))
                plan = derive_plan(kind, fault_seed, profile, parity=parity)
                record = run_injection(
                    binary, program.inputs_run, plan, golden_sim, engine=engine
                )
                record.update(
                    {
                        "workload": f"corpus:{name}",
                        "config": config.name,
                        "status": "ok",
                        "golden_instructions": golden_sim.instructions,
                        "golden_misspeculations": golden_sim.misspeculations,
                    }
                )
                cells.append(record)
    return {
        "seed": seed,
        "parity": parity,
        "per_kind_plans": per_kind,
        "workloads": [f"corpus:{name}" for name, _ in programs],
        "configs": [config.name],
        "kinds": list(kinds),
        "cells": cells,
        "summary": summarize(cells, parity),
    }


# -- rendering ----------------------------------------------------------------


def to_canonical_json(matrix: dict) -> str:
    """Byte-stable serialization: sorted keys, no wall-clock anywhere."""
    return json.dumps(matrix, sort_keys=True, indent=2) + "\n"


def render_matrix(matrix: dict) -> str:
    """Human-readable coverage table for the CLI."""
    summary = matrix["summary"]
    width = max((len(k) for k in summary["per_kind"]), default=10)
    lines = [
        f"fault coverage matrix — seed {matrix['seed']}, "
        f"{summary['cells']} cells, parity={'on' if matrix['parity'] else 'off'}"
    ]
    header = (
        f"{'kind':<{width}}  {'recovered':>9}  {'unrecov':>8}  "
        f"{'masked':>6}  {'SDC':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for kind in matrix["kinds"]:
        histogram = summary["per_kind"].get(kind, {})
        lines.append(
            f"{kind:<{width}}  "
            f"{histogram.get(DETECTED_RECOVERED, 0):>9}  "
            f"{histogram.get(DETECTED_UNRECOVERABLE, 0):>8}  "
            f"{histogram.get(MASKED, 0):>6}  "
            f"{histogram.get(SDC, 0):>4}"
        )
    if summary["errors"]:
        lines.append(f"errors: {summary['errors']}")
    lines.append(
        "SDC in detectable kinds: "
        f"{summary['sdc_in_detectable_kinds']}"
    )
    return "\n".join(lines)
