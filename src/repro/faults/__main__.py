"""CLI for fault-injection campaigns: ``python -m repro.faults``.

Subcommands::

    campaign   sweep workloads × configs × fault kinds, emit the matrix
    replay     replay saved fuzz-corpus programs under a fault grid

Both print the human-readable coverage matrix, optionally write the
canonical JSON artifact (``--json``), and exit non-zero when any
injection from a *detectable* fault class ends in silent data corruption
(or when campaign cells error out) — the CI contract.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.faults.campaign import (
    DEFAULT_CONFIGS,
    DEFAULT_WORKLOADS,
    render_matrix,
    replay_corpus,
    run_campaign,
    to_canonical_json,
)
from repro.faults.plan import FAULT_KINDS


def _csv(text: str) -> list:
    return [item.strip() for item in text.split(",") if item.strip()]


def _kinds(text: str) -> list:
    if text == "all":
        return list(FAULT_KINDS)
    kinds = _csv(text)
    unknown = [k for k in kinds if k not in FAULT_KINDS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown fault kinds: {', '.join(unknown)} "
            f"(choose from {', '.join(FAULT_KINDS)})"
        )
    return kinds


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--seed", type=int, default=0, help="campaign seed")
    sub.add_argument(
        "--per-kind", type=int, default=2,
        help="plans derived per fault kind per cell group",
    )
    sub.add_argument(
        "--kinds", type=_kinds, default=list(FAULT_KINDS),
        help="comma-separated fault kinds, or 'all'",
    )
    sub.add_argument(
        "--parity", action="store_true",
        help="model parity protection on D$/I$ (corruption traps instead "
        "of propagating)",
    )
    sub.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the canonical coverage-matrix JSON here",
    )
    sub.add_argument(
        "--engine", choices=("legacy", "fast", "compiled", "ooo"), default=None,
        help="simulation engine for faulted runs (classification and the "
        "emitted JSON are engine-invariant across the in-order engines; "
        "the ooo_* recovery kinds only have a live trigger on --engine ooo)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault-injection campaigns",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    campaign = subs.add_parser(
        "campaign", help="sweep workloads × configs × fault kinds"
    )
    _add_common(campaign)
    campaign.add_argument(
        "--workloads", type=_csv, default=list(DEFAULT_WORKLOADS),
        help="comma-separated workload names",
    )
    campaign.add_argument(
        "--configs", type=_csv, default=list(DEFAULT_CONFIGS),
        help="comma-separated config aliases (baseline, bitspec-max, ...)",
    )
    campaign.add_argument("--jobs", type=int, default=1, help="worker processes")
    campaign.add_argument(
        "--cache-dir", type=Path, default=None,
        help="bench disk cache for the golden runs",
    )

    replay = subs.add_parser(
        "replay", help="replay fuzz-corpus programs under a fault grid"
    )
    _add_common(replay)
    replay.add_argument(
        "--corpus", type=Path, default=Path("tests") / "corpus",
        help="fuzz corpus directory",
    )
    replay.add_argument(
        "--count", type=int, default=5, help="programs to replay"
    )

    args = parser.parse_args(argv)

    if args.command == "campaign":
        def progress(done, total, record):
            label = f"{record['workload']}/{record['config']}/{record['kind']}"
            print(
                f"[{done}/{total}] {label}: {record.get('category', '?')}",
                file=sys.stderr,
            )

        matrix = run_campaign(
            workloads=args.workloads,
            config_names=args.configs,
            kinds=args.kinds,
            seed=args.seed,
            per_kind=args.per_kind,
            parity=args.parity,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            engine=args.engine,
            progress=progress,
        )
    else:
        matrix = replay_corpus(
            args.corpus,
            count=args.count,
            kinds=args.kinds,
            seed=args.seed,
            per_kind=args.per_kind,
            parity=args.parity,
            engine=args.engine,
        )

    print(render_matrix(matrix))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(to_canonical_json(matrix))
        print(f"matrix written to {args.json}", file=sys.stderr)

    summary = matrix["summary"]
    if summary["sdc_in_detectable_kinds"]:
        print(
            f"FAIL: {summary['sdc_in_detectable_kinds']} silent corruption(s) "
            "in detectable fault classes",
            file=sys.stderr,
        )
        return 1
    if summary["errors"]:
        print(f"FAIL: {summary['errors']} campaign cell(s) errored", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
