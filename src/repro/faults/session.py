"""Per-run fault-injection state machine, hooked into the machine engines.

A :class:`FaultSession` carries one :class:`~repro.faults.plan.FaultPlan`
through one simulation.  The machine engines consult it through three
entry points, each guarded by a single ``fx is not None`` test so the
no-fault hot path pays one local comparison per step and nothing else:

* :meth:`on_step` — called once per dynamic instruction *before* fetch;
  mutates registers/memory for state corruption, raises
  :class:`~repro.arch.machine.FaultTrap` for parity-detected corruption,
  and returns ``"skip"`` when the fetched instruction is corrupted into
  a bubble;
* :meth:`spec_outcome` — called at every speculative-op resolution with
  the natural misspeculation verdict; may suppress or spuriously assert
  it for the planned event;
* :meth:`redirect` — called when a misspeculation redirects; normally
  returns ``pc + Δ``, but the Δ-fault kinds override one redirect
  (dropped → fall through, misrouted → wrong skeleton slot).

The out-of-order engine adds a fourth entry point for its native fault
kinds (:data:`~repro.faults.plan.RECOVERY_KINDS`):

* :meth:`recovery_action` — called at every ROB recovery *after* the
  wrong-path window is modeled and *before* the flush; may corrupt the
  restored rename-map checkpoint, suppress the flush, or (with parity)
  trap on the corrupted checkpoint read.

Sessions whose plan is a recovery kind report ``ooo_native = True``; the
ooo engine runs them natively while degrading every other kind to the
predecoded stepper, and the in-order engines never call the hook at all
(recovery faults are structurally masked there — docs/resilience.md).

Both engines keep the fold-consistency invariant under speculation
faults: successful ops write back and failed ops redirect, whichever way
the session bent the verdict, so ``writebacks == execs − misspecs``
still holds and the fast path's batched counters stay self-consistent.
"""

from __future__ import annotations

from repro.arch.machine import FaultTrap
from repro.faults.plan import FaultPlan, RECOVERY_KINDS, SPEC_KINDS, STEP_KINDS

#: cycles one Razor replay costs (detect at latch, flush one stage, retry)
RAZOR_REPLAY_CYCLES = 2


class FaultSession:
    """Mutable injection state threaded through one machine run."""

    __slots__ = (
        "plan", "kind", "triggered", "detected_by_parity",
        "extra_cycles", "razor_recoveries", "ooo_native", "trap_mechanism",
        "_spec_seen", "_redirect_kind", "_step_armed", "_trigger_step",
        "_recovery_seen",
    )

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.kind = plan.kind
        self.triggered = False
        self.detected_by_parity = False
        self.extra_cycles = 0
        self.razor_recoveries = 0
        #: the ooo engine runs this session natively (recovery kinds only)
        self.ooo_native = plan.kind in RECOVERY_KINDS
        #: detection mechanism label for trap classification, set by
        #: :meth:`recovery_action` when an OoO hardware check fires
        self.trap_mechanism = None
        self._spec_seen = 0
        self._redirect_kind = None
        self._step_armed = plan.kind in STEP_KINDS
        self._trigger_step = plan.trigger_step
        self._recovery_seen = 0

    def on_step(self, step: int, pc: int, regs: list, memory) -> str | None:
        if not self._step_armed or step != self._trigger_step:
            return None
        self._step_armed = False
        self.triggered = True
        kind = self.kind
        plan = self.plan
        if kind == "rf_bit":
            regs[plan.reg] ^= 1 << plan.bit
            return None
        if kind == "mem_bit":
            if plan.parity:
                self.detected_by_parity = True
                raise FaultTrap(
                    f"dcache parity error at 0x{plan.addr:x} (step {step})"
                )
            byte = memory.load(plan.addr, 1)
            memory.store(plan.addr, byte ^ (1 << plan.bit), 1)
            return None
        if kind == "icache":
            if plan.parity:
                self.detected_by_parity = True
                raise FaultTrap(f"icache parity error at pc {pc} (step {step})")
            return "skip"
        # dts_timing: the Razor latch catches the late transition and
        # replays the stage — always detected, always recovered
        self.extra_cycles += RAZOR_REPLAY_CYCLES
        self.razor_recoveries += 1
        return None

    def spec_outcome(self, natural_miss: bool) -> bool:
        kind = self.kind
        if kind not in SPEC_KINDS:
            return natural_miss
        plan = self.plan
        if kind == "misspec_suppress":
            if natural_miss:
                self._spec_seen += 1
                if self._spec_seen == plan.nth_event:
                    self.triggered = True
                    return False
            return natural_miss
        if kind == "misspec_spurious":
            if not natural_miss:
                self._spec_seen += 1
                if self._spec_seen == plan.nth_event:
                    self.triggered = True
                    return True
            return natural_miss
        # delta_drop / delta_misroute: let the misspeculation stand but
        # sabotage its redirect
        if natural_miss:
            self._spec_seen += 1
            if self._spec_seen == plan.nth_event:
                self.triggered = True
                self._redirect_kind = kind
        return natural_miss

    def recovery_action(self, wrong_path_uops: int) -> str | None:
        """Consulted by the ooo engine at each ROB recovery event.

        Returns ``"ckpt_bit"`` (corrupt the restored rename map),
        ``"flush_drop"`` (suppress the flush — the engine's commit-time
        epoch check then traps), or ``None`` (recover normally).  With
        the parity knob on, a corrupted checkpoint read traps here.
        """
        if self.kind not in RECOVERY_KINDS:
            return None
        self._recovery_seen += 1
        if self._recovery_seen != self.plan.nth_event:
            return None
        self.triggered = True
        if self.kind == "ooo_ckpt_bit":
            if self.plan.parity:
                self.detected_by_parity = True
                self.trap_mechanism = "rename-parity"
                raise FaultTrap(
                    f"rename checkpoint parity error "
                    f"(entry r{self.plan.reg}, recovery "
                    f"{self._recovery_seen})"
                )
            return "ckpt_bit"
        # ooo_flush_drop: suppressing the flush of an empty wrong-path
        # window has no architectural effect — the injection is masked
        if wrong_path_uops <= 0:
            return None
        self.trap_mechanism = "rob-epoch-check"
        return "flush_drop"

    def redirect(self, pc: int, delta: int) -> int:
        kind = self._redirect_kind
        if kind is None:
            return pc + delta
        self._redirect_kind = None
        if kind == "delta_drop":
            # the redirect never happens; the pipeline falls through with
            # the (discarded) speculative result's writeback already gone
            return pc + 1
        return pc + delta + self.plan.offset  # delta_misroute
