"""Fault taxonomy and deterministic plan derivation.

A :class:`FaultPlan` fully describes one injection: what to break, where,
and when.  Plans are derived from a seed plus a :class:`GoldenProfile`
summarizing the fault-free reference run, so every parameter (trigger
step, register, bit, address, event ordinal) is a pure function of
``(kind, seed, golden)`` — the same seed always produces the same
injection, which is what makes campaign documents bit-reproducible.

Timing faults come in two trigger flavors:

* *step faults* (:data:`STEP_KINDS`) fire at one dynamic instruction
  ``trigger_step`` drawn uniformly from ``[1, golden.instructions]``;
* *speculation faults* (:data:`SPEC_KINDS`) fire at the ``nth_event``-th
  natural speculation outcome (misspeculation for suppress/Δ faults,
  in-slice success for spurious assertion).  When the golden run never
  produced the event the plan is *untriggered* and classifies as masked.

A third flavor targets the out-of-order engine's recovery machinery:
*recovery faults* (:data:`RECOVERY_KINDS`) fire at the ``nth_event``-th
ROB recovery of the golden ooo run (:class:`GoldenProfile.recoveries`).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

#: every fault kind the injection layer implements
FAULT_KINDS = (
    "rf_bit",            # flip one bit of one architectural register
    "mem_bit",           # flip one bit of one data byte (D$ line corruption)
    "icache",            # corrupt one fetched instruction (executes as a bubble)
    "misspec_suppress",  # slice-boundary carry-out signal fails to assert
    "misspec_spurious",  # signal asserts although the value fit the slice
    "dts_timing",        # Razor-style DTS timing error (detected + replayed)
    "delta_drop",        # misspec detected but the Δ redirect is dropped
    "delta_misroute",    # Δ redirect lands at the wrong skeleton slot
    "ooo_ckpt_bit",      # rename-map checkpoint restores with one entry corrupted
    "ooo_flush_drop",    # ROB recovery flush suppressed; wrong-path uops survive
)

#: kinds triggered at one dynamic step of the golden run
STEP_KINDS = frozenset({"rf_bit", "mem_bit", "icache", "dts_timing"})

#: kinds triggered at the nth natural speculation outcome
SPEC_KINDS = frozenset(
    {"misspec_suppress", "misspec_spurious", "delta_drop", "delta_misroute"}
)

#: kinds triggered at the nth ROB recovery event (branch mispredict, return
#: mispredict or bitwidth misspeculation) — live only on the ``ooo`` engine,
#: whose checkpoint/flush machinery they corrupt; the in-order engines have
#: no recovery events, so these plans are structurally masked there
RECOVERY_KINDS = frozenset({"ooo_ckpt_bit", "ooo_flush_drop"})

#: size of the misroute displacement pool (skeleton slots past the target)
_MISROUTE_SPAN = 4


def detectable_kinds(parity: bool) -> frozenset:
    """Kinds whose injections the hardware always *detects*.

    A detected fault may still be unrecoverable, but it must never be
    silent: the campaign treats any silent-data-corruption in these
    classes as a resilience bug.  ``misspec_spurious`` raises the misspec
    signal itself; ``dts_timing`` is Razor-detected by construction;
    ``ooo_flush_drop`` is caught by the ROB's commit-time epoch check
    whenever the suppressed flush had squashed any wrong-path uop; with
    the parity knob on, cache corruption traps at injection time and the
    rename-map checkpoint RAM is parity-protected.
    """
    kinds = {"misspec_spurious", "dts_timing", "ooo_flush_drop"}
    if parity:
        kinds |= {"mem_bit", "icache", "ooo_ckpt_bit"}
    return frozenset(kinds)


#: detectable classes under the default (no-parity) hardware model
DETECTABLE_KINDS = detectable_kinds(parity=False)


@dataclass(frozen=True)
class GoldenProfile:
    """What plan derivation needs to know about the fault-free run."""

    instructions: int
    misspeculations: int
    #: speculative ops that executed and stayed inside the slice
    spec_successes: int
    #: byte-address window for data corruption (globals, else stack top)
    mem_base: int
    mem_span: int
    #: ROB recovery events in the golden ``ooo``-engine run — the trigger
    #: pool for :data:`RECOVERY_KINDS`; engine-independent by construction
    #: (always measured on the ooo engine, whatever engine the campaign
    #: executes with) so plans serialize identically across engines
    recoveries: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """One fully determined injection (picklable, JSON-serializable)."""

    kind: str
    seed: int
    trigger_step: int = 0  # 1-based dynamic step, step kinds only
    nth_event: int = 0     # 1-based speculation-event ordinal, spec kinds only
    reg: int = 0
    bit: int = 0
    addr: int = 0
    parity: bool = False
    offset: int = 0        # misroute displacement added to Δ

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(**data)

    def describe(self) -> str:
        if self.kind == "rf_bit":
            where = f"r{self.reg} bit {self.bit} @ step {self.trigger_step}"
        elif self.kind == "mem_bit":
            where = f"[0x{self.addr:x}] bit {self.bit} @ step {self.trigger_step}"
        elif self.kind in STEP_KINDS:
            where = f"@ step {self.trigger_step}"
        elif self.kind == "delta_misroute":
            where = f"Δ+{self.offset} @ event {self.nth_event}"
        elif self.kind == "ooo_ckpt_bit":
            where = (
                f"rename[{self.reg}] bit {self.bit} "
                f"@ recovery {self.nth_event}"
            )
        elif self.kind == "ooo_flush_drop":
            where = f"@ recovery {self.nth_event}"
        else:
            where = f"@ event {self.nth_event}"
        tag = " +parity" if self.parity else ""
        return f"{self.kind} {where}{tag}"


def derive_plan(
    kind: str, seed: int, golden: GoldenProfile, *, parity: bool = False
) -> FaultPlan:
    """Derive one concrete plan from ``(kind, seed)`` and the golden run.

    Uses :class:`random.Random` (whose integer stream is stable across
    CPython versions) so the derivation is reproducible anywhere.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind: {kind!r}")
    rng = random.Random(seed)
    if kind in STEP_KINDS:
        step = 1 + rng.randrange(max(1, golden.instructions))
        if kind == "rf_bit":
            # r0-r12: the allocatable file; sp/lr corruption is modeled by
            # the address/control bits those registers feed anyway
            return FaultPlan(kind, seed, trigger_step=step,
                             reg=rng.randrange(13), bit=rng.randrange(32))
        if kind == "mem_bit":
            addr = golden.mem_base + rng.randrange(max(1, golden.mem_span))
            return FaultPlan(kind, seed, trigger_step=step,
                             addr=addr, bit=rng.randrange(8), parity=parity)
        if kind == "icache":
            return FaultPlan(kind, seed, trigger_step=step, parity=parity)
        return FaultPlan(kind, seed, trigger_step=step)  # dts_timing
    if kind in RECOVERY_KINDS:
        nth = 1 + (rng.randrange(golden.recoveries) if golden.recoveries else 0)
        if kind == "ooo_ckpt_bit":
            # one rename-map entry (any renamed architectural register,
            # r0-r15) restores with a flipped low bit of its physical tag
            return FaultPlan(kind, seed, nth_event=nth,
                             reg=rng.randrange(16), bit=rng.randrange(7),
                             parity=parity)
        return FaultPlan(kind, seed, nth_event=nth)  # ooo_flush_drop
    if kind == "misspec_spurious":
        pool = golden.spec_successes
    else:
        pool = golden.misspeculations
    # an empty pool leaves nth_event=1 unreachable: an untriggered (masked)
    # plan, reported as such rather than silently skipped
    nth = 1 + (rng.randrange(pool) if pool else 0)
    if kind == "delta_misroute":
        return FaultPlan(kind, seed, nth_event=nth,
                         offset=1 + rng.randrange(_MISROUTE_SPAN))
    return FaultPlan(kind, seed, nth_event=nth)
