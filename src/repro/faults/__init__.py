"""Deterministic fault injection and recovery auditing (resilience layer).

BITSPEC's safety story rests on the misspeculation detect-and-recover path
(slice carry-out → ``PC += Δ`` → handler re-extend, §3.3.4/§3.5).  This
package adversarially exercises it: seeded :class:`~repro.faults.plan.FaultPlan`\\ s
inject register-file bit flips, D$/I$ corruption (with an optional
parity-detect knob), suppressed / spurious misspeculation signals,
Razor-style DTS timing errors, and dropped / misrouted Δ redirects into
both machine engines; the campaign runner (:mod:`repro.faults.campaign`,
CLI ``python -m repro.faults``) classifies every injection as
*detected-and-recovered*, *detected-unrecoverable*, *masked* or
*silent-data-corruption* and attributes absorbed faults to the
world/region/handler that caught them.  :mod:`repro.faults.toolchain`
injects failures into the compile pipeline itself to exercise the
per-function BASELINE fallback path (mixed-world binaries).  See
``docs/resilience.md``.
"""

from repro.faults.plan import (  # noqa: F401
    DETECTABLE_KINDS,
    FAULT_KINDS,
    FaultPlan,
    GoldenProfile,
    SPEC_KINDS,
    STEP_KINDS,
    derive_plan,
)
from repro.faults.session import FaultSession  # noqa: F401
