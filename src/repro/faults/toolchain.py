"""Compile-time fault injection: force pipeline stages to fail on demand.

Complements the machine-level injection layer: instead of breaking the
*hardware*, break the *toolchain* — make the squeezer, SIR verifier,
speculative optimizer or layout throw for a chosen function — and audit
that :func:`repro.core.pipeline.compile_binary` degrades gracefully
(per-function BASELINE fallback with a structured diagnostic) instead of
aborting.

This module is imported by the pipeline, so it must not import anything
from :mod:`repro` (keeping ``core → faults.toolchain`` cycle-free).

Usage::

    with inject_compile_faults({("main", "squeeze")}):
        binary = compile_binary(source, config, ...)
    assert "main" in binary.linked.fallback_functions

Stages checked by the pipeline: ``squeeze``, ``verify``, ``layout``
(``layout`` is module-wide — use ``*`` as the function name).
"""

from __future__ import annotations

from contextlib import contextmanager

#: active injection set: {(function_name, stage)}; empty = disabled
_ACTIVE: set = set()


class InjectedCompileFault(Exception):
    """A deliberately injected toolchain failure (testing only)."""


@contextmanager
def inject_compile_faults(faults):
    """Arm ``{(function, stage)}`` injections for the enclosed compiles.

    Not reentrant-safe across threads (the pipeline itself is not either);
    nested contexts compose by union.
    """
    added = {tuple(f) for f in faults} - _ACTIVE
    _ACTIVE.update(added)
    try:
        yield
    finally:
        _ACTIVE.difference_update(added)


def maybe_fail(stage: str, function: str) -> None:
    """Raise :class:`InjectedCompileFault` if (function, stage) is armed."""
    if _ACTIVE and ((function, stage) in _ACTIVE or ("*", stage) in _ACTIVE):
        raise InjectedCompileFault(
            f"injected {stage} fault in {function}()"
        )


# -- seeded silent miscompiles (compiler bends) --------------------------------
#
# The injections above make a stage *throw*; the pipeline's graceful
# degradation then produces a correct (BASELINE-fallback) binary.  A bend is
# the nastier failure mode: the squeezer/layout produce *wrong speculative
# code without any diagnostic* — a transform bug the SIR verifier missed.
# Bends are the soundness canaries for the bounded equivalence checker
# (:mod:`repro.verify`): a bent BITSPEC binary must yield a concrete
# counterexample, never a "proved" verdict.
#
# A bend is a pure function of ``(kind, seed)``: candidates are collected in
# image order and ``seed`` picks one, so the same arming always breaks the
# same instruction.  Bends only apply to ARM_BS images (they model squeezer
# output bugs, and the BASELINE twin must stay the trusted reference).

#: recognized bend kinds, each modeling one squeezer/layout bug class
BEND_KINDS = (
    "bs-op-swap",       # squeezed add emitted as sub (wrong opcode select)
    "bs-trunc-drop",    # bs_trunc emitted as mov: silent narrowing, no check
    "sxt-drop",         # sign-extension emitted as zero-extension
    "imm-off-by-one",   # speculative-world immediate operand off by one
    "handler-misroute", # Δ-skeleton branch wired to another region's handler
)

#: active bend: ``(kind, function, seed)`` or None
_BEND = None


@contextmanager
def bend_compiler(kind: str, function: str = "*", seed: int = 0):
    """Arm one silent miscompile for the enclosed ARM_BS compiles.

    ``function`` restricts candidates to one function's instructions
    (``"*"`` = anywhere); ``seed`` deterministically picks among the
    candidate sites.  Nesting replaces the active bend for the inner scope.
    """
    global _BEND
    if kind not in BEND_KINDS:
        raise ValueError(f"unknown bend kind {kind!r}; expected {BEND_KINDS}")
    previous = _BEND
    _BEND = (kind, function, seed)
    try:
        yield
    finally:
        _BEND = previous


def maybe_bend_linked(linked) -> list:
    """Apply the armed bend to a just-linked ARM_BS image, in place.

    Returns a list of bend records (``{"kind", "function", "pc",
    "detail"}``), empty when disarmed, not applicable to this image, or no
    candidate site matched.  Called by ``repro.core.pipeline`` as the last
    link step.
    """
    if _BEND is None or linked.isa != "ARM_BS":
        return []
    kind, function, seed = _BEND
    owner = linked.owner
    world = linked.debug.world
    insts = linked.insts

    def in_scope(pc):
        return function == "*" or owner[pc] == function

    from repro.backend.mir import Imm, MachineInst

    applied = []
    if kind == "bs-op-swap":
        swap = {"bs_add": "bs_sub", "bs_sub": "bs_add"}
        sites = [
            pc for pc, inst in enumerate(insts)
            if inst.opcode in swap and in_scope(pc)
        ]
        if sites:
            pc = sites[seed % len(sites)]
            old = insts[pc].opcode
            insts[pc].opcode = swap[old]
            applied.append(_record(kind, owner[pc], pc, f"{old} -> {insts[pc].opcode}"))
    elif kind == "bs-trunc-drop":
        sites = [
            pc for pc, inst in enumerate(insts)
            if inst.opcode == "bs_trunc" and in_scope(pc)
        ]
        if sites:
            pc = sites[seed % len(sites)]
            old = insts[pc]
            bent = MachineInst(
                "mov", list(old.defs), list(old.uses), width=1, kind=old.kind
            )
            bent.comment = old.comment
            insts[pc] = bent
            applied.append(_record(kind, owner[pc], pc, "bs_trunc -> mov"))
    elif kind == "sxt-drop":
        sites = [
            pc for pc, inst in enumerate(insts)
            if inst.opcode == "sxt" and in_scope(pc)
        ]
        if sites:
            pc = sites[seed % len(sites)]
            insts[pc].opcode = "uxt"
            applied.append(_record(kind, owner[pc], pc, "sxt -> uxt"))
    elif kind == "imm-off-by-one":
        # speculative ops only: an off-by-one on e.g. a stack adjustment
        # would shift both worlds' frames identically and stay unobservable
        sites = [
            pc for pc, inst in enumerate(insts)
            if inst.opcode.startswith("bs_") and in_scope(pc)
            and inst.opcode != "bs_ldr"
            and any(type(u) is Imm for u in inst.uses)
        ]
        if sites:
            pc = sites[seed % len(sites)]
            inst = insts[pc]
            slot = next(i for i, u in enumerate(inst.uses) if type(u) is Imm)
            old = inst.uses[slot].value
            inst.uses[slot] = Imm(old + 1)
            applied.append(_record(kind, owner[pc], pc, f"#{old} -> #{old + 1}"))
    elif kind == "handler-misroute":
        handler_of = linked.debug.handler_of
        targets = sorted(set(handler_of.values()))
        sites = [pc for pc in sorted(handler_of) if in_scope(pc)]
        if len(targets) >= 2 and sites:
            pc = sites[seed % len(sites)]
            skeleton_pc = pc + linked.delta
            right = handler_of[pc]
            wrong = targets[(targets.index(right) + 1) % len(targets)]
            insts[skeleton_pc].target = wrong
            applied.append(
                _record(kind, owner[pc], pc, f"handler {right} -> {wrong}")
            )
    return applied


def _record(kind: str, function: str, pc: int, detail: str) -> dict:
    return {"kind": kind, "function": function, "pc": pc, "detail": detail}
