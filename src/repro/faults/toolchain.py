"""Compile-time fault injection: force pipeline stages to fail on demand.

Complements the machine-level injection layer: instead of breaking the
*hardware*, break the *toolchain* — make the squeezer, SIR verifier,
speculative optimizer or layout throw for a chosen function — and audit
that :func:`repro.core.pipeline.compile_binary` degrades gracefully
(per-function BASELINE fallback with a structured diagnostic) instead of
aborting.

This module is imported by the pipeline, so it must not import anything
from :mod:`repro` (keeping ``core → faults.toolchain`` cycle-free).

Usage::

    with inject_compile_faults({("main", "squeeze")}):
        binary = compile_binary(source, config, ...)
    assert "main" in binary.linked.fallback_functions

Stages checked by the pipeline: ``squeeze``, ``verify``, ``layout``
(``layout`` is module-wide — use ``*`` as the function name).
"""

from __future__ import annotations

from contextlib import contextmanager

#: active injection set: {(function_name, stage)}; empty = disabled
_ACTIVE: set = set()


class InjectedCompileFault(Exception):
    """A deliberately injected toolchain failure (testing only)."""


@contextmanager
def inject_compile_faults(faults):
    """Arm ``{(function, stage)}`` injections for the enclosed compiles.

    Not reentrant-safe across threads (the pipeline itself is not either);
    nested contexts compose by union.
    """
    added = {tuple(f) for f in faults} - _ACTIVE
    _ACTIVE.update(added)
    try:
        yield
    finally:
        _ACTIVE.difference_update(added)


def maybe_fail(stage: str, function: str) -> None:
    """Raise :class:`InjectedCompileFault` if (function, stage) is armed."""
    if _ACTIVE and ((function, stage) in _ACTIVE or ("*", stage) in _ACTIVE):
        raise InjectedCompileFault(
            f"injected {stage} fault in {function}()"
        )
