import sys

from repro.fuzz.driver import main

sys.exit(main())
