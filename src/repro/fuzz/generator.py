"""Seeded random MiniC program generator.

Produces closed, terminating, trap-free programs (plus profile/run input
pairs for their input globals) that stress exactly the shapes BITSPEC's
squeezer/handler machinery speculates on:

* constants and input values biased toward the 8-bit slice boundary
  (254/255/256/257) and the 16-bit boundary, so squeezed variables sit right
  where carry-out misspeculation triggers;
* mixed-width arithmetic (u8..s64 with casts) so the usual-arithmetic
  conversions and the squeezer's truncate/extend insertion get exercised;
* loop-carried scalars, global/local arrays, helper calls (inlining fodder
  for the expander) and value-dependent control flow;
* *profile ≠ run* input pairs, making compiled speculation actually
  misspeculate and take the Δ-handler path at run time.

Safety-by-construction rules (the oracles treat any trap as a finding, so
generated programs must never trap):

* every divisor is wrapped as ``(e | 1)``;
* every shift amount is a small constant or masked with ``& 7/15/31``;
* every array index is masked with ``& (size-1)`` (sizes are powers of two);
* loops have constant trip counts (or a bounding counter), nesting is
  capped, and the estimated dynamic cost is budgeted;
* local arrays are fully initialized before any read (stack reuse makes
  uninitialized reads implementation-defined across oracle levels);
* calls appear only at statement level, never nested inside expressions,
  so ternary arms stay pure (the AST reference evaluates both arms).

Determinism: all randomness flows from one ``random.Random(seed)``; the same
seed yields byte-identical source and inputs on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ForStmt,
    FuncDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    U32,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.frontend.printer import print_program

#: scalar types the generator draws from (pointers are never generated)
SCALAR_TYPES = (
    CType(8),
    CType(16),
    CType(32),
    CType(64),
    CType(8, signed=True),
    CType(16, signed=True),
    CType(32, signed=True),
    CType(64, signed=True),
)

#: array element types (64-bit elements included, at lower weight, via choice)
ARRAY_ELEM_TYPES = (
    CType(8),
    CType(16),
    CType(32),
    CType(8, signed=True),
    CType(16, signed=True),
    CType(32, signed=True),
)

#: slice-boundary-biased constant pool (§3.5: misspeculation fires on
#: carry-out at the 8-bit boundary, and on wide loaded values)
BOUNDARY_VALUES = (
    0, 1, 2, 3, 7, 8, 15, 16, 31, 63, 100,
    126, 127, 128, 129, 200, 253, 254, 255, 256, 257, 300,
    1000, 32767, 32768, 65535, 65536, 65537,
    (1 << 31) - 1, 1 << 31, (1 << 32) - 1,
)

#: extra values for 64-bit contexts
WIDE_VALUES = ((1 << 32), (1 << 32) + 1, (1 << 48) - 1, (1 << 63), (1 << 64) - 1)

COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
ARITH_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%")
ASSIGN_OPS = ("=", "+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>=", "/=", "%=")
#: the 32-bit machine has no 64-bit divide or variable-amount 64-bit shift,
#: so compound ops that would execute at a 64-bit target type are restricted
ASSIGN_OPS_64 = ("=", "+=", "-=", "*=", "&=", "|=", "^=")

#: ≤32-bit types used to clamp div/rem/shift operands below pair width
CLAMP_TYPES = (
    CType(32),
    CType(32, signed=True),
    CType(16),
    CType(16, signed=True),
    CType(8),
    CType(8, signed=True),
)


def _mask(ctype: CType) -> int:
    return (1 << ctype.bits) - 1


@dataclass
class FuzzProgram:
    """One fuzz case: source text plus its profile/run input assignments."""

    source: str
    inputs_profile: dict = field(default_factory=dict)
    inputs_run: dict = field(default_factory=dict)
    seed: Optional[int] = None
    expander_enabled: bool = True
    note: str = ""


@dataclass
class GenConfig:
    """Size/shape knobs of the generator."""

    max_top_stmts: int = 9
    max_body_stmts: int = 5
    max_expr_depth: int = 3
    max_block_depth: int = 3
    max_loop_depth: int = 2
    max_helpers: int = 2
    #: cap on the product of enclosing trip counts (dynamic-cost budget)
    max_dynamic_cost: int = 6000


@dataclass
class _Var:
    name: str
    ctype: CType
    protected: bool = False  # loop counters may not be reassigned


@dataclass
class _Array:
    name: str
    elem: CType
    size: int  # power of two


class ProgramGenerator:
    """Generates one :class:`FuzzProgram` per (seed, config)."""

    def __init__(self, seed: int, config: Optional[GenConfig] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.config = config or GenConfig()
        self._name_counter = 0
        # visible state while generating a function body
        self.scopes: list[list[_Var]] = []
        self.arrays: list[_Array] = []
        self.global_scalars: list[_Var] = []
        self.callable_helpers: list[FuncDecl] = []
        self.loop_depth = 0
        self.block_depth = 0
        self.cost_factor = 1
        self.total_cost = 0

    # -- small helpers -------------------------------------------------------

    def fresh(self, hint: str) -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    def pick_type(self) -> CType:
        return self.rng.choice(SCALAR_TYPES)

    def visible_vars(self) -> list:
        return [v for scope in self.scopes for v in scope]

    def constant(self, wide_ok: bool = False) -> NumExpr:
        r = self.rng.random()
        if r < 0.55:
            pool = BOUNDARY_VALUES + (WIDE_VALUES if wide_ok else ())
            return NumExpr(self.rng.choice(pool))
        if r < 0.85:
            return NumExpr(self.rng.randrange(0, 512))
        bits = self.rng.choice((8, 16, 32))
        return NumExpr(self.rng.randrange(0, 1 << bits))

    # -- expressions ---------------------------------------------------------

    def gen_expr(self, depth: int) -> Expr:
        """A trap-free expression tree (never contains calls)."""
        variables = self.visible_vars() + self.global_scalars
        if depth <= 0 or self.rng.random() < 0.22:
            # leaf: constant / scalar / array element
            r = self.rng.random()
            if r < 0.40 or not variables:
                if r < 0.10 and self.arrays and depth > 0:
                    return self.gen_index()
                return self.constant(wide_ok=self.rng.random() < 0.1)
            if r < 0.75 or not self.arrays:
                return VarExpr(self.rng.choice(variables).name)
            return self.gen_index()
        r = self.rng.random()
        if r < 0.55:
            op = self.rng.choice(ARITH_OPS)
            lhs = self.gen_expr(depth - 1)
            rhs = self.gen_expr(depth - 1)
            if op in ("/", "%"):
                # Clamp both sides below pair width (no 64-bit divider) and
                # force the divisor odd (trunc keeps the low bit, so the
                # guard survives any later conversion).
                lhs = self.clamp_narrow(lhs)
                rhs = BinaryExpr("|", self.clamp_narrow(rhs), NumExpr(1))
            elif op in ("<<", ">>"):
                # Shift result/width follow the lhs type; clamp it so the
                # machine never sees a variable-amount or arithmetic 64-bit
                # shift.
                lhs = self.clamp_narrow(lhs)
                rhs = self.gen_shift_amount(rhs)
            return BinaryExpr(op, lhs, rhs)
        if r < 0.68:
            return BinaryExpr(
                self.rng.choice(COMPARE_OPS),
                self.gen_expr(depth - 1),
                self.gen_expr(depth - 1),
            )
        if r < 0.80:
            return CastExpr(self.pick_type(), self.gen_expr(depth - 1))
        if r < 0.90:
            return UnaryExpr(self.rng.choice(("-", "~", "!")), self.gen_expr(depth - 1))
        return CondExpr(
            self.gen_condition(depth - 1),
            self.gen_expr(depth - 1),
            self.gen_expr(depth - 1),
        )

    def clamp_narrow(self, expr: Expr) -> Expr:
        return CastExpr(self.rng.choice(CLAMP_TYPES), expr)

    def gen_shift_amount(self, expr: Expr) -> Expr:
        if self.rng.random() < 0.5:
            return NumExpr(self.rng.randrange(0, 8))
        mask = self.rng.choice((7, 15, 31))
        return BinaryExpr("&", expr, NumExpr(mask))

    def gen_index(self) -> IndexExpr:
        array = self.rng.choice(self.arrays)
        return IndexExpr(array.name, self.gen_masked_index(array))

    def gen_masked_index(self, array: _Array) -> Expr:
        if self.rng.random() < 0.35:
            return NumExpr(self.rng.randrange(0, array.size))
        return BinaryExpr("&", self.gen_expr(1), NumExpr(array.size - 1))

    def gen_condition(self, depth: int) -> Expr:
        r = self.rng.random()
        if depth > 0 and r < 0.20:
            return BinaryExpr(
                self.rng.choice(("&&", "||")),
                self.gen_condition(depth - 1),
                self.gen_condition(depth - 1),
            )
        if depth > 0 and r < 0.28:
            return UnaryExpr("!", self.gen_condition(depth - 1))
        return BinaryExpr(
            self.rng.choice(COMPARE_OPS),
            self.gen_expr(max(depth - 1, 0)),
            self.gen_expr(max(depth - 1, 0)),
        )

    # -- statements ----------------------------------------------------------

    def gen_body(self, budget: int, *, allow_break: bool, allow_continue: bool) -> list:
        self.scopes.append([])
        self.block_depth += 1
        stmts: list[Stmt] = []
        count = self.rng.randrange(1, budget + 1)
        for _ in range(count):
            stmts.append(
                self.gen_stmt(allow_break=allow_break, allow_continue=allow_continue)
            )
        self.block_depth -= 1
        self.scopes.pop()
        return stmts

    def gen_stmt(self, *, allow_break: bool, allow_continue: bool) -> Stmt:
        roll = self.rng.random()
        nested_ok = self.block_depth < self.config.max_block_depth
        loop_ok = (
            nested_ok
            and self.loop_depth < self.config.max_loop_depth
            and self.total_cost < self.config.max_dynamic_cost
        )
        if roll < 0.22:
            return self.gen_decl()
        if roll < 0.46:
            return self.gen_scalar_assign()
        if roll < 0.58 and self.arrays:
            return self.gen_array_assign()
        if roll < 0.68 and nested_ok:
            return self.gen_if(allow_break=allow_break, allow_continue=allow_continue)
        if roll < 0.82 and loop_ok:
            return self.gen_loop()
        if roll < 0.88 and allow_break and self.rng.random() < 0.5:
            return IfStmt(self.gen_condition(1), [BreakStmt()], [])
        if roll < 0.90 and allow_continue:
            return IfStmt(self.gen_condition(1), [ContinueStmt()], [])
        return OutStmt(CastExpr(U32, self.gen_expr(self.config.max_expr_depth)))

    def gen_decl(self) -> Stmt:
        ctype = self.pick_type()
        name = self.fresh("v")
        init = self.gen_expr(self.rng.randrange(0, self.config.max_expr_depth + 1))
        self.scopes[-1].append(_Var(name, ctype))
        return DeclStmt(ctype, name, None, init)

    def _assignable(self) -> list:
        return [v for v in self.visible_vars() + self.global_scalars if not v.protected]

    def gen_scalar_assign(self) -> Stmt:
        targets = self._assignable()
        if not targets:
            return self.gen_decl()
        var = self.rng.choice(targets)
        op = self.rng.choice(ASSIGN_OPS if var.ctype.bits < 64 else ASSIGN_OPS_64)
        if op == "=" and self.callable_helpers and self.rng.random() < 0.45:
            value: Expr = self.gen_call()
        else:
            value = self.gen_expr(self.config.max_expr_depth)
            if op in ("/=", "%="):
                value = BinaryExpr("|", value, NumExpr(1))
            elif op in ("<<=", ">>="):
                value = self.gen_shift_amount(value)
        return AssignStmt(VarExpr(var.name), op, value)

    def gen_array_assign(self) -> Stmt:
        array = self.rng.choice(self.arrays)
        index = self.gen_masked_index(array)
        op = self.rng.choice(("=", "=", "+=", "-=", "^=", "|=", "&="))
        return AssignStmt(
            IndexExpr(array.name, index), op, self.gen_expr(self.config.max_expr_depth)
        )

    def gen_call(self) -> CallExpr:
        helper = self.rng.choice(self.callable_helpers)
        args = [self.gen_expr(2) for _ in helper.params]
        return CallExpr(helper.name, args)

    def gen_if(self, *, allow_break: bool, allow_continue: bool) -> IfStmt:
        cond = self.gen_condition(2)
        then_body = self.gen_body(
            3, allow_break=allow_break, allow_continue=allow_continue
        )
        else_body = []
        if self.rng.random() < 0.45:
            else_body = self.gen_body(
                2, allow_break=allow_break, allow_continue=allow_continue
            )
        return IfStmt(cond, then_body, else_body)

    def gen_loop(self) -> Stmt:
        trips = self.rng.randrange(1, 13)
        saved_factor = self.cost_factor
        self.cost_factor *= trips
        self.total_cost += self.cost_factor
        self.loop_depth += 1
        kind = self.rng.random()
        if kind < 0.62:
            stmt = self._gen_for(trips)
        elif kind < 0.84:
            stmt = self._gen_while(trips)
        else:
            stmt = self._gen_do_while(trips)
        self.loop_depth -= 1
        self.cost_factor = saved_factor
        return stmt

    def _gen_for(self, trips: int) -> ForStmt:
        ctype = self.rng.choice((CType(8), CType(16), CType(32), CType(32, True)))
        name = self.fresh("i")
        counter = _Var(name, ctype, protected=True)
        self.scopes.append([counter])
        body = self.gen_body(
            self.config.max_body_stmts, allow_break=True, allow_continue=True
        )
        self.scopes.pop()
        step = self.rng.choice((1, 1, 1, 2, 3))
        return ForStmt(
            init=DeclStmt(ctype, name, None, NumExpr(0)),
            cond=BinaryExpr("<", VarExpr(name), NumExpr(trips * step)),
            step=AssignStmt(VarExpr(name), "+=", NumExpr(step)),
            body=body,
        )

    def _gen_while(self, trips: int) -> Stmt:
        # Bounded by a guard counter; `continue` is banned inside (it would
        # skip the counter increment and diverge).
        name = self.fresh("w")
        counter = _Var(name, U32, protected=True)
        self.scopes.append([counter])
        body = self.gen_body(
            self.config.max_body_stmts, allow_break=True, allow_continue=False
        )
        self.scopes.pop()
        cond: Expr = BinaryExpr("<", VarExpr(name), NumExpr(trips))
        if self.rng.random() < 0.4:
            cond = BinaryExpr("&&", cond, self.gen_condition(1))
        body.append(AssignStmt(VarExpr(name), "+=", NumExpr(1)))
        decl = DeclStmt(U32, name, None, NumExpr(0))
        return IfStmt(NumExpr(1), [decl, WhileStmt(cond, body)], [])

    def _gen_do_while(self, trips: int) -> Stmt:
        name = self.fresh("w")
        counter = _Var(name, U32, protected=True)
        self.scopes.append([counter])
        body = self.gen_body(
            self.config.max_body_stmts, allow_break=True, allow_continue=False
        )
        self.scopes.pop()
        body.append(AssignStmt(VarExpr(name), "+=", NumExpr(1)))
        cond: Expr = BinaryExpr("<", VarExpr(name), NumExpr(trips))
        decl = DeclStmt(U32, name, None, NumExpr(0))
        return IfStmt(NumExpr(1), [decl, DoWhileStmt(body, cond)], [])

    # -- top level -----------------------------------------------------------

    def gen_helper(self) -> FuncDecl:
        name = self.fresh("f")
        params = [
            Param(self.pick_type(), self.fresh("p"))
            for _ in range(self.rng.randrange(1, 4))
        ]
        ret_type = self.pick_type()
        self.scopes = [[_Var(p.name, p.ctype) for p in params]]
        self.loop_depth = self.config.max_loop_depth - 1  # at most one loop
        self.block_depth = 1
        body = self.gen_body(3, allow_break=False, allow_continue=False)
        body.append(ReturnStmt(self.gen_expr(self.config.max_expr_depth)))
        self.scopes = []
        self.loop_depth = 0
        self.block_depth = 0
        return FuncDecl(ret_type, name, params, body)

    def _input_values(self, elem: CType, count: int, *, wide: bool) -> list:
        """Input vector biased narrow (profile) or boundary-crossing (run)."""
        values = []
        for _ in range(count):
            if wide and self.rng.random() < 0.55:
                values.append(self.rng.choice(BOUNDARY_VALUES) & _mask(elem))
            elif wide and self.rng.random() < 0.4:
                values.append(self.rng.randrange(0, 1 << min(elem.bits, 32)))
            else:
                values.append(self.rng.randrange(0, min(200, (1 << elem.bits) - 1)))
        return values

    def generate(self) -> FuzzProgram:
        program = Program()
        inputs_profile: dict = {}
        inputs_run: dict = {}

        # Input globals: values come from the profile/run input dicts.
        # `run` inputs agree with `profile` ones ~40% of the time; otherwise
        # they cross slice boundaries, forcing compiled speculation to
        # actually misspeculate.
        inputs_agree = self.rng.random() < 0.4
        for _ in range(self.rng.randrange(1, 3)):
            name = self.fresh("in")
            elem = self.rng.choice(ARRAY_ELEM_TYPES)
            size = self.rng.choice((8, 16, 32))
            program.globals.append(GlobalDecl(elem, name, size, []))
            self.arrays.append(_Array(name, elem, size))
            inputs_profile[name] = self._input_values(elem, size, wide=False)
            inputs_run[name] = (
                list(inputs_profile[name])
                if inputs_agree
                else self._input_values(elem, size, wide=True)
            )
        for _ in range(self.rng.randrange(1, 3)):
            name = self.fresh("k")
            ctype = self.rng.choice(ARRAY_ELEM_TYPES)
            program.globals.append(GlobalDecl(ctype, name, 1, []))
            self.global_scalars.append(_Var(name, ctype))
            (profile_value,) = self._input_values(ctype, 1, wide=False)
            inputs_profile[name] = profile_value
            inputs_run[name] = (
                profile_value
                if inputs_agree
                else self._input_values(ctype, 1, wide=True)[0]
            )

        # State globals with source-level initializers.
        for _ in range(self.rng.randrange(1, 3)):
            name = self.fresh("g")
            if self.rng.random() < 0.5:
                ctype = self.rng.choice(SCALAR_TYPES)
                init = [self.constant().value & _mask(ctype)]
                program.globals.append(GlobalDecl(ctype, name, 1, init))
                self.global_scalars.append(_Var(name, ctype))
            else:
                elem = self.rng.choice(ARRAY_ELEM_TYPES)
                size = self.rng.choice((8, 16))
                init = [self.constant().value & _mask(elem) for _ in range(size)]
                program.globals.append(GlobalDecl(elem, name, size, init))
                self.arrays.append(_Array(name, elem, size))

        for _ in range(self.rng.randrange(0, self.config.max_helpers + 1)):
            helper = self.gen_helper()
            program.functions.append(helper)
            self.callable_helpers.append(helper)

        # main: local arrays (filled before use), then a statement soup,
        # then out() every piece of observable state.
        self.scopes = [[]]
        main_body: list[Stmt] = []
        local_arrays: list[_Array] = []
        for _ in range(self.rng.randrange(0, 2)):
            name = self.fresh("a")
            elem = self.rng.choice(ARRAY_ELEM_TYPES)
            size = self.rng.choice((8, 16))
            idx = self.fresh("i")
            main_body.append(DeclStmt(elem, name, size, None))
            main_body.append(
                ForStmt(
                    init=DeclStmt(U32, idx, None, NumExpr(0)),
                    cond=BinaryExpr("<", VarExpr(idx), NumExpr(size)),
                    step=AssignStmt(VarExpr(idx), "+=", NumExpr(1)),
                    body=[
                        AssignStmt(
                            IndexExpr(name, VarExpr(idx)),
                            "=",
                            self.gen_expr(2),
                        )
                    ],
                )
            )
            self.arrays.append(_Array(name, elem, size))
            local_arrays.append(self.arrays[-1])

        self.block_depth = 1
        min_top = min(4, self.config.max_top_stmts)
        for _ in range(self.rng.randrange(min_top, self.config.max_top_stmts + 1)):
            main_body.append(self.gen_stmt(allow_break=False, allow_continue=False))

        # Observability epilogue: fold all mutable state into out() calls.
        for var in self.visible_vars() + self.global_scalars:
            main_body.append(OutStmt(CastExpr(U32, VarExpr(var.name))))
        for array in self.arrays:
            idx = self.fresh("o")
            acc = self.fresh("h")
            main_body.append(DeclStmt(U32, acc, None, NumExpr(0)))
            main_body.append(
                ForStmt(
                    init=DeclStmt(U32, idx, None, NumExpr(0)),
                    cond=BinaryExpr("<", VarExpr(idx), NumExpr(array.size)),
                    step=AssignStmt(VarExpr(idx), "+=", NumExpr(1)),
                    body=[
                        AssignStmt(
                            VarExpr(acc),
                            "=",
                            BinaryExpr(
                                "+",
                                BinaryExpr(
                                    "*", VarExpr(acc), NumExpr(31)
                                ),
                                CastExpr(U32, IndexExpr(array.name, VarExpr(idx))),
                            ),
                        )
                    ],
                )
            )
            main_body.append(OutStmt(VarExpr(acc)))

        program.functions.append(FuncDecl(None, "main", [], main_body))
        return FuzzProgram(
            source=print_program(program),
            inputs_profile=inputs_profile,
            inputs_run=inputs_run,
            seed=self.seed,
            expander_enabled=self.rng.random() < 0.8,
            note="generated" + ("" if inputs_agree else " (profile != run inputs)"),
        )


def generate_program(seed: int, config: Optional[GenConfig] = None) -> FuzzProgram:
    """Generate the deterministic fuzz case for ``seed``."""
    return ProgramGenerator(seed, config).generate()
