"""Parallel differential-fuzzing driver and CLI.

``python -m repro.fuzz --seed N --iters K --jobs J`` generates K programs
from deterministic per-iteration seeds, pushes each through the full oracle
stack (:func:`repro.fuzz.oracles.run_oracles`) in a worker pool, shrinks
any failure, and writes a replayable artifact to the corpus directory.

Per-iteration seeds are derived purely from ``(base_seed, index)``, so the
parent process can regenerate any worker's failing program without shipping
ASTs across the process boundary — workers return small picklable
summaries only.

``--verify`` folds ``repro.verify`` into the campaign loop: every
oracle-clean program is additionally pushed through bounded symbolic
equivalence checking, and any counterexample is concretized into the same
corpus directory as the fuzz failures (``verify-*.json``) — one corpus
economy, and tier-1 replays the new entries like any other artifact.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.fuzz.corpus import save_counterexample, save_program
from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import run_oracles
from repro.fuzz.shrink import Shrinker

#: default artifact directory, relative to the repo root
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


def iteration_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed per-iteration seed (splitmix64 step)."""
    x = (base_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & (2**64 - 1)
    return x ^ (x >> 31)


@dataclass
class IterationResult:
    """Picklable per-iteration outcome returned by workers."""

    index: int
    seed: int
    ok: bool
    misspeculations: int = 0
    levels: int = 0
    summary: str = ""
    counterexamples: int = 0  # symbolic counterexamples (--verify mode)


def _verify_counterexamples(program, k: int) -> list:
    """Bounded symbolic verification of one program; counterexample verdicts.

    The fuzz oracles only ever test the concrete input vectors the
    generator drew; verification covers *all* inputs up to width ``k``, so
    it can convict programs the oracles wave through.
    """
    from repro.verify.checker import list_targets, verify_function

    found = []
    for function in list_targets(program.source):
        verdict = verify_function(
            program.source,
            function,
            inputs_profile=program.inputs_profile,
            inputs_run=program.inputs_run,
            expander_enabled=program.expander_enabled,
            name=f"seed{program.seed}-{function}",
            k=k,
        )
        if verdict["verdict"] == "counterexample":
            found.append(verdict)
    return found


def _run_one(task: tuple) -> IterationResult:
    index, seed, verify_k = task
    program = generate_program(seed)
    report = run_oracles(program)
    counterexamples = 0
    if verify_k and report.ok:
        counterexamples = len(_verify_counterexamples(program, verify_k))
    return IterationResult(
        index=index,
        seed=seed,
        ok=report.ok,
        misspeculations=sum(report.misspeculations.values()),
        levels=len(report.outputs),
        summary=report.summary(),
        counterexamples=counterexamples,
    )


def _same_failure(signature: tuple):
    """Predicate: candidate reproduces the *same class* of failure.

    Bare ``not report.ok`` lets the shrinker wander onto unrelated failures —
    e.g. a loop condition simplified to ``1`` turns the bug under
    investigation into a step-limit timeout that also "fails".
    """

    def predicate(candidate) -> bool:
        return run_oracles(candidate).signature() == signature

    return predicate


def _handle_failure(
    result: IterationResult, corpus_dir: Path, shrink: bool
) -> Path:
    """Regenerate the failing program in-process, shrink it, save artifact."""
    program = generate_program(result.seed)
    if shrink:
        shrinker = Shrinker(_same_failure(run_oracles(program).signature()))
        program = shrinker.shrink(program)
        print(
            f"  shrunk {shrinker.stats.initial_lines} -> "
            f"{shrinker.stats.final_lines} lines "
            f"({shrinker.stats.predicate_calls} oracle runs)",
            flush=True,
        )
    name = f"failure-seed{result.seed}"
    return save_program(program, corpus_dir / f"{name}.json", name=name)


def fuzz(
    base_seed: int,
    iters: int,
    jobs: int = 1,
    *,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    verbose: bool = True,
    verify_k: int = 0,
) -> int:
    """Run the campaign; returns the number of failing iterations.

    ``verify_k > 0`` additionally pushes every oracle-clean program through
    bounded symbolic verification at that input width; counterexamples
    count as failures and are concretized into ``corpus_dir``.
    """
    corpus_dir = Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS_DIR
    tasks = [(i, iteration_seed(base_seed, i), verify_k) for i in range(iters)]
    started = time.monotonic()
    failures: list = []
    convicted: list = []
    total_misspecs = 0

    def bookkeep(done: int, result: IterationResult) -> None:
        nonlocal total_misspecs
        total_misspecs += result.misspeculations
        if not result.ok:
            failures.append(result)
            print(
                f"[{done}/{iters}] FAIL seed={result.seed}: {result.summary}",
                flush=True,
            )
        elif result.counterexamples:
            convicted.append(result)
            print(
                f"[{done}/{iters}] COUNTEREXAMPLE seed={result.seed}: "
                f"{result.counterexamples} function(s) refuted at k={verify_k}",
                flush=True,
            )
        elif verbose and done % 10 == 0:
            print(f"[{done}/{iters}] ok", flush=True)

    if jobs > 1:
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.imap_unordered(_run_one, tasks, chunksize=1)
            for done, result in enumerate(results, start=1):
                bookkeep(done, result)
    else:
        for done, task in enumerate(tasks, start=1):
            bookkeep(done, _run_one(task))

    elapsed = time.monotonic() - started
    rate = iters / elapsed if elapsed > 0 else float("inf")
    verified = f", {len(convicted)} symbolic counterexamples" if verify_k else ""
    print(
        f"{iters} programs, {len(failures)} failures{verified}, "
        f"{total_misspecs} misspeculations observed, "
        f"{elapsed:.1f}s ({rate:.2f} prog/s)",
        flush=True,
    )

    for failure in failures:
        path = _handle_failure(failure, corpus_dir, shrink)
        print(f"  artifact: {path}", flush=True)
    for result in convicted:
        # regenerate in-process (same economy as failures) and concretize
        program = generate_program(result.seed)
        for verdict in _verify_counterexamples(program, verify_k):
            path = save_counterexample(verdict, corpus_dir)
            print(f"  artifact: {path}", flush=True)
    return len(failures) + len(convicted)


def replay(path: Path) -> int:
    """Re-run one saved artifact through the oracle stack."""
    from repro.fuzz.corpus import load_program

    try:
        program = load_program(path)
    except (OSError, ValueError) as exc:
        print(f"cannot load artifact {path}: {exc}", file=sys.stderr)
        return 2
    report = run_oracles(program)
    print(f"{path}: {report.summary()}")
    if report.error:
        print(report.error)
    return 0 if report.ok else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzer: random MiniC programs vs. the "
        "reference evaluator, IR interpreter, and machine simulator across "
        "BASELINE/BITSPEC/THUMB configurations.",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign base seed")
    parser.add_argument("--iters", type=int, default=100, help="programs to run")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        help=f"artifact directory (default: {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="save failing programs unshrunk",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="push every oracle-clean program through bounded symbolic "
        "verification (repro.verify); counterexamples are concretized "
        "into the corpus directory as verify-*.json",
    )
    parser.add_argument(
        "--verify-k",
        type=int,
        default=6,
        help="input bit-width bound for --verify (default 6)",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="ARTIFACT",
        help="re-run one saved corpus artifact instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        return replay(args.replay)

    failures = fuzz(
        args.seed,
        args.iters,
        jobs=max(args.jobs, 1),
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        verify_k=args.verify_k if args.verify else 0,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
