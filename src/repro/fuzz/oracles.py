"""The differential oracle stack.

Runs one :class:`FuzzProgram` through every semantic level of the system and
checks that all observable outputs (the ``out()`` stream) agree:

======================  =====================================================
level                   what executes
======================  =====================================================
``ref``                 Python evaluation of the parsed AST (no IR at all)
``interp-ir``           ``repro.interp`` on the front-end IR (no passes)
``interp-squeezed-T``   ``repro.interp`` on the squeezed SIR, T ∈ {max,avg,min}
``machine-baseline``    compiled ARM binary on ``repro.arch.machine``
``machine-bitspec-T``   compiled ARM_BS binary, T ∈ {max,avg,min}
``machine-thumb``       compiled THUMB binary
``engines``             the T=MAX binary on the legacy, compiled and ooo engines
======================  =====================================================

The ``engines`` level is the fuzzing arm of the four-engine contract
(docs/engines.md): the T=MAX binary is re-run on the legacy interpreter
and the compiled template JIT, and every ``SimResult`` field —
aggregates, energy counters, class counts, final memory image — must
equal the fast path's, not just the ``out()`` stream.  The out-of-order
engine then re-runs the same binary and its *committed view*
(:func:`repro.arch.machine.committed_view` — traps, out stream, memory,
committed instruction/misspeculation counts) must match; its cycles and
energy counters are its own timing model's and are deliberately not
compared.

BITSPEC levels profile on ``inputs_profile`` and run on ``inputs_run`` —
when those differ, compiled speculation genuinely misspeculates and the
Δ-handler machinery is on the semantic path being checked.

On top of output agreement, per-run invariants are asserted:

* IR verifier after every non-speculative pipeline stage, SIR verifier after
  every speculative one (via ``compile_binary``'s ``stage_hook``);
* energy-breakdown components are non-negative and sum to the total, and
  DTS (time-squeezed) energy never exceeds nominal energy;
* the baseline interpreter run never misspeculates;
* under T=MAX with profile == run inputs, misspeculation count is exactly 0
  (Theorem 3.2's "speculation holds on the profiled path");
* under T=MAX the run is observability-enabled and the attribution totals
  (:func:`repro.obs.attribution.check_conservation`) must re-sum to the
  ``SimResult`` aggregates integer-exactly.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.dts import DTSModel
from repro.core.pipeline import CompilerConfig, compile_binary, set_global_inputs
from repro.frontend.codegen import compile_program
from repro.frontend.parser import parse
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.reference import Reference
from repro.interp.interpreter import Interpreter
from repro.ir.function import Module
from repro.ir.verifier import verify_module
from repro.passes.expander import ExpanderConfig
from repro.sir.verifier import verify_sir_module

HEURISTICS = ("max", "avg", "min")

#: stages after which speculative instructions may exist (SIR verifier)
_SIR_STAGES = frozenset({"squeeze", "speculative-opts", "cleanup"})

#: every level an :class:`OracleReport` for a passing program contains
ALL_LEVELS = (
    "ref",
    "interp-ir",
    "interp-squeezed-max",
    "interp-squeezed-avg",
    "interp-squeezed-min",
    "machine-baseline",
    "machine-bitspec-max",
    "machine-bitspec-avg",
    "machine-bitspec-min",
    "machine-thumb",
    "engines",
)

#: step budget for interpreter-level runs (generated programs are tiny)
STEP_LIMIT = 20_000_000

#: the AST reference runs first and gates the compiled levels, so its budget
#: is kept small — a shrink candidate mutated into an unbounded loop must
#: fail fast instead of stalling the whole campaign
REF_STEP_LIMIT = 2_000_000


@dataclass
class OracleReport:
    """Outcome of running the full oracle stack over one program."""

    program: FuzzProgram
    outputs: dict = field(default_factory=dict)  # level -> out() stream
    misspeculations: dict = field(default_factory=dict)  # level -> count
    disagreements: list = field(default_factory=list)
    invariant_failures: list = field(default_factory=list)
    error: Optional[str] = None  # crash anywhere in the stack

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.invariant_failures and not self.error

    def summary(self) -> str:
        if self.ok:
            misspecs = sum(self.misspeculations.values())
            return f"ok ({len(self.outputs)} levels, {misspecs} misspecs)"
        parts = []
        if self.error:
            parts.append(f"error: {self.error.splitlines()[-1]}")
        parts.extend(self.disagreements[:3])
        parts.extend(self.invariant_failures[:3])
        return "; ".join(parts)

    def signature(self) -> tuple:
        """Coarse failure class, stable under shrinking.

        The shrinker requires candidates to reproduce the *same kind* of
        failure — otherwise replacing a loop bound with a constant trades the
        bug under investigation for an unrelated step-limit blowup.
        """
        if self.ok:
            return ()
        if self.error:
            # exception class name only: messages carry value/name noise
            last = self.error.splitlines()[-1]
            return ("error", last.split(":", 1)[0])

        def kind(text: str) -> str:
            # prefix before the first colon, with counts/values stripped so
            # e.g. "... misspeculated 3 times" == "... misspeculated 1 times"
            return "".join(c for c in text.split(":", 1)[0] if not c.isdigit())

        kinds = []
        for text in self.disagreements:
            kinds.append(("disagreement", kind(text)))
        for text in self.invariant_failures:
            kinds.append(("invariant", kind(text)))
        return tuple(sorted(set(kinds)))


def _verifying_stage_hook(stage: str, module: Module) -> None:
    if stage in _SIR_STAGES:
        verify_sir_module(module)
    else:
        verify_module(module)


def _check_energy(report: OracleReport, level: str, sim) -> None:
    breakdown = sim.energy()
    components = breakdown.as_dict()
    for name, value in components.items():
        if value < 0:
            report.invariant_failures.append(
                f"{level}: negative {name} energy {value}"
            )
    if abs(sum(components.values()) - breakdown.total) > 1e-6 * max(
        breakdown.total, 1.0
    ):
        report.invariant_failures.append(
            f"{level}: component energies do not sum to total"
        )
    dts_total = DTSModel().apply(sim).total
    if dts_total > breakdown.total + 1e-9:
        report.invariant_failures.append(
            f"{level}: DTS energy {dts_total} exceeds nominal {breakdown.total}"
        )


def _check_engines(report: OracleReport, binary, inputs, fast_sim) -> None:
    """The ``engines`` oracle level: the four-engine contract.

    Re-runs the T=MAX binary on the legacy interpreter and the compiled
    template JIT and requires every :class:`SimResult` field — not just
    the ``out()`` stream — to equal the fast path's; then re-runs it on
    the out-of-order engine and requires committed-view equality.
    """
    import dataclasses

    for engine in ("legacy", "compiled"):
        sim = binary.run(inputs, engine=engine)
        for f in dataclasses.fields(type(fast_sim)):
            if f.name in ("counters", "memory", "obs"):
                continue
            a, b = getattr(sim, f.name), getattr(fast_sim, f.name)
            if a != b:
                report.invariant_failures.append(
                    f"engines: {engine} SimResult.{f.name} {a!r} != fast {b!r}"
                )
        for f in dataclasses.fields(type(fast_sim.counters)):
            a = getattr(sim.counters, f.name)
            b = getattr(fast_sim.counters, f.name)
            if a != b:
                report.invariant_failures.append(
                    f"engines: {engine} counters.{f.name} {a!r} != fast {b!r}"
                )
        if (
            sim.memory is not None
            and fast_sim.memory is not None
            and sim.memory.data != fast_sim.memory.data
        ):
            report.invariant_failures.append(
                f"engines: {engine} final memory image differs from fast"
            )
        if engine == "compiled":
            report.outputs["engines"] = sim.output
            report.misspeculations["engines"] = sim.misspeculations

    # the ooo lane: committed architectural contract only
    from repro.arch.machine import committed_view

    ooo_sim = binary.run(inputs, engine="ooo")
    ref_view = committed_view(fast_sim)
    ooo_view = committed_view(ooo_sim)
    for name, expected in ref_view.items():
        got = ooo_view[name]
        if got != expected:
            report.invariant_failures.append(
                f"engines: ooo committed {name} {got!r} != fast {expected!r}"
            )


def _expander(program: FuzzProgram) -> ExpanderConfig:
    if program.expander_enabled:
        return ExpanderConfig()
    return ExpanderConfig.disabled()


def run_oracles(
    program: FuzzProgram,
    *,
    check_profile_eq_run: bool = True,
) -> OracleReport:
    """Run every oracle level over ``program``; see module docstring."""
    report = OracleReport(program=program)
    try:
        _run_oracles(report, program, check_profile_eq_run)
    except Exception:  # a crash at any level is itself a finding
        report.error = traceback.format_exc()
    return report


def _run_oracles(
    report: OracleReport, program: FuzzProgram, check_profile_eq_run: bool
) -> None:
    ast = parse(program.source)

    # Level 0: AST reference evaluation.
    report.outputs["ref"] = Reference(
        ast, program.inputs_run, step_limit=REF_STEP_LIMIT
    ).run()

    # Level 1: the interpreter on plain front-end IR (no passes at all).
    module = compile_program(parse(program.source))
    verify_module(module)
    if program.inputs_run:
        set_global_inputs(module, program.inputs_run)
    interp = Interpreter(module, trace=True, step_limit=STEP_LIMIT)
    result = interp.run()
    report.outputs["interp-ir"] = result.output
    report.misspeculations["interp-ir"] = result.trace.misspeculations
    if result.trace.misspeculations:
        report.invariant_failures.append(
            "interp-ir: unsqueezed IR misspeculated "
            f"{result.trace.misspeculations} times"
        )

    expander = _expander(program)

    # Levels 2+3: squeezed SIR (interp) and BITSPEC binaries (machine).
    for heuristic in HEURISTICS:
        config = CompilerConfig.bitspec(heuristic, expander=expander)
        # strict=True: the fuzzer must see middle-end failures as findings,
        # never have them masked by graceful BASELINE fallback
        binary = compile_binary(
            program.source,
            config,
            profile_inputs=program.inputs_profile,
            stage_hook=_verifying_stage_hook,
            strict=True,
        )
        interp_result = binary.interpret(program.inputs_run)
        report.outputs[f"interp-squeezed-{heuristic}"] = interp_result.output
        report.misspeculations[f"interp-squeezed-{heuristic}"] = (
            interp_result.trace.misspeculations
        )
        # T=MAX runs with observability on: the attribution conservation
        # invariant (per-pc tallies re-sum to the SimResult aggregates,
        # integer-exact) is cross-checked on every fuzzed program.
        obs = heuristic == "max"
        sim = binary.run(program.inputs_run, obs=obs)
        report.outputs[f"machine-bitspec-{heuristic}"] = sim.output
        report.misspeculations[f"machine-bitspec-{heuristic}"] = sim.misspeculations
        _check_energy(report, f"machine-bitspec-{heuristic}", sim)
        if obs:
            from repro.obs.attribution import attribute, check_conservation

            attribution = attribute(binary.linked, sim.obs)
            for mismatch in check_conservation(attribution, sim):
                report.invariant_failures.append(
                    f"machine-bitspec-{heuristic}: obs conservation: {mismatch}"
                )
            _check_engines(report, binary, program.inputs_run, sim)

    # Machine baseline + Thumb.
    for level, config in (
        ("machine-baseline", CompilerConfig.baseline(expander=expander)),
        ("machine-thumb", CompilerConfig.thumb(expander=expander)),
    ):
        binary = compile_binary(
            program.source, config, stage_hook=_verifying_stage_hook, strict=True
        )
        sim = binary.run(program.inputs_run)
        report.outputs[level] = sim.output
        _check_energy(report, level, sim)

    # Invariant: T=MAX speculation profiled on the run input never misses.
    if check_profile_eq_run:
        config = CompilerConfig.bitspec("max", expander=expander)
        binary = compile_binary(
            program.source,
            config,
            profile_inputs=program.inputs_run,
            stage_hook=_verifying_stage_hook,
            strict=True,
        )
        sim = binary.run(program.inputs_run)
        if sim.misspeculations:
            report.invariant_failures.append(
                f"profile==run under T=MAX misspeculated {sim.misspeculations} times"
            )
        if sim.output != report.outputs["ref"]:
            report.disagreements.append(
                "machine-bitspec-max(profile==run) output disagrees with ref"
            )

    # Output agreement across every level.
    expected = report.outputs["ref"]
    for level, output in report.outputs.items():
        if output != expected:
            report.disagreements.append(
                f"{level}: output {_clip(output)} != ref {_clip(expected)}"
            )


def _clip(values: list, limit: int = 8) -> str:
    if len(values) <= limit:
        return repr(values)
    return repr(values[:limit])[:-1] + f", … {len(values)} total]"
