"""Delta-debugging shrinker for failing fuzz programs.

Given a :class:`FuzzProgram` and a predicate ("does this candidate still
exhibit the failure?"), greedily minimizes the program while keeping the
predicate true.  Reduction passes, applied to a fixed point:

* ddmin over every statement list (remove halves, then single statements);
* structural collapses — an ``if``/loop replaced by its body, a ternary by
  one arm, a cast/binary by an operand, any expression by ``0``/``1``;
* removal of uncalled functions and unreferenced globals (pruning the
  corresponding entries from the input dicts).

Candidates must still be *valid* (parse + typecheck through the front-end)
before the predicate is consulted; the predicate itself is treated as
opaque and usually wraps :func:`repro.fuzz.oracles.run_oracles`.

Budget: predicate evaluations are capped (each one typically recompiles the
program across several configurations), so shrinking degrades gracefully on
pathological inputs instead of running unbounded.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.frontend.ast_nodes import (
    AssignStmt,
    BinaryExpr,
    CallExpr,
    CastExpr,
    CondExpr,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Program,
    ReturnStmt,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.frontend.codegen import compile_program
from repro.frontend.parser import parse
from repro.frontend.printer import print_program
from repro.fuzz.generator import FuzzProgram


@dataclass
class ShrinkStats:
    predicate_calls: int = 0
    accepted: int = 0
    initial_lines: int = 0
    final_lines: int = 0


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def tick(self) -> None:
        self.used += 1


def _bodies_of(program: Program):
    """Yield every statement list in the program (functions + nested)."""
    stack = [f.body for f in program.functions]
    while stack:
        body = stack.pop()
        yield body
        for stmt in body:
            if isinstance(stmt, IfStmt):
                stack.append(stmt.then_body)
                if stmt.else_body:
                    stack.append(stmt.else_body)
            elif isinstance(stmt, (WhileStmt, DoWhileStmt, ForStmt)):
                stack.append(stmt.body)


def _exprs_of(stmt) -> list:
    """(container, attribute) slots holding an expression of a statement."""
    slots = []
    for attr in ("cond", "value", "init", "expr"):
        child = getattr(stmt, attr, None)
        if isinstance(child, Expr):
            slots.append((stmt, attr))
    return slots


def _subexpr_slots(expr: Expr) -> list:
    """(container, attribute) slots of an expression's direct children."""
    if isinstance(expr, BinaryExpr):
        return [(expr, "lhs"), (expr, "rhs")]
    if isinstance(expr, UnaryExpr):
        return [(expr, "operand")]
    if isinstance(expr, CastExpr):
        return [(expr, "operand")]
    if isinstance(expr, CondExpr):
        return [(expr, "cond"), (expr, "if_true"), (expr, "if_false")]
    if isinstance(expr, IndexExpr):
        return [(expr, "index")]
    if isinstance(expr, CallExpr):
        return [(expr, "args", i) for i in range(len(expr.args))]
    return []


def _replacements_for(expr: Expr) -> list:
    """Smaller expressions that could stand in for ``expr``."""
    candidates: list = []
    if isinstance(expr, BinaryExpr):
        candidates += [expr.lhs, expr.rhs]
    elif isinstance(expr, (UnaryExpr, CastExpr)):
        candidates.append(expr.operand)
    elif isinstance(expr, CondExpr):
        candidates += [expr.if_true, expr.if_false]
    if not isinstance(expr, NumExpr):
        candidates += [NumExpr(0), NumExpr(1)]
    elif expr.value not in (0, 1):
        candidates.append(NumExpr(expr.value and 1))
    return candidates


def _called_names(program: Program) -> set:
    names = set()

    def visit_expr(expr) -> None:
        if isinstance(expr, CallExpr):
            names.add(expr.callee)
            for arg in expr.args:
                visit_expr(arg)
        else:
            for container, attr, *idx in _subexpr_slots(expr):
                child = getattr(container, attr)
                visit_expr(child[idx[0]] if idx else child)

    for body in _bodies_of(program):
        for stmt in body:
            for container, attr in _exprs_of(stmt):
                visit_expr(getattr(container, attr))
            if isinstance(stmt, ForStmt):
                for sub in (stmt.init, stmt.step):
                    if sub is not None:
                        for container, attr in _exprs_of(sub):
                            visit_expr(getattr(container, attr))
    return names


def _referenced_globals(program: Program) -> set:
    """Names of globals mentioned anywhere (conservative: any name match)."""
    names = set()

    def visit_expr(expr) -> None:
        if isinstance(expr, (VarExpr,)):
            names.add(expr.name)
        elif isinstance(expr, IndexExpr):
            names.add(expr.base)
            visit_expr(expr.index)
        else:
            for container, attr, *idx in _subexpr_slots(expr):
                child = getattr(container, attr)
                visit_expr(child[idx[0]] if idx else child)

    def visit_stmt(stmt) -> None:
        for container, attr in _exprs_of(stmt):
            visit_expr(getattr(container, attr))
        if isinstance(stmt, AssignStmt):
            visit_expr(stmt.target)
        if isinstance(stmt, ForStmt):
            for sub in (stmt.init, stmt.step):
                if sub is not None:
                    visit_stmt(sub)

    for body in _bodies_of(program):
        for stmt in body:
            visit_stmt(stmt)
    return names


class Shrinker:
    """Greedy fixed-point reducer; see module docstring."""

    def __init__(
        self,
        predicate: Callable[[FuzzProgram], bool],
        *,
        max_predicate_calls: int = 400,
    ) -> None:
        self.predicate = predicate
        self.budget = _Budget(max_predicate_calls)
        self.stats = ShrinkStats()

    # -- candidate plumbing --------------------------------------------------

    def _rebuild(self, base: FuzzProgram, ast: Program) -> Optional[FuzzProgram]:
        """AST → candidate FuzzProgram, or None if it no longer compiles."""
        try:
            source = print_program(ast)
            reparsed = parse(source)
            compile_program(reparsed)  # typecheck
        except Exception:
            return None
        present = {g.name for g in ast.globals}
        return replace(
            base,
            source=source,
            inputs_profile={
                k: v for k, v in base.inputs_profile.items() if k in present
            },
            inputs_run={k: v for k, v in base.inputs_run.items() if k in present},
            note=(base.note + " (shrunk)") if "(shrunk)" not in base.note else base.note,
        )

    def _try(self, base: FuzzProgram, ast: Program) -> Optional[FuzzProgram]:
        candidate = self._rebuild(base, ast)
        if candidate is None or self.budget.spent():
            return None
        self.budget.tick()
        self.stats.predicate_calls += 1
        try:
            still_failing = self.predicate(candidate)
        except Exception:
            # An oracle crash on the candidate still reproduces *a* failure,
            # but not necessarily the one under investigation — reject.
            still_failing = False
        if still_failing:
            self.stats.accepted += 1
            return candidate
        return None

    # -- reduction passes ----------------------------------------------------

    def _pass_remove_stmts(self, program: FuzzProgram) -> Optional[FuzzProgram]:
        ast = parse(program.source)
        for body in _bodies_of(ast):
            n = len(body)
            chunk = max(n // 2, 1)
            while chunk >= 1:
                start = 0
                while start < len(body):
                    saved = body[start : start + chunk]
                    if not saved:
                        break
                    del body[start : start + chunk]
                    candidate = self._try(program, ast)
                    if candidate is not None:
                        return candidate
                    body[start:start] = saved
                    start += chunk
                if chunk == 1:
                    break
                chunk //= 2
        return None

    def _pass_collapse_structures(self, program: FuzzProgram) -> Optional[FuzzProgram]:
        ast = parse(program.source)
        for body in _bodies_of(ast):
            for i, stmt in enumerate(body):
                inline: Optional[list] = None
                if isinstance(stmt, IfStmt):
                    inline = stmt.then_body or stmt.else_body
                elif isinstance(stmt, (WhileStmt, DoWhileStmt, ForStmt)):
                    inline = stmt.body
                if inline is None:
                    continue
                saved = body[i]
                body[i : i + 1] = copy.deepcopy(inline)
                candidate = self._try(program, ast)
                if candidate is not None:
                    return candidate
                body[: len(body)] = body[:i] + [saved] + body[i + len(inline) :]
        return None

    def _pass_simplify_exprs(self, program: FuzzProgram) -> Optional[FuzzProgram]:
        ast = parse(program.source)
        slots: list = []
        for body in _bodies_of(ast):
            for stmt in body:
                stmts = [stmt]
                if isinstance(stmt, ForStmt):
                    stmts += [s for s in (stmt.init, stmt.step) if s is not None]
                for sub in stmts:
                    pending = list(_exprs_of(sub))
                    while pending:
                        container, attr, *idx = pending.pop()
                        child = getattr(container, attr)
                        expr = child[idx[0]] if idx else child
                        slots.append((container, attr, idx[0] if idx else None, expr))
                        pending.extend(_subexpr_slots(expr))
        for container, attr, idx, expr in slots:
            for replacement in _replacements_for(expr):
                if idx is None:
                    setattr(container, attr, replacement)
                else:
                    getattr(container, attr)[idx] = replacement
                candidate = self._try(program, ast)
                if candidate is not None:
                    return candidate
                if idx is None:
                    setattr(container, attr, expr)
                else:
                    getattr(container, attr)[idx] = expr
        return None

    def _pass_drop_toplevel(self, program: FuzzProgram) -> Optional[FuzzProgram]:
        ast = parse(program.source)
        called = _called_names(ast)
        for i in range(len(ast.functions) - 1, -1, -1):
            func = ast.functions[i]
            if func.name == "main" or func.name in called:
                continue
            saved = ast.functions.pop(i)
            candidate = self._try(program, ast)
            if candidate is not None:
                return candidate
            ast.functions.insert(i, saved)
        referenced = _referenced_globals(ast)
        for i in range(len(ast.globals) - 1, -1, -1):
            if ast.globals[i].name in referenced:
                continue
            saved_global = ast.globals.pop(i)
            candidate = self._try(program, ast)
            if candidate is not None:
                return candidate
            ast.globals.insert(i, saved_global)
        return None

    # -- driver --------------------------------------------------------------

    PASSES = (
        "_pass_remove_stmts",
        "_pass_collapse_structures",
        "_pass_drop_toplevel",
        "_pass_simplify_exprs",
    )

    def shrink(self, program: FuzzProgram) -> FuzzProgram:
        """Minimize ``program`` while the predicate stays true."""
        self.stats.initial_lines = program.source.count("\n")
        current = program
        progress = True
        while progress and not self.budget.spent():
            progress = False
            for pass_name in self.PASSES:
                while not self.budget.spent():
                    reduced = getattr(self, pass_name)(current)
                    if reduced is None:
                        break
                    current = reduced
                    progress = True
        self.stats.final_lines = current.source.count("\n")
        return current


def shrink_program(
    program: FuzzProgram,
    predicate: Callable[[FuzzProgram], bool],
    *,
    max_predicate_calls: int = 400,
) -> FuzzProgram:
    """Convenience wrapper around :class:`Shrinker`."""
    return Shrinker(predicate, max_predicate_calls=max_predicate_calls).shrink(program)
