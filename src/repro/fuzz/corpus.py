"""Replayable fuzz artifacts.

A corpus entry is one JSON file fully describing a fuzz case: the MiniC
source, both input vectors, and the generator metadata needed to regenerate
or attribute it.  ``tests/corpus/`` holds the checked-in seed corpus that
tier-1 replays through the full oracle stack; the CLI driver writes newly
shrunk failures next to them as ``failure-*.json``, and symbolic
counterexamples (from ``repro.verify`` or the fuzz driver's ``--verify``
mode) land beside them as ``verify-*.json`` — one corpus economy, every
entry replayable by the same oracles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.fuzz.generator import FuzzProgram

_FORMAT_VERSION = 1


def program_to_dict(program: FuzzProgram, name: str = "") -> dict:
    return {
        "format": _FORMAT_VERSION,
        "name": name,
        "seed": program.seed,
        "note": program.note,
        "expander_enabled": program.expander_enabled,
        "inputs_profile": program.inputs_profile,
        "inputs_run": program.inputs_run,
        "source": program.source,
    }


def program_from_dict(data: dict) -> FuzzProgram:
    return FuzzProgram(
        source=data["source"],
        inputs_profile=data.get("inputs_profile") or {},
        inputs_run=data.get("inputs_run") or {},
        seed=data.get("seed", -1),
        expander_enabled=data.get("expander_enabled", True),
        note=data.get("note", ""),
    )


def save_program(
    program: FuzzProgram, path: Union[str, Path], name: Optional[str] = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = program_to_dict(program, name=name or path.stem)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def save_counterexample(verdict: dict, out_dir: Union[str, Path]) -> Path:
    """Concretize a ``repro.verify`` counterexample verdict into the corpus.

    The verdict's embedded program (source + the concrete inputs the
    symbolic checker found) becomes a replayable ``verify-*.json`` entry,
    indistinguishable from a shrunk fuzz failure to everything downstream.
    """
    program = program_from_dict(dict(verdict["program"], format=1, name=""))
    stem = verdict["name"].replace(":", "-").replace("/", "-")
    path = Path(out_dir) / f"verify-{stem}-k{verdict['k']}.json"
    return save_program(program, path, name=path.stem)


def load_program(path: Union[str, Path]) -> FuzzProgram:
    return program_from_dict(json.loads(Path(path).read_text()))


def iter_corpus(directory: Union[str, Path]) -> Iterator[tuple]:
    """Yield (path, FuzzProgram) for every entry, sorted by file name.

    A damaged entry — truncated JSON, a non-object document, or a record
    missing its ``source`` — is *skipped with a warning* rather than
    aborting the walk: one torn file written by a killed fuzz driver must
    not take the rest of the corpus down with it.
    """
    import warnings

    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict) or not isinstance(
                data.get("source"), str
            ):
                raise ValueError("not a corpus entry (missing 'source')")
            program = program_from_dict(data)
        except (ValueError, OSError, UnicodeDecodeError) as exc:
            warnings.warn(
                f"skipping corpus entry {path.name}: {exc}",
                stacklevel=2,
            )
            continue
        yield path, program
