"""Pure-Python reference evaluation of MiniC ASTs.

The bottom oracle level of the differential stack: executes a parsed
:class:`~repro.frontend.ast_nodes.Program` directly, with no IR, passes or
machine model in the loop.  Semantics deliberately mirror the front-end's
typing rules (``repro.frontend.codegen``) — usual arithmetic conversions
widen to the larger width with ``signed = both signed``, literals default to
u32/u64, compound assignments evaluate at the target's type — but the
arithmetic itself is implemented independently of ``repro.interp`` so that a
bug in the interpreter's wrapping semantics is observable as a level
disagreement rather than silently shared.

Supported MiniC subset = what ``repro.fuzz.generator`` emits (no pointer
parameters, no address-of); anything else raises :class:`RefUnsupported`.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    OutStmt,
    Program,
    ReturnStmt,
    Stmt,
    U32,
    VarExpr,
    UnaryExpr,
    WhileStmt,
)

BOOL = CType(1)
U64 = CType(64)


class RefUnsupported(Exception):
    """The AST uses a construct outside the generator's subset."""


class RefTrap(Exception):
    """Undefined behavior (division by zero, out-of-bounds index)."""


class RefStepLimit(Exception):
    """The reference evaluation exceeded its step budget."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Optional[int]) -> None:
        self.value = value


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def _wrap(value: int, ctype: CType) -> int:
    return value & _mask(ctype.bits)


def _to_signed(value: int, ctype: CType) -> int:
    value &= _mask(ctype.bits)
    if value >= 1 << (ctype.bits - 1):
        value -= 1 << ctype.bits
    return value


def _convert(value: int, src: CType, dst: CType) -> int:
    """Mirror of codegen ``convert``: trunc / zext / sext."""
    if src.bits == dst.bits:
        return value
    if dst.bits > src.bits:
        if src.signed:
            return _wrap(_to_signed(value, src), dst)
        return value
    return _wrap(value, dst)


def _unify(lv: int, lt: CType, rv: int, rt: CType):
    bits = max(lt.bits, rt.bits, 8)
    signed = lt.signed and rt.signed
    target = CType(bits, signed)
    return _convert(lv, lt, target), _convert(rv, rt, target), target


def _arith(op: str, a: int, b: int, ty: CType) -> int:
    """C-style wrapping arithmetic at ``ty`` (operands pre-wrapped)."""
    bits = ty.bits
    if op == "+":
        return (a + b) & _mask(bits)
    if op == "-":
        return (a - b) & _mask(bits)
    if op == "*":
        return (a * b) & _mask(bits)
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return (a << b) & _mask(bits) if b < 64 else 0
    if op == ">>":
        if not ty.signed:
            return a >> b if b < 64 else 0
        shift = min(b, bits - 1) if b >= bits else b
        return _wrap(_to_signed(a, ty) >> shift, ty)
    if op == "/":
        if b == 0:
            raise RefTrap("division by zero")
        if not ty.signed:
            return a // b
        sa, sb = _to_signed(a, ty), _to_signed(b, ty)
        q = abs(sa) // abs(sb)
        return _wrap(-q if (sa < 0) != (sb < 0) else q, ty)
    if op == "%":
        if b == 0:
            raise RefTrap("remainder by zero")
        if not ty.signed:
            return a % b
        sa, sb = _to_signed(a, ty), _to_signed(b, ty)
        r = abs(sa) % abs(sb)
        return _wrap(-r if sa < 0 else r, ty)
    raise RefUnsupported(f"operator {op}")


def _compare(op: str, a: int, b: int, ty: CType) -> int:
    if ty.signed:
        a, b = _to_signed(a, ty), _to_signed(b, ty)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    raise RefUnsupported(f"comparison {op}")


class _Frame:
    """One function activation: scalar values and local arrays."""

    def __init__(self) -> None:
        self.scalars: dict = {}  # name -> (unsigned value, CType)
        self.arrays: dict = {}  # name -> (list of unsigned values, elem CType)


class Reference:
    """Evaluates a MiniC program against the generator's subset."""

    def __init__(
        self,
        program: Program,
        inputs: Optional[dict] = None,
        *,
        step_limit: int = 5_000_000,
    ) -> None:
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.step_limit = step_limit
        self.steps = 0
        self.output: list = []
        # Globals: name -> (values list, elem CType, is_scalar)
        self.globals: dict = {}
        for gdecl in program.globals:
            values = [_wrap(v, gdecl.ctype) for v in gdecl.init]
            values += [0] * (gdecl.array_size - len(values))
            self.globals[gdecl.name] = (values, gdecl.ctype)
        if inputs:
            for name, value in inputs.items():
                if name not in self.globals:
                    raise RefUnsupported(f"input for unknown global {name}")
                values, ctype = self.globals[name]
                supplied = value if isinstance(value, (list, tuple)) else [value]
                if len(supplied) > len(values):
                    raise RefUnsupported(f"input {name} exceeds capacity")
                new = [_wrap(v, ctype) for v in supplied]
                new += [0] * (len(values) - len(new))
                self.globals[name] = (new, ctype)

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main") -> list:
        """Execute ``entry``; returns the ``out()`` stream."""
        self.call(entry, [])
        return self.output

    # -- helpers -------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise RefStepLimit("reference step limit exceeded")

    def call(self, name: str, arg_values: list) -> Optional[int]:
        decl = self.functions.get(name)
        if decl is None:
            raise RefUnsupported(f"call to unknown function {name}")
        frame = _Frame()
        for param, value in zip(decl.params, arg_values):
            if param.ctype.pointer:
                raise RefUnsupported("pointer parameters")
            frame.scalars[param.name] = (_wrap(value, param.ctype), param.ctype)
        saved_ret = self._current_ret
        self._current_ret = decl.ret_type
        try:
            self.exec_body(decl.body, frame)
        except _Return as ret:
            return ret.value
        finally:
            self._current_ret = saved_ret
        return None

    def _global_scalar(self, name: str):
        entry = self.globals.get(name)
        if entry is not None and len(entry[0]) == 1:
            return entry
        return None

    def _array_for(self, name: str, frame: _Frame):
        if name in frame.arrays:
            return frame.arrays[name]
        entry = self.globals.get(name)
        if entry is not None:
            return entry
        raise RefUnsupported(f"unknown array {name}")

    def _element(self, expr: IndexExpr, frame: _Frame):
        values, elem = self._array_for(expr.base, frame)
        index, itype = self.eval(expr.index, frame, U32)
        if itype.bits == 1:
            index, itype = index, U32
        # codegen converts the index to 32 bits preserving signedness; the
        # gep then interprets the 32-bit index as signed (like the interp).
        index = _convert(index, itype, CType(32, itype.signed))
        index = _to_signed(index, CType(32, True))
        if not 0 <= index < len(values):
            raise RefTrap(f"{expr.base}[{index}] out of bounds")
        return values, index, elem

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: Expr, frame: _Frame, want: Optional[CType] = None):
        """Evaluate ``expr``; returns (unsigned value, CType)."""
        self._tick()
        if isinstance(expr, NumExpr):
            ctype = expr.ctype or want
            if ctype is None or ctype.pointer or ctype.bits == 1:
                ctype = U32 if expr.value.bit_length() <= 32 else U64
            return _wrap(expr.value, ctype), ctype
        if isinstance(expr, VarExpr):
            if expr.name in frame.scalars:
                return frame.scalars[expr.name]
            entry = self._global_scalar(expr.name)
            if entry is not None:
                values, ctype = entry
                return values[0], CType(ctype.bits, ctype.signed)
            raise RefUnsupported(f"variable {expr.name} (array-valued or unknown)")
        if isinstance(expr, IndexExpr):
            values, index, elem = self._element(expr, frame)
            return values[index], CType(elem.bits, elem.signed)
        if isinstance(expr, BinaryExpr):
            return self.eval_binary(expr, frame)
        if isinstance(expr, UnaryExpr):
            return self.eval_unary(expr, frame, want)
        if isinstance(expr, CastExpr):
            value, ctype = self.eval(expr.operand, frame, expr.ctype)
            if ctype.bits == 1:
                return _wrap(value, expr.ctype), expr.ctype
            return _convert(value, ctype, expr.ctype), expr.ctype
        if isinstance(expr, CallExpr):
            return self.eval_call(expr, frame)
        if isinstance(expr, CondExpr):
            return self.eval_ternary(expr, frame, want)
        raise RefUnsupported(f"expression {type(expr).__name__}")

    def _normalize(self, value: int, ctype: CType):
        if ctype.pointer:
            raise RefUnsupported("pointer arithmetic")
        if ctype.bits == 1:
            return value, U32
        return value, ctype

    def eval_binary(self, expr: BinaryExpr, frame: _Frame):
        op = expr.op
        if op in ("&&", "||"):
            return self.truth(expr, frame), BOOL
        lv, lt = self.eval(expr.lhs, frame)
        want_rhs = lt if isinstance(expr.rhs, NumExpr) else None
        rv, rt = self.eval(expr.rhs, frame, want_rhs)
        lv, lt = self._normalize(lv, lt)
        rv, rt = self._normalize(rv, rt)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lv, rv, ty = _unify(lv, lt, rv, rt)
            return _compare(op, lv, rv, ty), BOOL
        if op in ("<<", ">>"):
            rv = _convert(rv, rt, lt)
            return _arith(op, lv, rv, lt), lt
        lv, rv, ty = _unify(lv, lt, rv, rt)
        return _arith(op, lv, rv, ty), ty

    def eval_unary(self, expr: UnaryExpr, frame: _Frame, want: Optional[CType]):
        if expr.op == "!":
            return 1 - self.truth(expr.operand, frame), BOOL
        value, ctype = self.eval(expr.operand, frame, want)
        if ctype.bits == 1:
            value, ctype = value, U32
        if expr.op == "-":
            return _wrap(-value, ctype), ctype
        if expr.op == "~":
            return value ^ _mask(ctype.bits), ctype
        raise RefUnsupported(f"unary {expr.op}")

    def eval_call(self, expr: CallExpr, frame: _Frame):
        decl = self.functions.get(expr.callee)
        if decl is None:
            raise RefUnsupported(f"call to unknown function {expr.callee}")
        if len(expr.args) != len(decl.params):
            raise RefUnsupported(f"arity mismatch calling {expr.callee}")
        args = []
        for arg_expr, param in zip(expr.args, decl.params):
            if param.ctype.pointer:
                raise RefUnsupported("pointer arguments")
            value, ctype = self.eval(arg_expr, frame, param.ctype)
            if ctype.bits == 1:
                value, ctype = value, U32
            args.append(_convert(value, ctype, param.ctype))
        result = self.call(expr.callee, args)
        ret_type = decl.ret_type if decl.ret_type is not None else U32
        return _wrap(result or 0, ret_type), ret_type

    def eval_ternary(self, expr: CondExpr, frame: _Frame, want: Optional[CType]):
        # codegen evaluates arm *types* statically and unifies; arms are pure
        # in the generated subset, so evaluating both is observationally
        # equivalent — keeps this evaluator free of a separate type-inference
        # pass.
        cond = self.truth(expr.cond, frame)
        tv, tt = self.eval(expr.if_true, frame, want)
        if tt.bits == 1:
            tv, tt = tv, U32
        fv, ft = self.eval(expr.if_false, frame, want or tt)
        if ft.bits == 1:
            fv, ft = fv, U32
        ty = CType(max(tt.bits, ft.bits), tt.signed and ft.signed)
        tv = _convert(tv, tt, ty)
        fv = _convert(fv, ft, ty)
        return (tv if cond else fv), ty

    def truth(self, expr: Expr, frame: _Frame) -> int:
        """Mirror of codegen ``gen_condition`` (short-circuit, i1 result)."""
        self._tick()
        if isinstance(expr, BinaryExpr) and expr.op in ("&&", "||"):
            lhs = self.truth(expr.lhs, frame)
            if expr.op == "&&":
                return self.truth(expr.rhs, frame) if lhs else 0
            return 1 if lhs else self.truth(expr.rhs, frame)
        if isinstance(expr, UnaryExpr) and expr.op == "!":
            return 1 - self.truth(expr.operand, frame)
        value, ctype = self.eval(expr, frame)
        if ctype.pointer:
            raise RefUnsupported("pointer condition")
        if ctype.bits == 1:
            return value
        return int(value != 0)

    # -- statements ----------------------------------------------------------

    def exec_body(self, stmts: list, frame: _Frame) -> None:
        # Unique generated names make block scoping equivalent to a flat
        # frame; shrinking only removes code, so clashes cannot appear.
        for stmt in stmts:
            self.exec_stmt(stmt, frame)

    def exec_stmt(self, stmt: Stmt, frame: _Frame) -> None:
        self._tick()
        if isinstance(stmt, DeclStmt):
            if stmt.ctype.pointer:
                raise RefUnsupported("pointer declarations")
            if stmt.array_size is not None:
                frame.arrays[stmt.name] = ([0] * stmt.array_size, stmt.ctype)
                return
            if stmt.init is not None:
                value, ctype = self.eval(stmt.init, frame, stmt.ctype)
                if ctype.bits == 1:
                    value = _wrap(value, stmt.ctype)
                else:
                    value = _convert(value, ctype, stmt.ctype)
            else:
                value = 0
            frame.scalars[stmt.name] = (value, stmt.ctype)
        elif isinstance(stmt, AssignStmt):
            self.exec_assign(stmt, frame)
        elif isinstance(stmt, IfStmt):
            if self.truth(stmt.cond, frame):
                self.exec_body(stmt.then_body, frame)
            else:
                self.exec_body(stmt.else_body, frame)
        elif isinstance(stmt, WhileStmt):
            while self.truth(stmt.cond, frame):
                try:
                    self.exec_body(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, DoWhileStmt):
            while True:
                try:
                    self.exec_body(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self.truth(stmt.cond, frame):
                    break
        elif isinstance(stmt, ForStmt):
            if stmt.init is not None:
                self.exec_stmt(stmt.init, frame)
            while stmt.cond is None or self.truth(stmt.cond, frame):
                try:
                    self.exec_body(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.exec_stmt(stmt.step, frame)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                raise _Return(None)
            decl_ret = self._current_ret
            value, ctype = self.eval(stmt.value, frame, decl_ret)
            if decl_ret is not None:
                if ctype.bits == 1:
                    value = _wrap(value, decl_ret)
                else:
                    value = _convert(value, ctype, decl_ret)
            raise _Return(value)
        elif isinstance(stmt, BreakStmt):
            raise _Break()
        elif isinstance(stmt, ContinueStmt):
            raise _Continue()
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.expr, frame)
        elif isinstance(stmt, OutStmt):
            value, ctype = self.eval(stmt.value, frame, U32)
            # codegen passes the value at its natural width (bool → u32)
            self.output.append(value)
        else:
            raise RefUnsupported(f"statement {type(stmt).__name__}")

    def exec_assign(self, stmt: AssignStmt, frame: _Frame) -> None:
        if isinstance(stmt.target, VarExpr):
            name = stmt.target.name
            if name in frame.scalars:
                _, ctype = frame.scalars[name]
                frame.scalars[name] = (
                    self._assigned_value(stmt, ctype, frame),
                    ctype,
                )
                return
            entry = self._global_scalar(name)
            if entry is not None:
                values, gtype = entry
                elem = CType(gtype.bits, gtype.signed)
                values[0] = self._assigned_value(stmt, elem, frame, current=values[0])
                return
            raise RefUnsupported(f"assignment to {name}")
        values, index, elem = self._element(stmt.target, frame)
        elem_ct = CType(elem.bits, elem.signed)
        values[index] = self._assigned_value(
            stmt, elem_ct, frame, current=values[index]
        )

    def _assigned_value(
        self,
        stmt: AssignStmt,
        ctype: CType,
        frame: _Frame,
        current: Optional[int] = None,
    ) -> int:
        if stmt.op == "=":
            value, vtype = self.eval(stmt.value, frame, ctype)
            if vtype.bits == 1:
                return _wrap(value, ctype)
            return _convert(value, vtype, ctype)
        if current is None:
            if isinstance(stmt.target, VarExpr):
                current = frame.scalars[stmt.target.name][0]
            else:  # pragma: no cover - callers pass current for elements
                raise RefUnsupported("compound assignment without current value")
        # Mirror of codegen ``_compound``: evaluate rhs at the target type.
        rhs, rtype = self.eval(stmt.value, frame, ctype)
        if rtype.bits == 1:
            rhs, rtype = rhs, U32
        op = stmt.op[:-1]
        rhs = _convert(rhs, rtype, ctype)
        return _arith(op, current, rhs, ctype)

    # The return type of the function currently executing (for ReturnStmt);
    # maintained by ``call``.
    _current_ret: Optional[CType] = None


def reference_output(
    program: Program, inputs: Optional[dict] = None, *, step_limit: int = 5_000_000
) -> list:
    """Convenience wrapper: evaluate ``main`` and return the out() stream."""
    return Reference(program, inputs, step_limit=step_limit).run()
