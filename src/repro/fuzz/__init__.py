"""Differential fuzzing for the BITSPEC pipeline.

Generates random-but-safe MiniC programs and checks that every semantic
level of the system — AST reference evaluation, IR interpretation, squeezed
SIR interpretation, and the machine simulator under BASELINE / BITSPEC /
THUMB configurations — produces the same ``out()`` stream, while verifying
IR/SIR well-formedness between passes and energy-model invariants.

Entry points: ``python -m repro.fuzz`` (CLI), :func:`run_oracles` (one
program), :func:`generate_program` (just the generator).
"""

from repro.fuzz.corpus import (
    iter_corpus,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from repro.fuzz.driver import fuzz, iteration_seed, main
from repro.fuzz.generator import FuzzProgram, GenConfig, ProgramGenerator, generate_program
from repro.fuzz.oracles import ALL_LEVELS, HEURISTICS, OracleReport, run_oracles
from repro.fuzz.reference import Reference, reference_output
from repro.fuzz.shrink import Shrinker, shrink_program

__all__ = [
    "ALL_LEVELS",
    "FuzzProgram",
    "GenConfig",
    "HEURISTICS",
    "OracleReport",
    "ProgramGenerator",
    "Reference",
    "Shrinker",
    "fuzz",
    "generate_program",
    "iter_corpus",
    "iteration_seed",
    "load_program",
    "main",
    "program_from_dict",
    "program_to_dict",
    "reference_output",
    "run_oracles",
    "save_program",
    "shrink_program",
]
