"""Profile-guided bitwidth selection (§3.2.2)."""

from repro.profiler.profile import BitwidthProfile, HEURISTICS
from repro.profiler.selection import (
    SQUEEZE_WIDTH,
    SqueezePlan,
    compute_squeeze_plan,
)

__all__ = [
    "BitwidthProfile",
    "HEURISTICS",
    "SQUEEZE_WIDTH",
    "SqueezePlan",
    "compute_squeeze_plan",
]
