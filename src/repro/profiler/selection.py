"""Speculative bitwidth selection (§3.2.2).

Takes the profile's target bitwidths ``T`` and applies the Squeezable?
constraints (Eq. 3) to produce the final selection ``BW : V -> N``:

* the defining opcode must have a speculative 8-bit form in the ISA
  (Table 1 — no multiplier/divider, unsigned semantics only);
* the defining instruction's block must be idempotent (re-executable);
* zero-extending the 8-bit result must reproduce the original value given
  that all operands fit — true of the unsigned ops selected;
* the 8-bit value of a phi must come from 8-bit producers, so phis are only
  squeezed when every incoming value is itself squeezed or a small constant.

The output is a :class:`SqueezePlan` consumed by the squeezer pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Cast,
    Icmp,
    Instruction,
    Load,
    Phi,
)
from repro.ir.types import IntType, required_bits
from repro.ir.values import Argument, Constant, Value
from repro.profiler.profile import BitwidthProfile

#: Width of a register slice — the paper's hardware point.  The sweepable
#: generalization (repro.dse) passes ``width=`` to :func:`compute_squeeze_plan`.
SQUEEZE_WIDTH = 8

#: Opcodes with a speculative slice form (Table 1 + slice shifts, which the
#: segmented ALU supports through the same carry-boundary detection).
_SQUEEZABLE_BINOPS = frozenset({"add", "sub", "and", "or", "xor", "shl", "lshr"})

#: Alias exported for the DSE knob space (sweeps shrink this set).
SQUEEZABLE_BINOPS = _SQUEEZABLE_BINOPS

_UNSIGNED_PREDS = frozenset({"eq", "ne", "ult", "ule", "ugt", "uge"})


@dataclass
class SqueezePlan:
    """Which values get squeezed to the slice width, and the BW selection."""

    #: instructions whose definitions are reduced to the slice width
    narrow: set = field(default_factory=set)
    #: comparisons to execute at the slice width (result stays i1)
    narrow_cmps: set = field(default_factory=set)
    #: arguments whose slice form is materialized once at function entry
    narrow_args: set = field(default_factory=set)
    #: the full BW(v) selection, for reporting
    bw: dict = field(default_factory=dict)
    heuristic: str = "max"
    #: slice width the plan was computed for (drives the squeezer's types)
    width: int = SQUEEZE_WIDTH

    def __len__(self) -> int:
        return len(self.narrow) + len(self.narrow_cmps)


def _speculative_opcode(inst: Instruction, ops: frozenset) -> bool:
    """Speculative? — does the ISA provide a slice form of this op?"""
    if isinstance(inst, BinOp):
        return inst.opcode in ops
    if isinstance(inst, Load):
        # The speculative load of Table 1 reads at most Mem32.
        return not inst.volatile and inst.ptr.type.pointee.bits <= 32
    if isinstance(inst, Phi):
        return True
    if isinstance(inst, Cast):
        return inst.opcode in ("zext", "trunc")
    return False


def _operand_target(
    profile: BitwidthProfile, func: Function, value: Value, heuristic: str
) -> int:
    if isinstance(value, Constant):
        return required_bits(value.value)
    if isinstance(value, Instruction):
        return profile.target_bits(func.name, value.name, heuristic)
    if isinstance(value, Argument):
        return profile.target_bits(func.name, value.name, heuristic)
    return 64  # globals etc.: never squeezed through operands


def _shift_amount_small(
    profile: BitwidthProfile, func: Function, amount: Value, heuristic: str,
    width: int,
) -> bool:
    """Is the shift amount guaranteed (per profile) below the slice width?"""
    if isinstance(amount, Constant):
        return 0 <= amount.value < width
    # bits < width.bit_length() ⇒ every profiled amount value < width
    return (
        _operand_target(profile, func, amount, heuristic)
        < width.bit_length()
    )


def _hotness_floor(
    profile: BitwidthProfile, func_name: str, min_hotness: float
) -> float:
    """Absolute assignment-count threshold for this function's variables."""
    if min_hotness <= 0:
        return 0.0
    peak = max(
        (s.count for (f, _), s in profile.stats.items() if f == func_name),
        default=0,
    )
    return min_hotness * peak


def _hot(profile: BitwidthProfile, func_name: str, var_name: str,
         floor: float) -> bool:
    if floor <= 0:
        return True
    stats = profile.stats.get((func_name, var_name))
    return stats is not None and stats.count >= floor


def compute_squeeze_plan(
    func: Function,
    profile: BitwidthProfile,
    heuristic: str = "max",
    *,
    width: int = SQUEEZE_WIDTH,
    ops: frozenset = None,
    min_hotness: float = 0.0,
    confidence_margin: int = 0,
) -> SqueezePlan:
    """Compute BW (Eq. 3 constraints applied to T) and the squeeze sets.

    The keyword knobs are the DSE sweep axes (defaults reproduce the
    paper's fixed design point exactly):

    ``width``
        Speculative slice width in bits; ``>= 32`` disables squeezing
        (no value is narrower than a register), yielding an empty plan.
    ``ops``
        Restriction of the squeezable binop set (Table 1).
    ``min_hotness``
        Fraction of the function's hottest assignment count a definition
        must reach before it may be squeezed; cold/unprofiled values are
        rejected when this is positive.
    ``confidence_margin``
        Headroom in bits: a value is eligible only when its profiled
        target fits ``width - confidence_margin``, trading coverage for
        fewer misspeculations on near-the-edge profiles.
    """
    from repro.passes import stats

    plan = SqueezePlan(heuristic=heuristic, width=width)
    if width >= 32:
        return plan  # speculation off: nothing is narrower than a register
    squeezable = _SQUEEZABLE_BINOPS if ops is None else frozenset(ops)
    limit = width - confidence_margin
    floor = _hotness_floor(profile, func.name, min_hotness)

    candidates: set[Instruction] = set()
    for block in func.blocks:
        idempotent = block.is_idempotent()
        for inst in block.instructions:
            if not isinstance(inst.type, IntType):
                continue
            original_bits = inst.type.bits
            if isinstance(inst, Icmp):
                if (
                    idempotent
                    and inst.pred in _UNSIGNED_PREDS
                    and isinstance(inst.lhs.type, IntType)
                ):
                    plan.narrow_cmps.add(inst)  # refined below
                continue
            if original_bits <= 1:
                plan.bw[inst] = original_bits
                continue
            if not (idempotent and _speculative_opcode(inst, squeezable)):
                plan.bw[inst] = original_bits
                continue
            if not _hot(profile, func.name, inst.name, floor):
                plan.bw[inst] = original_bits
                stats.bump("selection", "cold_rejected")
                continue
            target = profile.target_bits(func.name, inst.name, heuristic)
            operand_targets = [
                _operand_target(profile, func, op, heuristic)
                for op in inst.operands
                if isinstance(op.type, IntType)
            ]
            if isinstance(inst, Load):
                operand_targets = []  # the pointer is not a data operand
            if isinstance(inst, (BinOp,)) and inst.opcode in ("shl", "lshr"):
                # The amount operand's magnitude does not flow into the
                # result, so only the shifted operand constrains the width.
                operand_targets = operand_targets[:1]
                if inst.opcode == "shl" and not _shift_amount_small(
                    profile, func, inst.rhs, heuristic, width
                ):
                    # A slice shl carries out whenever value<<amount leaves
                    # the slice — even when the original width wraps the
                    # overflow away (e.g. a 16-bit shl by 20 yields 0).  An
                    # amount bounded below the slice width keeps the
                    # no-misspeculation-on-the-profiled-path guarantee.
                    plan.bw[inst] = original_bits
                    stats.bump("selection", "shl_amount_rejected")
                    continue
            bw = max([target] + operand_targets)
            plan.bw[inst] = bw if bw <= limit else original_bits
            if bw <= limit and original_bits > width:
                candidates.add(inst)

    # Arguments that will carry a hoisted slice form (final set computed
    # below once the fixpoint settles which consumers survive).
    small_args = {
        arg
        for arg in func.args
        if isinstance(arg.type, IntType)
        and arg.type.bits > width
        and profile.target_bits(func.name, arg.name, heuristic) <= limit
        and _hot(profile, func.name, arg.name, floor)
    }

    # Fixpoint: drop phis whose incoming values will not be 8-bit producers.
    def phi_ok(phi: Phi) -> bool:
        for value in phi.operands:
            if isinstance(value, Constant):
                if required_bits(value.value) > width:
                    return False
            elif isinstance(value, Argument):
                if value not in small_args:
                    return False
            elif isinstance(value, Instruction):
                if value not in candidates and (
                    not isinstance(value.type, IntType)
                    or value.type.bits > width
                ):
                    return False
            else:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for inst in list(candidates):
            if isinstance(inst, Phi) and not phi_ok(inst):
                candidates.discard(inst)
                plan.bw[inst] = inst.type.bits
                stats.bump("selection", "phis_rejected")
                changed = True

    plan.narrow = candidates

    # A comparison runs at the slice width when both sides are slice
    # producers or profile-small values (a speculative truncate bridges the
    # latter).
    kept_cmps = set()
    for cmp in plan.narrow_cmps:
        ok = True
        for value in (cmp.lhs, cmp.rhs):
            if isinstance(value, Constant):
                if required_bits(value.value) > width:
                    ok = False
            elif isinstance(value, (Instruction, Argument)):
                already_narrow = (
                    isinstance(value.type, IntType)
                    and value.type.bits <= width
                )
                profiled_small = (
                    _operand_target(profile, func, value, heuristic)
                    <= limit
                )
                if (
                    value not in candidates
                    and not already_narrow
                    and not profiled_small
                ):
                    ok = False
            else:
                ok = False
        if ok and isinstance(cmp.lhs.type, IntType) and cmp.lhs.type.bits > width:
            kept_cmps.add(cmp)
    stats.bump(
        "selection", "compares_rejected", len(plan.narrow_cmps) - len(kept_cmps)
    )
    plan.narrow_cmps = kept_cmps

    # Profile-narrow arguments consumed by squeezed instructions get a
    # single speculative truncate in a dedicated entry block instead of one
    # per use site.
    narrow_consumers = plan.narrow | plan.narrow_cmps
    for arg in small_args:
        if any(arg in inst.operands for inst in narrow_consumers):
            plan.narrow_args.add(arg)
    stats.bump("selection", "values_selected", len(plan.narrow))
    stats.bump("selection", "compares_selected", len(plan.narrow_cmps))
    stats.bump("selection", "arguments_narrowed", len(plan.narrow_args))
    return plan
