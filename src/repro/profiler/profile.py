"""Bitwidth profiles (§3.2.2).

A :class:`BitwidthProfile` wraps the per-variable RequiredBits statistics
collected by a traced interpreter run: for each SSA variable, MIN/AVG/MAX
over the sequence of dynamically computed values, plus assignment counts.
Profiles serialize to JSON so the train/run split of the paper's sensitivity
study (RQ6) can be expressed naturally.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional

from repro.interp.interpreter import Interpreter, Trace, VarStats, bucket
from repro.ir.function import Function, Module
from repro.ir.values import Value

#: The bitwidth selection heuristics explored by the paper.
HEURISTICS = ("max", "avg", "min")


@dataclass
class BitwidthProfile:
    """Per-variable dynamic bitwidth statistics keyed by (function, name)."""

    stats: dict

    @classmethod
    def collect(
        cls,
        module: Module,
        entry: str = "main",
        args: Optional[list[int]] = None,
    ) -> "BitwidthProfile":
        """Run the program on profiling inputs, gathering statistics."""
        interp = Interpreter(module, trace=True)
        interp.run(entry, args)
        return cls(stats=dict(interp.trace.var_stats))

    @classmethod
    def from_trace(cls, trace: Trace) -> "BitwidthProfile":
        return cls(stats=dict(trace.var_stats))

    def target_bits(self, func_name: str, var_name: str, heuristic: str) -> int:
        """The heuristic target bitwidth T(v) (§3.2.2).

        Unprofiled variables (never executed on the training input) default
        to the most optimistic target — they are cold, so squeezing them is
        free on the profiled path and speculation guards the rest.
        """
        if heuristic not in HEURISTICS:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        stats = self.stats.get((func_name, var_name))
        if stats is None or stats.count == 0:
            return 1
        if heuristic == "max":
            return stats.max_bits
        if heuristic == "avg":
            return max(1, math.ceil(stats.avg_bits))
        if heuristic == "min":
            return stats.min_bits
        raise ValueError(f"unknown heuristic {heuristic!r}")

    def classify_dynamic(self, heuristic: str) -> dict[int, int]:
        """Dynamic-assignment histogram of T under ``heuristic`` (Fig 5)."""
        hist = {8: 0, 16: 0, 32: 0, 64: 0}
        for stats in self.stats.values():
            if stats.count == 0:
                continue
            target = {
                "max": stats.max_bits,
                "avg": max(1, math.ceil(stats.avg_bits)),
                "min": stats.min_bits,
            }[heuristic]
            hist[bucket(target)] += stats.count
        return hist

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            f"{func}::{name}": [s.count, s.total_bits, s.min_bits, s.max_bits]
            for (func, name), s in self.stats.items()
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BitwidthProfile":
        payload = json.loads(text)
        stats = {}
        for key, (count, total, low, high) in payload.items():
            func, _, name = key.partition("::")
            entry = VarStats(count, total, low, high)
            stats[(func, name)] = entry
        return cls(stats=stats)
