"""Bounded bitvector valuation domain for the symbolic executor.

On the bounded domains of ISSUE/ROADMAP item 4 — every scalar input
ranging over its ``k``-bit pattern set — a bitvector function *is* its
table of values.  A symbolic machine word is therefore represented
extensionally: either a plain ``int`` (the value is the same in every
lane) or a :class:`Vec` holding one concrete word per *lane*, where a
lane is one joint input assignment.  This is the dense-domain analogue of
the decision-diagram encodings used by machine-code BMC (the CFLOBDD
RISC-V work in PAPERS.md): every operator is evaluated pointwise with the
machine's own width/mask/sign-extension semantics — shared with the
concrete engines through :mod:`repro.arch.widths` — so there is no
abstraction gap to close, and a disequality concretizes a counterexample
by direct lane lookup.

Values collapse back to ``int`` whenever all lanes agree, which keeps the
common case (loop counters, addresses, constants) scalar-fast: only the
genuinely input-dependent dataflow pays per-lane cost.
"""

from __future__ import annotations

from repro.arch.widths import sign_extend as _sign_extend


class Vec:
    """A per-lane valuation of one machine word (aligned to a state's lanes)."""

    __slots__ = ("vals",)

    def __init__(self, vals: tuple) -> None:
        self.vals = vals

    def __len__(self) -> int:
        return len(self.vals)

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self.vals[:6])
        if len(self.vals) > 6:
            preview += ", …"
        return f"Vec[{len(self.vals)}]({preview})"


def make(vals) -> object:
    """A :class:`Vec` over ``vals``, collapsed to ``int`` when uniform."""
    vals = tuple(vals)
    first = vals[0]
    for v in vals:
        if v != first:
            return Vec(vals)
    return first


def is_sym(value) -> bool:
    """True when ``value`` differs across lanes."""
    return type(value) is Vec


def expand(value, n: int) -> tuple:
    """The per-lane tuple view of ``value`` over ``n`` lanes."""
    if type(value) is Vec:
        return value.vals
    return (value,) * n


def lane(value, i: int):
    """The concrete word ``value`` takes in lane ``i``."""
    if type(value) is Vec:
        return value.vals[i]
    return value


def restrict(value, positions: list):
    """``value`` re-aligned to the lane subset ``positions`` (a fork edge)."""
    if type(value) is Vec:
        vals = value.vals
        return make(vals[p] for p in positions)
    return value


def map1(f, a, n: int):
    """Apply a unary concrete op pointwise; scalar stays scalar."""
    if type(a) is Vec:
        return make(f(v) for v in a.vals)
    return f(a)


def map2(f, a, b, n: int):
    """Apply a binary concrete op pointwise; scalar×scalar stays scalar."""
    a_sym = type(a) is Vec
    b_sym = type(b) is Vec
    if not a_sym and not b_sym:
        return f(a, b)
    if a_sym and b_sym:
        return make(f(x, y) for x, y in zip(a.vals, b.vals))
    if a_sym:
        return make(f(x, b) for x in a.vals)
    return make(f(a, y) for y in b.vals)


def map3(f, a, b, c, n: int):
    """Apply a ternary concrete op pointwise (``movcond`` lane select)."""
    if type(a) is not Vec and type(b) is not Vec and type(c) is not Vec:
        return f(a, b, c)
    return make(
        f(x, y, z)
        for x, y, z in zip(expand(a, n), expand(b, n), expand(c, n))
    )


def partition(pred_vals: tuple) -> tuple:
    """Split lane positions by a boolean valuation: (true_pos, false_pos)."""
    true_pos, false_pos = [], []
    for i, p in enumerate(pred_vals):
        (true_pos if p else false_pos).append(i)
    return true_pos, false_pos


def sxt(value, src_bits: int, n: int):
    """Pointwise architectural sign extension (mirrors the ``sxt`` op)."""
    return map1(lambda v: _sign_extend(v, src_bits, 32), value, n)
