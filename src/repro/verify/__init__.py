"""Bounded symbolic equivalence checking of the speculation contract.

The paper's correctness argument is that per-variable bitwidth
speculation never changes architectural results: whenever a squeezed
computation leaves its slice, the Δ-redirect machinery replays it at
full width, so BITSPEC ≡ BASELINE on *every* input — not just the fuzzed
ones.  This package checks that claim exhaustively on bounded domains:
:mod:`repro.verify.executor` runs the compiled binary symbolically over
all inputs up to width ``k`` (forking through misspeculation handlers,
data-dependent branches and addresses), :mod:`repro.verify.checker`
compares the BITSPEC and BASELINE lane observations and concretizes any
disequality into a counterexample that is confirmed on the concrete
engines and fed back into the fuzz corpus, and ``python -m repro.verify``
is the CLI over the corpus, the workloads and the soundness canaries.
"""

from repro.verify.checker import (
    CANARIES,
    DriverError,
    bounded_domain,
    build_lanes,
    confirm_counterexample,
    list_targets,
    make_driver,
    run_canary,
    verify_function,
)
from repro.verify.domain import Vec, expand, is_sym, lane, make, restrict
from repro.verify.executor import (
    BoundExceeded,
    Observation,
    SymbolicMachine,
)

__all__ = [
    "CANARIES",
    "BoundExceeded",
    "DriverError",
    "Observation",
    "SymbolicMachine",
    "Vec",
    "bounded_domain",
    "build_lanes",
    "confirm_counterexample",
    "expand",
    "is_sym",
    "lane",
    "list_targets",
    "make",
    "make_driver",
    "restrict",
    "run_canary",
    "verify_function",
]
