"""Bounded symbolic execution over the machine ISA.

Runs a linked binary on the :mod:`repro.verify.domain` valuation domain:
machine words are per-lane tables over the bounded input space, and every
instruction is evaluated pointwise with the exact semantics of the legacy
reference engine (:meth:`repro.arch.machine.Machine._run_legacy`) — the
same slice masks, sign extensions, Δ-redirect misspeculation rules and
trap conditions, minus the cost model (cycles/energy/caches), which is
out of scope for the architectural equivalence contract.

Control flow forks when lanes disagree:

* a conditional branch whose predicate differs across lanes splits the
  state into a taken and a fall-through child;
* a speculative ``bs_*`` op whose misspeculation verdict differs splits
  into a write-back child and a ``pc += Δ`` redirect child (so handler
  code is symbolically executed exactly like the hardware reaches it);
* a memory access or indirect branch through a lane-dependent address is
  concretized by forking per distinct address value;
* a lane-dependent zero divisor forks the trapping lanes off.

Each terminal state yields, per lane, an :class:`Observation` — the
architecturally visible exit state (trap, ``out()`` stream, final global
memory) that :mod:`repro.verify.checker` compares across worlds.  All
budgets are deterministic (lane-steps and live states), so a run either
completes identically every time or raises :class:`BoundExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import HALT, _DIV_OPS
from repro.arch.widths import BYTE_MASKS as _MASKS, slice_mask
from repro.backend.mir import Imm, Slice
from repro.core.pipeline import set_global_inputs
from repro.interp.interpreter import evaluate_icmp
from repro.interp.memory import FlatMemory, STACK_TOP, initialize_globals
from repro.ir.types import int_type
from repro.verify.domain import (
    Vec,
    expand,
    is_sym,
    lane,
    make,
    map1,
    map2,
    map3,
    partition,
    restrict,
    sxt,
)

#: default exploration budgets (overridable per run)
DEFAULT_STEP_BUDGET = 40_000_000  # lane-steps: sum over lanes of path length
DEFAULT_MAX_STATES = 4_096  # simultaneously live forked states


class BoundExceeded(Exception):
    """The bounded exploration ran out of budget (not a verdict either way)."""


@dataclass(frozen=True)
class Observation:
    """The architecturally visible exit state of one lane.

    ``trap`` is ``None`` for a clean halt, else the trap message; ``out``
    is the concrete ``out()`` stream; ``globals_image`` is a tuple of
    ``(name, element values)`` for every module global, read back from
    final memory — together the final register/memory state the
    BITSPEC ≡ BASELINE contract quantifies over (return values flow
    through ``out`` in driver programs; stack locals are dead on exit).
    """

    trap: object
    out: tuple
    globals_image: tuple


class _State:
    """One symbolically executing machine, restricted to a lane subset."""

    __slots__ = ("pc", "regs", "overlay", "out", "cmp", "carry", "lanes")

    def __init__(self, pc, regs, overlay, out, cmp, carry, lanes):
        self.pc = pc
        self.regs = regs
        self.overlay = overlay
        self.out = out
        self.cmp = cmp
        self.carry = carry
        self.lanes = lanes

    def split(self, positions: list) -> "_State":
        """A child state re-aligned to the lane subset ``positions``."""
        return _State(
            self.pc,
            [restrict(r, positions) for r in self.regs],
            {a: restrict(v, positions) for a, v in self.overlay.items()},
            [restrict(v, positions) for v in self.out],
            (
                restrict(self.cmp[0], positions),
                restrict(self.cmp[1], positions),
                self.cmp[2],
            ),
            restrict(self.carry, positions),
            tuple(self.lanes[p] for p in positions),
        )


class SymbolicMachine:
    """Symbolically executes one compiled binary over a bounded input domain.

    ``symbolic`` maps scalar global names to their per-lane value tables
    (every table the same length — the joint assignment enumeration built
    by :func:`repro.verify.checker.build_lanes`); ``inputs`` holds the
    concrete values for every other input global, applied exactly like a
    concrete ``CompiledBinary.run(inputs)``.
    """

    def __init__(
        self,
        binary,
        symbolic: dict,
        *,
        inputs: dict = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> None:
        self.binary = binary
        self.linked = binary.linked
        self.module = binary.module
        self.symbolic = dict(symbolic)
        self.step_budget = step_budget
        self.max_states = max_states
        lane_counts = {len(v) for v in symbolic.values()} or {1}
        if len(lane_counts) != 1:
            raise ValueError("symbolic inputs must share one lane count")
        self.n_lanes = lane_counts.pop()
        self.spec_mask = slice_mask(getattr(self.linked, "slice_width", 8))

        if inputs:
            set_global_inputs(self.module, inputs)
        self.base = FlatMemory()
        initialize_globals(self.base, self.module, self.linked.global_addresses)

        # exploration statistics (deterministic; surfaced in verdicts)
        self.lane_steps = 0
        self.paths = 0
        self.forks = 0
        self.misspec_lanes = 0

    # -- entry ----------------------------------------------------------------

    def _initial_state(self) -> _State:
        regs = [0] * 16
        regs[13] = STACK_TOP
        regs[14] = HALT
        overlay = {}
        for name, table in self.symbolic.items():
            gv = self.module.globals.get(name)
            if gv is None:
                raise KeyError(f"no such global: {name}")
            if gv.count != 1:
                raise ValueError(f"symbolic input {name} must be scalar")
            base = self.linked.global_addresses[name]
            size = gv.elem_type.size_bytes
            wrapped = make(gv.elem_type.wrap(v) for v in table)
            for i in range(size):
                byte = map1(lambda v, _i=i: (v >> (8 * _i)) & 0xFF, wrapped, 0)
                if is_sym(byte) or byte != self.base.data[base + i]:
                    overlay[base + i] = byte
        return _State(
            self.linked.entry_index,
            regs,
            overlay,
            [],
            (0, 0, 4),
            0,
            tuple(range(self.n_lanes)),
        )

    def run(self) -> dict:
        """Explore every path; returns ``{lane: Observation}`` (total map)."""
        stack = [self._initial_state()]
        results = []
        while stack:
            if len(stack) + self.paths > self.max_states:
                raise BoundExceeded(
                    f"state budget exceeded ({self.max_states} states)"
                )
            state = stack.pop()
            trap = self._run_state(state, stack)
            if trap is _FORKED:
                continue
            results.append((state, trap))
            self.paths += 1

        observations = {}
        for state, trap in results:
            n = len(state.lanes)
            outs = [expand(v, n) for v in state.out]
            image = self._globals_image(state)
            for i, lane_id in enumerate(state.lanes):
                observations[lane_id] = Observation(
                    trap=trap,
                    out=tuple(o[i] for o in outs),
                    globals_image=tuple(
                        (name, tuple(lane(e, i) for e in elems))
                        for name, elems in image
                    ),
                )
        return observations

    # -- memory ---------------------------------------------------------------

    def _load(self, state, addr: int, size: int):
        if addr < 0 or addr + size > self.base.size:
            return None  # trap, matches FlatMemory bounds check
        overlay = state.overlay
        base = self.base.data
        raw = []
        any_sym = False
        for i in range(size):
            byte = overlay.get(addr + i)
            if byte is None:
                byte = base[addr + i]
            elif is_sym(byte):
                any_sym = True
            raw.append(byte)
        if not any_sym:
            value = 0
            for i, byte in enumerate(raw):
                value |= byte << (8 * i)
            return value
        n = len(state.lanes)
        lanes = [0] * n
        for i, byte in enumerate(raw):
            shift = 8 * i
            for j, b in enumerate(expand(byte, n)):
                lanes[j] |= b << shift
        return make(lanes)

    def _store(self, state, addr: int, value, size: int) -> bool:
        if addr < 0 or addr + size > self.base.size:
            return False
        for i in range(size):
            state.overlay[addr + i] = map1(
                lambda v, _i=i: (v >> (8 * _i)) & 0xFF, value, 0
            )
        return True

    def _globals_image(self, state) -> list:
        image = []
        for name in sorted(self.module.globals):
            gv = self.module.globals[name]
            base = self.linked.global_addresses[name]
            size = gv.elem_type.size_bytes
            elems = [
                self._load(state, base + i * size, size)
                for i in range(gv.count)
            ]
            image.append((name, elems))
        return image

    # -- forking --------------------------------------------------------------

    def _fork(self, state, pred, stack, true_pc, false_pc) -> object:
        """Split ``state`` on a lane-dependent predicate; push both children."""
        true_pos, false_pos = partition(expand(pred, len(state.lanes)))
        self.forks += 1
        for positions, pc in ((false_pos, false_pc), (true_pos, true_pc)):
            child = state.split(positions)
            child.pc = pc
            stack.append(child)
        return _FORKED

    def _concretize_addr(self, state, addr, stack) -> object:
        """Fork per distinct lane-dependent address; reruns the same pc."""
        n = len(state.lanes)
        by_value = {}
        for i, v in enumerate(expand(addr, n)):
            by_value.setdefault(v, []).append(i)
        self.forks += 1
        for value in sorted(by_value):
            child = state.split(by_value[value])
            stack.append(child)
        return _FORKED

    # -- the step loop ---------------------------------------------------------

    def _run_state(self, state, stack):
        """Run ``state`` to halt/trap/fork.  Returns the trap message
        (``None`` for a clean halt) or :data:`_FORKED`."""
        linked = self.linked
        insts = linked.insts
        delta = linked.delta
        spec_mask = self.spec_mask
        budget = self.step_budget
        regs = state.regs

        while state.pc != HALT:
            pc = state.pc
            if pc is _TRAP_DIV:
                return "division by zero"
            if not 0 <= pc < len(insts):
                return f"pc out of range: {pc}"
            self.lane_steps += len(state.lanes)
            if self.lane_steps > budget:
                raise BoundExceeded(
                    f"step budget exceeded ({budget} lane-steps)"
                )
            inst = insts[pc]
            n = len(state.lanes)

            def read(op):
                t = type(op)
                if t is Slice:
                    size = op.size if op.size <= 4 else 4
                    mask = _MASKS[size]
                    shift = op.offset * 8
                    value = regs[op.reg]
                    if shift == 0 and mask == 0xFFFFFFFF:
                        return value
                    return map1(lambda v: (v >> shift) & mask, value, n)
                if t is Imm:
                    return op.value & 0xFFFFFFFF
                if op == "sp":
                    return regs[13]
                raise TypeError(f"cannot read operand {op!r}")

            def write(op, value):
                size = op.size if op.size <= 4 else 4
                mask = _MASKS[size]
                shift = op.offset * 8
                if shift == 0 and mask == 0xFFFFFFFF:
                    regs[op.reg] = map1(lambda v: v & 0xFFFFFFFF, value, n)
                    return
                keep = ~(mask << shift) & 0xFFFFFFFF
                regs[op.reg] = map2(
                    lambda old, v: (old & keep) | ((v & mask) << shift),
                    regs[op.reg],
                    value,
                    n,
                )

            opcode = inst.opcode
            next_pc = pc + 1

            if opcode == "mov" or opcode == "movi":
                write(inst.defs[0], read(inst.uses[0]))
            elif opcode in ("ldr", "ldrb", "ldrh"):
                base = read(inst.uses[0])
                disp = inst.uses[1].value if len(inst.uses) > 1 else 0
                addr = map1(lambda v: (v + disp) & 0xFFFFFFFF, base, n)
                if is_sym(addr):
                    return self._concretize_addr(state, addr, stack)
                size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[opcode]
                value = self._load(state, addr, size)
                if value is None:
                    return f"load out of bounds: 0x{addr:x}+{size}"
                write(inst.defs[0], value)
            elif opcode in ("str", "strb", "strh"):
                value = read(inst.uses[0])
                base = read(inst.uses[1])
                disp = inst.uses[2].value if len(inst.uses) > 2 else 0
                addr = map1(lambda v: (v + disp) & 0xFFFFFFFF, base, n)
                if is_sym(addr):
                    return self._concretize_addr(state, addr, stack)
                size = {"str": 4, "strb": 1, "strh": 2}[opcode]
                if not self._store(state, addr, value, size):
                    return f"store out of bounds: 0x{addr:x}+{size}"
            elif opcode in ("add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr"):
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                mask = _MASKS.get(inst.width, 0xFFFFFFFF)
                if opcode == "add":
                    value = map2(lambda x, y: (x + y) & mask, a, b, n)
                elif opcode == "sub":
                    value = map2(lambda x, y: (x - y) & mask, a, b, n)
                elif opcode == "and":
                    value = map2(lambda x, y: x & y, a, b, n)
                elif opcode == "orr":
                    value = map2(lambda x, y: x | y, a, b, n)
                elif opcode == "eor":
                    value = map2(lambda x, y: x ^ y, a, b, n)
                elif opcode == "lsl":
                    value = map2(
                        lambda x, y: (x << y) & mask if y < 32 else 0, a, b, n
                    )
                elif opcode == "lsr":
                    value = map2(lambda x, y: (x >> y) if y < 32 else 0, a, b, n)
                else:  # asr
                    bits = inst.width * 8
                    ty = int_type(bits)
                    value = map2(
                        lambda x, y: ty.wrap(
                            ty.to_signed(x) >> min(y, bits - 1)
                        ),
                        a,
                        b,
                        n,
                    )
                write(inst.defs[0], value)
            elif opcode == "bs_ldr":
                addr = read(inst.uses[0])
                if is_sym(addr):
                    return self._concretize_addr(state, addr, stack)
                size = inst.uses[1].value
                value = self._load(state, addr, size)
                if value is None:
                    return f"load out of bounds: 0x{addr:x}+{size}"
                miss = map1(lambda v: v > spec_mask, value, n)
                if is_sym(miss):
                    # the clean child re-executes this op (its predicate is
                    # then uniformly false), so the write-back still happens
                    self.misspec_lanes += sum(miss.vals)
                    return self._fork(state, miss, stack, pc + delta, pc)
                if miss:
                    self.misspec_lanes += n
                    next_pc = pc + delta
                else:
                    write(inst.defs[0], value)
            elif opcode.startswith("bs_"):
                outcome = self._exec_bitspec(state, inst, read, write, n)
                if outcome == "misspec":
                    self.misspec_lanes += n
                    next_pc = pc + delta
                elif type(outcome) is tuple:
                    if outcome[0] == "fork-misspec":
                        # clean child re-executes the op, see bs_ldr above
                        miss = outcome[1]
                        self.misspec_lanes += sum(expand(miss, n))
                        return self._fork(state, miss, stack, pc + delta, pc)
                    state.cmp = outcome
            elif opcode == "cmp":
                state.cmp = (read(inst.uses[0]), read(inst.uses[1]), inst.width)
            elif opcode == "cmp64hi":
                state.cmp = (read(inst.uses[0]), read(inst.uses[1]), "hi")
            elif opcode == "cmp64lo":
                a_hi, b_hi, _tag = state.cmp
                a = map2(lambda hi, lo: (hi << 32) | lo, a_hi, read(inst.uses[0]), n)
                b = map2(lambda hi, lo: (hi << 32) | lo, b_hi, read(inst.uses[1]), n)
                state.cmp = (a, b, 8)
            elif opcode == "b":
                next_pc = inst.target
            elif opcode == "bcond":
                a, b, width = state.cmp
                ty = int_type(64 if width == 8 else width * 8)
                cond = map2(
                    lambda x, y: evaluate_icmp(inst.cond, x, y, ty), a, b, n
                )
                if is_sym(cond):
                    return self._fork(state, cond, stack, inst.target, pc + 1)
                if cond:
                    next_pc = inst.target
            elif opcode == "movcond":
                a, b, width = state.cmp
                ty = int_type(64 if width == 8 else width * 8)
                cond = map2(
                    lambda x, y: evaluate_icmp(inst.cond, x, y, ty), a, b, n
                )
                source = read(inst.uses[0])
                old = read(inst.defs[0])
                write(
                    inst.defs[0],
                    map3(lambda c, s, o: s if c else o, cond, source, old, n),
                )
            elif opcode in ("uxt", "sxt", "trunc"):
                src = inst.uses[0]
                value = read(src)
                if opcode == "sxt":
                    src_bits = (src.size if type(src) is Slice else 4) * 8
                    value = sxt(value, src_bits, n)
                write(inst.defs[0], value)
            elif opcode == "mul":
                mask = _MASKS.get(inst.width, 0xFFFFFFFF)
                value = map2(
                    lambda x, y: (x * y) & mask,
                    read(inst.uses[0]),
                    read(inst.uses[1]),
                    n,
                )
                write(inst.defs[0], value)
            elif opcode == "umull":
                product = map2(
                    lambda x, y: x * y, read(inst.uses[0]), read(inst.uses[1]), n
                )
                write(inst.defs[0], map1(lambda p: p & 0xFFFFFFFF, product, n))
                write(
                    inst.defs[1],
                    map1(lambda p: (p >> 32) & 0xFFFFFFFF, product, n),
                )
            elif opcode in _DIV_OPS:
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                zero = map1(lambda v: v == 0, b, n)
                if is_sym(zero):
                    return self._fork(state, zero, stack, _TRAP_DIV, pc)
                if zero:
                    return "division by zero"
                bits = inst.width * 8
                ty = int_type(bits)
                value = map2(
                    lambda x, y, _op=opcode, _ty=ty: _divide(_op, x, y, _ty),
                    a,
                    b,
                    n,
                )
                write(inst.defs[0], map1(ty.wrap, value, n))
            elif opcode == "adds":
                full = map2(
                    lambda x, y: x + y, read(inst.uses[0]), read(inst.uses[1]), n
                )
                state.carry = map1(lambda f: f >> 32, full, n)
                write(inst.defs[0], map1(lambda f: f & 0xFFFFFFFF, full, n))
            elif opcode == "adc":
                full = map3(
                    lambda x, y, c: x + y + c,
                    read(inst.uses[0]),
                    read(inst.uses[1]),
                    state.carry,
                    n,
                )
                state.carry = map1(lambda f: f >> 32, full, n)
                write(inst.defs[0], map1(lambda f: f & 0xFFFFFFFF, full, n))
            elif opcode == "subs":
                a = read(inst.uses[0])
                b = read(inst.uses[1])
                state.carry = map2(lambda x, y: 1 if x >= y else 0, a, b, n)
                write(inst.defs[0], map2(lambda x, y: (x - y) & 0xFFFFFFFF, a, b, n))
            elif opcode == "sbc":
                full = map3(
                    lambda x, y, c: x - y - (1 - c),
                    read(inst.uses[0]),
                    read(inst.uses[1]),
                    state.carry,
                    n,
                )
                state.carry = map1(lambda f: 1 if f >= 0 else 0, full, n)
                write(inst.defs[0], map1(lambda f: f & 0xFFFFFFFF, full, n))
            elif opcode == "addsl":
                shift = inst.uses[2].value
                value = map2(
                    lambda x, y: (x + (y << shift)) & 0xFFFFFFFF,
                    read(inst.uses[0]),
                    read(inst.uses[1]),
                    n,
                )
                write(inst.defs[0], value)
            elif opcode == "orrsl":
                shift = inst.uses[2].value
                value = map2(
                    lambda x, y: x
                    | ((y << shift) & 0xFFFFFFFF if shift >= 0 else y >> (-shift)),
                    read(inst.uses[0]),
                    read(inst.uses[1]),
                    n,
                )
                write(inst.defs[0], value)
            elif opcode == "bl":
                regs[14] = pc + 1
                next_pc = inst.target
            elif opcode == "bx":
                target = regs[14]
                if is_sym(target):
                    return self._concretize_addr(state, target, stack)
                next_pc = target
            elif opcode == "subspi":
                regs[13] = map1(
                    lambda v: (v - inst.uses[0].value) & 0xFFFFFFFF, regs[13], n
                )
            elif opcode == "addspi":
                regs[13] = map1(
                    lambda v: (v + inst.uses[0].value) & 0xFFFFFFFF, regs[13], n
                )
            elif opcode == "out":
                state.out.append(read(inst.uses[0]))
            elif opcode == "nop" or opcode == "mode":
                pass
            else:
                return f"unknown opcode {opcode!r} at {pc}"
            state.pc = next_pc
        return None

    def _exec_bitspec(self, state, inst, read, write, n):
        """One non-memory ``bs_*`` op.  Returns "misspec" (all lanes), a
        ``("fork-misspec", predicate)`` marker (lanes disagree), a new
        cmp-state tuple (``bs_cmp``), or None."""
        opcode = inst.opcode
        spec_mask = self.spec_mask
        if opcode == "bs_cmp":
            return (read(inst.uses[0]), read(inst.uses[1]), inst.width)
        if opcode == "bs_trunc":
            value = read(inst.uses[0])
            miss = map1(lambda v: v > spec_mask, value, n)
            if is_sym(miss):
                return ("fork-misspec", miss)
            if miss:
                return "misspec"
            write(inst.defs[0], value)
            return None
        if opcode == "bs_trunc_hi":
            miss = map1(lambda v: v != 0, read(inst.uses[0]), n)
            if is_sym(miss):
                return ("fork-misspec", miss)
            if miss:
                return "misspec"
            return None
        a = read(inst.uses[0])
        b = read(inst.uses[1])
        if opcode == "bs_add":
            wide = map2(lambda x, y: x + y, a, b, n)
        elif opcode == "bs_sub":
            wide = map2(lambda x, y: x - y, a, b, n)
        elif opcode == "bs_and":
            wide = map2(lambda x, y: x & y, a, b, n)
        elif opcode == "bs_orr":
            wide = map2(lambda x, y: x | y, a, b, n)
        elif opcode == "bs_eor":
            wide = map2(lambda x, y: x ^ y, a, b, n)
        elif opcode == "bs_lsl":
            wide = map2(lambda x, y: (x << y) if y < 32 else 0, a, b, n)
        elif opcode == "bs_lsr":
            wide = map2(lambda x, y: x >> y if y < 32 else 0, a, b, n)
        else:
            raise ValueError(f"unknown speculative opcode {opcode!r}")
        miss = map1(lambda w: w < 0 or w > spec_mask, wide, n)
        if is_sym(miss):
            return ("fork-misspec", miss)
        if miss:
            return "misspec"
        write(inst.defs[0], wide)
        return None


def _divide(opcode: str, a: int, b: int, ty) -> int:
    """C-style division/remainder (round toward zero), matching the machine."""
    if opcode == "udiv":
        return a // b
    if opcode == "urem":
        return a % b
    sa, sb = ty.to_signed(a), ty.to_signed(b)
    q = abs(sa) // abs(sb)
    r = abs(sa) % abs(sb)
    if opcode == "sdiv":
        return ty.wrap(-q if (sa < 0) != (sb < 0) else q)
    return ty.wrap(-r if sa < 0 else r)


#: sentinel returned by fork helpers: the state was replaced by children
_FORKED = object()

#: sentinel pc: the state trapped on a forked zero divisor
_TRAP_DIV = object()
