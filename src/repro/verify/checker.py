"""Bounded equivalence checking of the speculation contract.

Per function, the checker proves (for all inputs up to width ``k``) that
the BITSPEC binary — including every path through its Δ-redirect
misspeculation handlers — is architecturally equivalent to its BASELINE
twin: same trap behavior, same ``out()`` stream, same final global
memory.  The pieces:

* :func:`bounded_domain` / :func:`build_lanes` — enumerate the joint
  ``k``-bit input space into the lane tables the symbolic executor runs
  over (unsigned inputs sweep ``[0, 2^k)``; signed inputs sweep the
  two's-complement window ``[-2^(k-1), 2^(k-1))``);
* :func:`make_driver` — synthesize a whole-program harness around one
  helper function: each scalar parameter becomes a fresh ``__vfy_*``
  input global, pointer parameters bind to a matching global array, and
  the driver ``out()``s the return value plus every global so any
  divergence is architecturally visible;
* :func:`verify_function` — compile both worlds, symbolically execute
  them over the lane tables, and compare lane observations.  On
  disequality the first diverging lane is concretized into an input
  assignment, replayed *concretely* through the IR interpreter and all
  three machine engines of both worlds to confirm it is a real
  divergence (not a checker bug), and optionally emitted into the fuzz
  corpus as a replayable :class:`repro.fuzz.generator.FuzzProgram`;
* :data:`CANARIES` / :func:`run_canary` — the soundness harness: arm a
  seeded silent miscompile (:func:`repro.faults.toolchain.bend_compiler`)
  and assert the checker finds a confirmed counterexample instead of a
  proof.

Verdicts: ``proved`` (all lanes equal), ``counterexample``,
``bound-exceeded`` (lane/step/state budget), ``skipped`` (target outside
scope: region cap, unbindable pointer, no scalar inputs) and ``error``
(toolchain failure under ``strict`` compilation).
"""

from __future__ import annotations

import itertools

from repro.core.pipeline import CompilerConfig, compile_binary
from repro.frontend.ast_nodes import (
    BinaryExpr,
    CType,
    CallExpr,
    CastExpr,
    DeclStmt,
    FuncDecl,
    GlobalDecl,
    IndexExpr,
    NumExpr,
    OutStmt,
    Program,
    U32,
    U64,
    VarExpr,
    WhileStmt,
    AssignStmt,
    ExprStmt,
)
from repro.frontend.parser import parse
from repro.frontend.printer import print_program
from repro.fuzz.generator import FuzzProgram
from repro.passes.expander import ExpanderConfig
from repro.verify.executor import (
    BoundExceeded,
    DEFAULT_MAX_STATES,
    DEFAULT_STEP_BUDGET,
    SymbolicMachine,
)

#: default joint-assignment cap: two u8 inputs at k=8, or four at k=4
DEFAULT_MAX_LANES = 65_536

#: value every ``__vfy_*`` driver global takes during the profiling run —
#: small on purpose, so the profile narrows aggressively and the binary
#: under verification carries as much speculation as the squeezer allows
PROFILE_VALUE = 1


# -- bounded input domains -----------------------------------------------------


def bounded_domain(ctype: CType, k: int) -> list:
    """Every value of ``ctype`` representable in ``k`` bits, in order.

    ``k`` is clamped to the type width.  Unsigned types sweep
    ``0 .. 2^k - 1``; signed types sweep ``-2^(k-1) .. 2^(k-1) - 1`` (the
    two's-complement patterns of the low ``k`` bits), so the sign-critical
    boundary values are always inside the bound.
    """
    kk = min(k, ctype.bits)
    if ctype.signed:
        return list(range(-(1 << (kk - 1)), 1 << (kk - 1)))
    return list(range(1 << kk))


def domain_size(ctype: CType, k: int) -> int:
    return 1 << min(k, ctype.bits)


def build_lanes(domains: dict) -> tuple:
    """Lane tables for the joint assignment space.

    ``domains`` maps input names to their value lists.  Returns
    ``(tables, n_lanes)`` where ``tables[name][lane]`` is that input's
    value in the lane: the cross product in lexicographic name order,
    last name varying fastest — lane order is part of the deterministic
    output contract.
    """
    names = sorted(domains)
    tables = {name: [] for name in names}
    n = 0
    for combo in itertools.product(*(domains[name] for name in names)):
        for name, value in zip(names, combo):
            tables[name].append(value)
        n += 1
    return {name: tuple(vals) for name, vals in tables.items()}, n


# -- driver synthesis ----------------------------------------------------------


def _out_scalar(name: str, bits: int) -> list:
    """``out()`` statements exposing a scalar's full value (both halves
    for 64-bit; the high half shifts unsigned — the machine has no 64-bit
    arithmetic shift)."""
    stmts = [OutStmt(CastExpr(U32, VarExpr(name)))]
    if bits == 64:
        stmts.append(
            OutStmt(
                CastExpr(
                    U32,
                    BinaryExpr(
                        ">>", CastExpr(U64, VarExpr(name)), NumExpr(32)
                    ),
                )
            )
        )
    return stmts


def _out_array(decl: GlobalDecl, index_name: str) -> list:
    """A while-loop ``out()``-ing every element of a global array."""
    idx = VarExpr(index_name)
    body = [OutStmt(CastExpr(U32, IndexExpr(decl.name, idx)))]
    if decl.ctype.bits == 64:
        body.append(
            OutStmt(
                CastExpr(
                    U32,
                    BinaryExpr(
                        ">>",
                        CastExpr(U64, IndexExpr(decl.name, idx)),
                        NumExpr(32),
                    ),
                )
            )
        )
    body.append(AssignStmt(idx, "=", BinaryExpr("+", idx, NumExpr(1))))
    return [
        DeclStmt(U32, index_name, None, NumExpr(0)),
        WhileStmt(BinaryExpr("<", idx, NumExpr(decl.array_size)), body),
    ]


def make_driver(program: Program, func: FuncDecl) -> tuple:
    """Synthesize the verification harness program around ``func``.

    Returns ``(driver_source, symbolic_types)`` where ``symbolic_types``
    maps each fresh ``__vfy_*`` input global to its :class:`CType`.
    Raises :class:`DriverError` when the function is outside driver scope
    (a pointer parameter with no bindable global array).
    """
    symbolic_types = {}
    args = []
    for param in func.params:
        if param.ctype.pointer:
            binding = _bind_pointer(program, param.ctype)
            if binding is None:
                raise DriverError(
                    f"no global array matches pointer parameter "
                    f"{param.ctype!r} {param.name}"
                )
            args.append(VarExpr(binding))
            continue
        gname = f"__vfy_{param.name}"
        symbolic_types[gname] = param.ctype
        args.append(VarExpr(gname))

    body = []
    call = CallExpr(func.name, args)
    if func.ret_type is not None:
        body.append(DeclStmt(func.ret_type, "__vfy_ret", None, call))
        body.extend(_out_scalar("__vfy_ret", func.ret_type.bits))
    else:
        body.append(ExprStmt(call))
    loops = 0
    for decl in program.globals:
        if decl.array_size != 1:
            body.extend(_out_array(decl, f"__vfy_i{loops}"))
            loops += 1
        else:
            body.extend(_out_scalar(decl.name, decl.ctype.bits))
    for gname in sorted(symbolic_types):
        body.extend(_out_scalar(gname, symbolic_types[gname].bits))

    driver = Program(
        globals=list(program.globals)
        + [
            GlobalDecl(symbolic_types[g], g)
            for g in sorted(symbolic_types)
        ],
        functions=[f for f in program.functions if f.name != "main"]
        + [FuncDecl(None, "main", [], body)],
    )
    return print_program(driver), symbolic_types


class DriverError(Exception):
    """The target function cannot be wrapped in a verification driver."""


def _bind_pointer(program: Program, ptype: CType) -> object:
    """Name of the first global array a pointer parameter can bind to."""
    exact = None
    loose = None
    for decl in program.globals:
        if decl.array_size == 1:
            continue
        if decl.ctype.bits != ptype.bits:
            continue
        if decl.ctype.signed == ptype.signed:
            exact = exact or decl.name
        loose = loose or decl.name
    return exact or loose


# -- verdicts ------------------------------------------------------------------


def _obs_summary(obs) -> dict:
    return {"trap": obs.trap, "out": list(obs.out)}


def _engine_obs(binary, inputs: dict, engine: str) -> tuple:
    """Concrete (trap, out-stream) of one engine run."""
    try:
        sim = binary.run(dict(inputs), engine=engine)
    except Exception as exc:  # MachineError, MemoryError subclasses, …
        return (str(exc) or type(exc).__name__, ())
    return (None, tuple(sim.output))


def confirm_counterexample(
    bitspec_binary, baseline_binary, inputs: dict
) -> dict:
    """Replay a concretized counterexample through the full oracle stack.

    Runs the IR interpreter plus all four machine engines on both
    worlds (the ooo engine shares the committed trap/output contract, so
    it participates in the unanimity vote).  ``diverged`` is True only
    when each world is internally unanimous *and* the two worlds
    disagree — i.e. the divergence is a real property of the BITSPEC
    image, not executor or engine noise.
    """
    engines = ("legacy", "fast", "compiled", "ooo")
    record = {"engines": {}, "interp": None, "diverged": False}
    world_obs = {}
    for world, binary in (
        ("bitspec", bitspec_binary),
        ("baseline", baseline_binary),
    ):
        per_engine = {}
        for engine in engines:
            trap, out = _engine_obs(binary, inputs, engine)
            per_engine[engine] = {"trap": trap, "out": list(out)}
        record["engines"][world] = per_engine
        unanimous = len(
            {(v["trap"], tuple(v["out"])) for v in per_engine.values()}
        ) == 1
        record["engines"][world]["unanimous"] = unanimous
        world_obs[world] = (
            per_engine["legacy"]["trap"],
            tuple(per_engine["legacy"]["out"]),
        )
    try:
        interp = baseline_binary.interpret(dict(inputs))
        record["interp"] = {"trap": None, "out": list(interp.output)}
    except Exception as exc:
        record["interp"] = {"trap": str(exc) or type(exc).__name__, "out": []}
    record["diverged"] = (
        record["engines"]["bitspec"]["unanimous"]
        and record["engines"]["baseline"]["unanimous"]
        and world_obs["bitspec"] != world_obs["baseline"]
    )
    return record


def verify_function(
    source: str,
    function: str = "main",
    *,
    k: int = 8,
    inputs_profile: dict = None,
    inputs_run: dict = None,
    expander_enabled: bool = True,
    heuristic: str = "max",
    max_lanes: int = DEFAULT_MAX_LANES,
    step_budget: int = DEFAULT_STEP_BUDGET,
    max_states: int = DEFAULT_MAX_STATES,
    max_regions: int = 0,
    name: str = "",
) -> dict:
    """Bounded-``k`` equivalence check of one function, BITSPEC vs BASELINE.

    Returns a JSON-ready verdict record.  When the verdict is
    ``counterexample`` the record carries the concretized input
    assignment, per-world lane observations, the concrete cross-engine
    confirmation, and ``program`` — a replayable corpus entry dict.
    ``max_regions`` (when nonzero) skips functions whose squeeze produced
    more speculative regions than the cap.
    """
    inputs_profile = dict(inputs_profile or {})
    inputs_run = dict(inputs_run or {})
    verdict = {
        "name": name or function,
        "function": function,
        "k": k,
        "heuristic": heuristic,
        "verdict": None,
        "reason": "",
        "inputs": [],
        "lanes": 0,
        "regions": None,
        "bends": [],
        "stats": {},
        "counterexample": None,
    }

    program = parse(source)
    if function == "main":
        driver_source = source
        symbolic_types = {
            decl.name: decl.ctype
            for decl in program.globals
            if decl.array_size == 1 and decl.name in inputs_run
        }
        profile_inputs = inputs_profile
    else:
        func = next(
            (f for f in program.functions if f.name == function), None
        )
        if func is None:
            raise ValueError(f"no such function: {function}")
        try:
            driver_source, symbolic_types = make_driver(program, func)
        except DriverError as exc:
            verdict.update(verdict="skipped", reason=str(exc))
            return verdict
        profile_inputs = dict(inputs_profile)
        for gname in symbolic_types:
            profile_inputs[gname] = PROFILE_VALUE

    if not symbolic_types:
        verdict.update(
            verdict="skipped", reason="no scalar inputs to make symbolic"
        )
        return verdict
    verdict["inputs"] = sorted(symbolic_types)

    lanes_total = 1
    for ctype in symbolic_types.values():
        lanes_total *= domain_size(ctype, k)
    if lanes_total > max_lanes:
        verdict.update(
            verdict="bound-exceeded",
            reason=f"{lanes_total} lanes exceed --max-lanes {max_lanes}",
            lanes=lanes_total,
        )
        return verdict
    domains = {
        gname: bounded_domain(ctype, k)
        for gname, ctype in symbolic_types.items()
    }
    tables, n_lanes = build_lanes(domains)
    verdict["lanes"] = n_lanes

    expander = ExpanderConfig() if expander_enabled else ExpanderConfig.disabled()
    try:
        bitspec = compile_binary(
            driver_source,
            CompilerConfig.bitspec(heuristic, expander=expander),
            profile_inputs=profile_inputs,
            strict=True,
        )
        baseline = compile_binary(
            driver_source,
            CompilerConfig.baseline(expander=expander),
            profile_inputs=profile_inputs,
            strict=True,
        )
    except Exception as exc:
        verdict.update(
            verdict="error", reason=f"{type(exc).__name__}: {exc}"
        )
        return verdict
    verdict["bends"] = list(bitspec.toolchain_bends)

    squeeze = bitspec.squeeze_results.get(function)
    regions = squeeze.regions if squeeze is not None else 0
    verdict["regions"] = regions
    if max_regions and regions > max_regions:
        verdict.update(
            verdict="skipped",
            reason=f"{regions} speculative regions exceed cap {max_regions}",
        )
        return verdict

    observations = {}
    for world, binary in (("bitspec", bitspec), ("baseline", baseline)):
        machine = SymbolicMachine(
            binary,
            tables,
            inputs=inputs_run,
            step_budget=step_budget,
            max_states=max_states,
        )
        try:
            observations[world] = machine.run()
        except BoundExceeded as exc:
            verdict.update(
                verdict="bound-exceeded", reason=f"{world}: {exc}"
            )
            return verdict
        verdict["stats"][world] = {
            "paths": machine.paths,
            "forks": machine.forks,
            "lane_steps": machine.lane_steps,
            "misspec_lanes": machine.misspec_lanes,
        }

    names = sorted(tables)
    for lane_id in range(n_lanes):
        a = observations["bitspec"][lane_id]
        b = observations["baseline"][lane_id]
        if a == b:
            continue
        cex_inputs = {gname: tables[gname][lane_id] for gname in names}
        replay_inputs = dict(inputs_run)
        replay_inputs.update(cex_inputs)
        confirmation = confirm_counterexample(bitspec, baseline, replay_inputs)
        cex_program = FuzzProgram(
            source=driver_source,
            inputs_profile=profile_inputs,
            inputs_run=replay_inputs,
            seed=None,
            expander_enabled=expander_enabled,
            note=f"verify counterexample: {name or function} k={k} lane={lane_id}",
        )
        verdict.update(
            verdict="counterexample",
            counterexample={
                "lane": lane_id,
                "inputs": cex_inputs,
                "observed": {
                    "bitspec": _obs_summary(a),
                    "baseline": _obs_summary(b),
                },
                "globals_diff": [
                    ga[0]
                    for ga, gb in zip(a.globals_image, b.globals_image)
                    if ga != gb
                ],
                "confirmation": confirmation,
            },
            program={
                "source": cex_program.source,
                "inputs_profile": cex_program.inputs_profile,
                "inputs_run": cex_program.inputs_run,
                "expander_enabled": cex_program.expander_enabled,
                "note": cex_program.note,
            },
        )
        return verdict

    verdict.update(verdict="proved")
    return verdict


def list_targets(source: str) -> list:
    """Names of the verifiable functions in a program (helpers, then main)."""
    program = parse(source)
    helpers = sorted(
        f.name for f in program.functions if f.name != "main"
    )
    return helpers + ["main"]


# -- soundness canaries --------------------------------------------------------

#: handcrafted programs, one per bend kind: arming the named compiler bend
#: over the source MUST produce a confirmed counterexample.  Each source is
#: shaped so the squeezer emits the instruction the bend breaks (variables
#: must be *declared wide* but *profiled narrow* to be squeezed) and so the
#: bounded domain contains lanes where the broken instruction's wrong
#: result is architecturally visible.
_CANARY_LOOP = (
    "u32 x;\n"
    "void main()\n"
    "{\n"
    "    u32 t = 0;\n"
    "    u32 i = 0;\n"
    "    while (i < 8)\n"
    "    {\n"
    "        t = t + x;\n"
    "        i = i + 1;\n"
    "    }\n"
    "    out(t);\n"
    "}\n"
)

CANARIES = (
    {
        # the squeezed add becomes a subtract: lanes with x <= 200 compute
        # 200 - x in-slice without misspeculating, so recovery never runs
        "name": "canary-bs-op-swap",
        "kind": "bs-op-swap",
        "seed": 0,
        "k": 8,
        "source": (
            "u32 x;\n"
            "void main()\n"
            "{\n"
            "    u32 t = 200;\n"
            "    u32 a = t + x;\n"
            "    out(a);\n"
            "}\n"
        ),
        "inputs_profile": {"x": 3},
        "inputs_run": {"x": 0},
    },
    {
        # the wide mul result bridges into the narrowed add through a
        # bs_trunc; dropping its check silently feeds m & 0xFF to lanes
        # with m = x*x > 255 (every x >= 16)
        "name": "canary-bs-trunc-drop",
        "kind": "bs-trunc-drop",
        "seed": 0,
        "k": 8,
        "source": (
            "u32 x;\n"
            "void main()\n"
            "{\n"
            "    u32 m = x * x;\n"
            "    u32 t = m + 1;\n"
            "    out(t);\n"
            "    out(m);\n"
            "}\n"
        ),
        "inputs_profile": {"x": 3},
        "inputs_run": {"x": 0},
    },
    {
        # sign extension emitted as zero extension: every negative lane
        # reads back 2^8 - |x| instead of its sign-extended value
        "name": "canary-sxt-drop",
        "kind": "sxt-drop",
        "seed": 0,
        "k": 8,
        "source": (
            "s8 x;\n"
            "void main()\n"
            "{\n"
            "    s32 w = (s32)x;\n"
            "    out((u32)(w + 1000));\n"
            "}\n"
        ),
        "inputs_profile": {"x": -3},
        "inputs_run": {"x": 0},
    },
    {
        # the speculative loop bound (bs_cmp #8) becomes #9: lanes with
        # 1 <= x <= 28 run nine iterations in the spec world and finish
        # without ever misspeculating
        "name": "canary-imm-off-by-one",
        "kind": "imm-off-by-one",
        "seed": 0,
        "k": 8,
        "source": _CANARY_LOOP,
        "inputs_profile": {"x": 3},
        "inputs_run": {"x": 0},
    },
    {
        # two regions, two handlers: region 1's bs_add skeleton branch is
        # rewired to region 2's handler (seed 1 selects the bs_add site,
        # whose misspeculating lanes x >= 246 are inside the k=8 domain),
        # so those lanes recover through the wrong code and lose out(a)
        "name": "canary-handler-misroute",
        "kind": "handler-misroute",
        "seed": 1,
        "k": 8,
        "source": (
            "u32 x;\n"
            "void main()\n"
            "{\n"
            "    u32 a = x + 10;\n"
            "    out(a);\n"
            "    u32 b = x + 100;\n"
            "    out(b);\n"
            "}\n"
        ),
        "inputs_profile": {"x": 3},
        "inputs_run": {"x": 0},
    },
)


def run_canary(canary: dict, **overrides) -> dict:
    """Verify one canary under its armed compiler bend.

    Returns the verdict record plus ``caught`` — True only when the bend
    actually applied, the checker produced a counterexample, and the
    counterexample concretely diverges on every engine pair.  The bend
    context wraps both the verification compile and the confirmation
    replays, so the recompiled image reproduces the exact miscompile.
    """
    from repro.faults.toolchain import bend_compiler

    kwargs = {
        "k": canary["k"],
        "inputs_profile": canary["inputs_profile"],
        "inputs_run": canary["inputs_run"],
        "name": canary["name"],
    }
    kwargs.update(overrides)
    with bend_compiler(canary["kind"], seed=canary["seed"]):
        verdict = verify_function(
            canary["source"], canary.get("function", "main"), **kwargs
        )
    verdict["bend_kind"] = canary["kind"]
    cex = verdict.get("counterexample")
    verdict["caught"] = bool(
        verdict["bends"]
        and verdict["verdict"] == "counterexample"
        and cex
        and cex["confirmation"]["diverged"]
    )
    return verdict
