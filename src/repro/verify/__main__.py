"""CLI driver: ``python -m repro.verify``.

Three modes, combinable except where noted:

``--canary``
    Run the seeded broken-compiler canaries (:data:`repro.verify.CANARIES`)
    and assert every bend is caught with a confirmed concrete
    counterexample.  Exit 0 iff all are caught.

``--corpus DIR``
    Verify every function of every corpus entry in ``DIR`` (default mode,
    over ``tests/corpus`` when no mode flag is given).

``--workloads NAME [NAME ...]``
    Verify the named benchmark programs (``all`` = every registered
    workload) using their train inputs as the profile and test inputs as
    the concrete non-symbolic globals.

The report is deterministic JSON (sorted keys, no timestamps, repo-relative
names) so CI can assert byte-identical reruns.  Exit status: 0 when no
counterexample was found (normal modes) or every canary was caught
(``--canary``); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzz.corpus import iter_corpus, save_counterexample
from repro.verify.checker import (
    CANARIES,
    DEFAULT_MAX_LANES,
    list_targets,
    run_canary,
    verify_function,
)
from repro.verify.executor import DEFAULT_MAX_STATES, DEFAULT_STEP_BUDGET

#: verdict buckets tallied in the report summary
VERDICTS = ("proved", "counterexample", "bound-exceeded", "skipped", "error")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Bounded symbolic equivalence checking: prove BITSPEC == "
            "BASELINE for all inputs up to width k, or concretize a "
            "counterexample into the fuzz corpus."
        ),
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        help="verify every entry in a fuzz-corpus directory "
        "(default mode: tests/corpus)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="verify the named workloads ('all' = every registered one)",
    )
    parser.add_argument(
        "--canary",
        action="store_true",
        help="run the seeded broken-compiler soundness canaries",
    )
    parser.add_argument(
        "--function",
        metavar="NAME",
        help="restrict verification to one function name",
    )
    parser.add_argument(
        "--k", type=int, default=8, help="input bit-width bound (default 8)"
    )
    parser.add_argument(
        "--heuristic",
        default="max",
        help="squeezer width heuristic for the BITSPEC world (default max)",
    )
    parser.add_argument(
        "--max-regions",
        type=int,
        default=0,
        help="skip functions with more speculative regions (0 = uncapped)",
    )
    parser.add_argument(
        "--max-lanes",
        type=int,
        default=DEFAULT_MAX_LANES,
        help=f"joint input-domain size cap (default {DEFAULT_MAX_LANES})",
    )
    parser.add_argument(
        "--step-budget",
        type=int,
        default=DEFAULT_STEP_BUDGET,
        help="lane-step execution budget per world "
        f"(default {DEFAULT_STEP_BUDGET})",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=DEFAULT_MAX_STATES,
        help=f"forked-state cap per world (default {DEFAULT_MAX_STATES})",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        help="write the full report as deterministic JSON to OUT",
    )
    parser.add_argument(
        "--emit-corpus",
        metavar="DIR",
        help="save each counterexample as a replayable corpus entry in DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-function lines"
    )
    return parser


def _bounds(args) -> dict:
    return dict(
        k=args.k,
        heuristic=args.heuristic,
        max_lanes=args.max_lanes,
        step_budget=args.step_budget,
        max_states=args.max_states,
        max_regions=args.max_regions,
    )


def _report_line(verdict: dict) -> str:
    extra = ""
    if verdict["verdict"] == "counterexample":
        extra = f"  inputs={verdict['counterexample']['inputs']}"
    elif verdict["reason"]:
        extra = f"  ({verdict['reason']})"
    lanes = verdict.get("lanes") or 0
    return (
        f"{verdict['name']:<40} {verdict['verdict']:<15}"
        f" lanes={lanes:<9}{extra}"
    )


def _emit(verdict: dict, out_dir: str, emitted: list) -> None:
    emitted.append(str(save_counterexample(verdict, out_dir)))


def _verify_program(source, name, targets, results, args, emitted, log):
    for function in targets:
        verdict = verify_function(
            source.source,
            function,
            inputs_profile=source.inputs_profile,
            inputs_run=source.inputs_run,
            expander_enabled=source.expander_enabled,
            name=f"{name}:{function}",
            **_bounds(args),
        )
        results.append(verdict)
        log(_report_line(verdict))
        if verdict["verdict"] == "counterexample" and args.emit_corpus:
            _emit(verdict, args.emit_corpus, emitted)


def _corpus_targets(program, args) -> list:
    targets = list_targets(program.source)
    if args.function:
        targets = [t for t in targets if t == args.function]
    return targets


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if not (args.corpus or args.workloads or args.canary):
        args.corpus = "tests/corpus"

    log = (lambda _line: None) if args.quiet else print
    results = []
    emitted = []
    modes = []

    if args.canary:
        modes.append("canary")
        for canary in CANARIES:
            if args.function and canary["name"] != args.function:
                continue
            verdict = run_canary(canary, **_bounds(args))
            results.append(verdict)
            status = "caught" if verdict["caught"] else "MISSED"
            log(
                f"{verdict['name']:<40} {status:<15}"
                f" verdict={verdict['verdict']}"
            )
            if verdict["verdict"] == "counterexample" and args.emit_corpus:
                _emit(verdict, args.emit_corpus, emitted)

    if args.corpus:
        modes.append("corpus")
        entries = list(iter_corpus(args.corpus))
        if not entries:
            print(f"no corpus entries under {args.corpus}", file=sys.stderr)
            return 2
        for path, program in entries:
            _verify_program(
                program,
                path.stem,
                _corpus_targets(program, args),
                results,
                args,
                emitted,
                log,
            )

    if args.workloads:
        modes.append("workloads")
        from repro.fuzz.generator import FuzzProgram
        from repro.workloads.base import get_workload, workload_names

        names = args.workloads
        if names == ["all"]:
            names = workload_names()
        for wname in names:
            workload = get_workload(wname)
            program = FuzzProgram(
                source=workload.source,
                inputs_profile=workload.inputs("train", 0),
                inputs_run=workload.inputs("test", 0),
                seed=None,
                expander_enabled=True,
                note=f"workload {wname}",
            )
            _verify_program(
                program,
                wname,
                _corpus_targets(program, args),
                results,
                args,
                emitted,
                log,
            )

    summary = {v: 0 for v in VERDICTS}
    for verdict in results:
        summary[verdict["verdict"]] += 1
    canaries = [v for v in results if "caught" in v]
    report = {
        "schema": 1,
        "modes": modes,
        "k": args.k,
        "results": results,
        "summary": summary,
        "emitted": emitted,
        "all_canaries_caught": all(v["caught"] for v in canaries)
        if canaries
        else None,
    }
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )

    counted = sum(summary[v] for v in VERDICTS)
    log(
        f"verified {counted} function(s): "
        + ", ".join(f"{summary[v]} {v}" for v in VERDICTS if summary[v])
    )

    failed = summary["counterexample"] > 0
    if args.canary:
        missed = [v["name"] for v in canaries if not v["caught"]]
        if missed:
            print(f"MISSED canaries: {', '.join(missed)}", file=sys.stderr)
            return 1
        # counterexamples in canary mode are the expected outcome
        failed = any(
            v["verdict"] == "counterexample"
            for v in results
            if "caught" not in v
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
