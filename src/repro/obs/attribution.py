"""Attribution engine: join per-pc events with compiler debug metadata.

Takes a :class:`~repro.obs.events.PcSample` from an obs-enabled run plus
the :class:`~repro.backend.layout.DebugInfo` the backend emitted at link
time, and produces :class:`Tally` objects — full
:class:`~repro.arch.energy.EnergyCounters` plus instruction/stall/
misspeculation counts — grouped any way the report needs: per variable,
per function, per speculative region, per handler, per world
(spec/orig/handler/skeleton).

The cornerstone is the **conservation invariant**: the per-pc
reconstruction (:func:`repro.arch.predecode.pc_counters`) uses the same
derivation as the simulator's own fold, so summing every pc's tally
reproduces the aggregate :class:`~repro.arch.machine.SimResult` counters
*bit for bit* — integer-exact, no rounding tolerance.
:func:`check_conservation` verifies it; the fuzzer's machine oracle and
tests/test_obs.py enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.arch.energy import EnergyBreakdown, EnergyCounters, compute_energy
from repro.arch.predecode import PC_COUNTER_FIELDS, pc_counters
from repro.obs.events import PcSample

#: DTS instruction classes, mirrored here to avoid importing the machine
_CLASSES = ("alu32", "alu8", "mul", "div", "move", "mem", "branch")


@dataclass
class Tally:
    """Event counts and energy attributable to one group of pcs."""

    counters: EnergyCounters = field(default_factory=EnergyCounters)
    class_counts: dict = field(
        default_factory=lambda: {c: 0 for c in _CLASSES}
    )
    instructions: int = 0
    cycles: int = 0
    misspeculations: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    spill_loads: int = 0
    spill_stores: int = 0
    copies: int = 0
    #: times a misspeculation redirected control *into* this group's handler
    handler_entries: int = 0
    #: static instructions in the group that executed at least once
    static_insts: int = 0

    def add(self, fields: dict, counters: EnergyCounters, classes: dict) -> None:
        self.counters.merge(counters)
        for cls in _CLASSES:
            self.class_counts[cls] += classes[cls]
        for name in PC_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + fields[name])
        self.static_insts += 1

    def energy(
        self, scale: Optional[dict] = None, *, slice_bits: int = 8
    ) -> EnergyBreakdown:
        return compute_energy(self.counters, scale=scale, slice_bits=slice_bits)

    @property
    def misspec_rate(self) -> float:
        """Misspeculations per dynamic instruction of this group."""
        if not self.instructions:
            return 0.0
        return self.misspeculations / self.instructions


def source_var(name: str) -> str:
    """Collapse a compiler value name to its source-variable stem.

    The squeezer and SSA construction derive names by suffixing
    (``x.loop.1.sp.n.5``, ``crc.arg8``, ``add.3.i2``); the stem before
    the first dot is the source-level identifier (or the opcode for
    compiler temporaries).
    """
    return name.split(".", 1)[0] if name else ""


class Attribution:
    """Per-pc tallies over one run, with grouping views.

    Built by :func:`attribute`.  ``per_pc`` maps every pc that executed
    to its :class:`Tally`; the ``by_*`` methods fold those into report
    groups using the link-time :class:`DebugInfo`.
    """

    def __init__(self, linked, sample: PcSample) -> None:
        self.linked = linked
        self.sample = sample
        self.debug = linked.debug
        self.per_pc: dict[int, tuple] = {}
        narrow_rf = sample.narrow_rf
        for pc in range(sample.n_insts):
            if sample.exec_counts[pc]:
                self.per_pc[pc] = pc_counters(linked, narrow_rf, pc, sample)

    # -- grouping -------------------------------------------------------------

    def group_by(self, key_fn) -> dict:
        """Fold per-pc tallies into groups keyed by ``key_fn(pc)``."""
        groups: dict = {}
        for pc, (fields, counters, classes) in self.per_pc.items():
            key = key_fn(pc)
            tally = groups.get(key)
            if tally is None:
                tally = groups[key] = Tally()
            tally.add(fields, counters, classes)
        return groups

    def total(self) -> Tally:
        """One tally over every executed pc (the conservation side)."""
        total = Tally()
        for fields, counters, classes in self.per_pc.values():
            total.add(fields, counters, classes)
        return total

    def by_function(self) -> dict:
        owner = self.linked.owner
        return self.group_by(lambda pc: owner[pc])

    def by_world(self) -> dict:
        world = self.debug.world
        return self.group_by(lambda pc: world[pc] or "nonspec")

    def by_region(self) -> dict:
        """Group by (function, speculative-region id); None = outside."""
        owner = self.linked.owner
        region = self.debug.region
        return self.group_by(lambda pc: (owner[pc], region[pc]))

    def by_variable(self, normalize: bool = True) -> dict:
        """Group by defining variable name; ``""`` = unattributed pcs.

        ``normalize`` collapses SSA/clone suffixes to the source-level
        stem (see :func:`source_var`).
        """
        var = self.debug.var
        if normalize:
            return self.group_by(lambda pc: source_var(var[pc]))
        return self.group_by(lambda pc: var[pc])

    def by_handler(self) -> dict:
        """Tallies of handler blocks, keyed by handler block label.

        Each tally's ``handler_entries`` counts misspeculations that
        redirected into it (via the Δ-skeleton map); the rest of the
        tally is the handler's own re-execution cost.
        """
        debug = self.debug
        groups: dict = {}
        for pc, (fields, counters, classes) in self.per_pc.items():
            if debug.world[pc] != "handler":
                continue
            key = debug.block[pc]
            tally = groups.get(key)
            if tally is None:
                tally = groups[key] = Tally()
            tally.add(fields, counters, classes)
        # charge entries: spec pc -> handler entry pc -> its block label
        for spec_pc, handler_pc in debug.handler_of.items():
            miss = (
                self.sample.misspecs[spec_pc]
                if spec_pc < len(self.sample.misspecs)
                else 0
            )
            if not miss:
                continue
            label = debug.block[handler_pc]
            tally = groups.get(label)
            if tally is None:
                tally = groups[label] = Tally()
            tally.handler_entries += miss
        return groups

    def misspeculating_pcs(self) -> list:
        """(pc, count) for every pc that misspeculated, most first."""
        out = [
            (pc, self.sample.misspecs[pc])
            for pc in self.per_pc
            if self.sample.misspecs[pc]
        ]
        out.sort(key=lambda item: (-item[1], item[0]))
        return out


def attribute(linked, sample: PcSample) -> Attribution:
    """Build the attribution for one obs-enabled run."""
    if sample is None:
        raise ValueError(
            "SimResult has no obs sample — run with obs=True "
            "(e.g. binary.run(inputs, obs=True))"
        )
    return Attribution(linked, sample)


#: SimResult integer fields re-summed by the conservation check
_RESULT_FIELDS = PC_COUNTER_FIELDS


def check_conservation(attribution: Attribution, sim) -> list:
    """Verify attribution totals equal the ``SimResult`` aggregates.

    Returns a list of human-readable mismatch descriptions — empty means
    the invariant holds *exactly* (integer equality, not tolerance).
    Checks every SimResult count, every EnergyCounters field, and the
    dynamic class mix.
    """
    total = attribution.total()
    mismatches = []

    def check(name, got, want):
        if got != want:
            mismatches.append(f"{name}: attributed {got} != simulated {want}")

    for name in _RESULT_FIELDS:
        check(name, getattr(total, name), getattr(sim, name))

    tc, sc = total.counters, sim.counters
    for name in (
        "icache_l1", "icache_l2", "icache_mem",
        "dcache_l1", "dcache_l2", "dcache_mem",
        "alu32_ops", "alu8_ops", "mul_ops", "div_ops", "move_ops",
        "cycles",
    ):
        check(f"counters.{name}", getattr(tc, name), getattr(sc, name))
    for width in (1, 2, 4):
        check(
            f"counters.rf_reads_by_width[{width}]",
            tc.rf_reads_by_width[width],
            sc.rf_reads_by_width[width],
        )
        check(
            f"counters.rf_writes_by_width[{width}]",
            tc.rf_writes_by_width[width],
            sc.rf_writes_by_width[width],
        )
    for cls in _CLASSES:
        check(
            f"class_counts[{cls}]",
            total.class_counts[cls],
            sim.class_counts[cls],
        )
    return mismatches
