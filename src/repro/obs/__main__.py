"""``python -m repro.obs`` — attribution reports from the command line.

Subcommands:

``report``
    Compile and simulate one workload×config with observability enabled,
    then print the attribution report (per-variable misspeculation and
    energy, per-region and per-world breakdowns, handler re-execution
    cost, a BASELINE comparison, compiler pass statistics).  ``--json``
    additionally writes the machine-readable artifact.

``overhead``
    Measure the observability overhead on the mini roster: wall-clock of
    a plain fast-path run vs an obs-enabled run plus full attribution.
    The acceptance bar is a ratio below 2×.

Config names accept the bench presets (``baseline``, ``bitspec-max``,
``thumb``, ...) plus the paper-style aliases ``BASELINE``, ``BITSPEC``,
``NOSPEC``, ``THUMB`` and ``DTS`` (case-insensitive).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.__main__ import CONFIG_FACTORIES, ROSTERS

#: paper-style spellings accepted anywhere a config name is (lowercased)
CONFIG_ALIASES = {
    "baseline": "baseline",
    "bitspec": "bitspec-max",
    "nospec": "nospec",
    "thumb": "thumb",
    "dts": "dts",
}


def resolve_config(name: str):
    """Config preset name / paper alias → a fresh CompilerConfig."""
    key = CONFIG_ALIASES.get(name.lower(), name.lower())
    factory = CONFIG_FACTORIES.get(key)
    if factory is None:
        choices = sorted(CONFIG_FACTORIES) + sorted(
            a.upper() for a in CONFIG_ALIASES if a not in CONFIG_FACTORIES
        )
        raise SystemExit(
            f"unknown config {name!r}; choose from: {', '.join(choices)}"
        )
    return factory()


def cmd_report(args) -> int:
    from repro.obs.report import build_report, render_json, render_text

    config = resolve_config(args.config)
    report = build_report(
        args.workload,
        config,
        run_kind=args.run_kind,
        run_seed=args.run_seed,
        profile_kind=args.profile_kind,
        profile_seed=args.profile_seed,
        baseline=not args.no_baseline,
    )
    sys.stdout.write(render_text(report, top=args.top))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(render_json(report, top=args.top), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.mismatches else 0


def cmd_overhead(args) -> int:
    from repro.eval.harness import get_binary
    from repro.obs.attribution import attribute
    from repro.workloads import get_workload

    config = resolve_config(args.config)
    workloads = ROSTERS[args.roster]
    plain_total = obs_total = 0.0
    print(f"observability overhead, roster={args.roster} config={config.name}")
    for name in workloads:
        binary = get_binary(name, config)
        inputs = get_workload(name).inputs("test", 0)
        binary.run(inputs)  # warm predecode cache for both sides
        t0 = time.perf_counter()
        for _ in range(args.repeat):
            binary.run(inputs)
        plain = (time.perf_counter() - t0) / args.repeat
        t0 = time.perf_counter()
        for _ in range(args.repeat):
            sim = binary.run(inputs, obs=True)
            attribute(binary.linked, sim.obs).total()
        obs = (time.perf_counter() - t0) / args.repeat
        plain_total += plain
        obs_total += obs
        print(f"  {name:<14} plain={plain * 1e3:8.2f} ms"
              f"  obs+attr={obs * 1e3:8.2f} ms  ratio={obs / plain:5.2f}x")
    ratio = obs_total / plain_total if plain_total else 0.0
    print(f"overall ratio: {ratio:.2f}x (budget: < 2.00x)")
    return 0 if ratio < 2.0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability & attribution reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="attribution report for one run")
    rep.add_argument("--workload", required=True, help="workload name (e.g. crc32)")
    rep.add_argument(
        "--config",
        default="BITSPEC",
        help="config preset or alias (default: BITSPEC = bitspec-max)",
    )
    rep.add_argument("--top", type=int, default=10, help="rows per top-N table")
    rep.add_argument("--json", default=None, help="also write JSON artifact here")
    rep.add_argument("--run-kind", default="test", help="run input kind")
    rep.add_argument("--run-seed", type=int, default=0, help="run input seed")
    rep.add_argument(
        "--profile-kind",
        default="test",
        help="profile input kind (profile != run provokes misspeculation)",
    )
    rep.add_argument("--profile-seed", type=int, default=0, help="profile seed")
    rep.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the BASELINE comparison run",
    )
    rep.set_defaults(func=cmd_report)

    over = sub.add_parser("overhead", help="measure obs overhead vs plain runs")
    over.add_argument(
        "--roster", choices=sorted(ROSTERS), default="mini", help="workload roster"
    )
    over.add_argument("--config", default="BITSPEC", help="config preset or alias")
    over.add_argument("--repeat", type=int, default=3, help="timing repetitions")
    over.set_defaults(func=cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
