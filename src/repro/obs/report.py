"""Render attribution results as a text report and a JSON artifact.

One entry point, :func:`build_report`, runs a workload×config with obs
enabled, attributes the sample, checks conservation, and (by default)
runs the BASELINE config on the same inputs for the side-by-side energy
comparison.  :func:`render_text` / :func:`render_json` turn the result
into the two artifacts ``python -m repro.obs report`` emits.

Everything rendered is deterministic: counts are exact integers from the
simulator, energies are fixed-precision sums of those counts times the
model constants — which is what lets tests pin a golden report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import CompilerConfig
from repro.eval.harness import get_binary
from repro.obs.attribution import Attribution, attribute, check_conservation
from repro.obs.events import EventBus, dts_mode_events, events_from_sample
from repro.workloads import get_workload


@dataclass
class ObsReport:
    """Everything one obs run produced, ready to render."""

    workload: str
    config: CompilerConfig
    attribution: Attribution
    sim: object
    mismatches: list
    pass_stats: dict
    event_counts: dict
    events_dropped: int
    #: per-function Tally of the BASELINE run on the same inputs (or None)
    baseline_by_function: Optional[dict] = None
    baseline_total: Optional[object] = None


def build_report(
    workload_name: str,
    config: CompilerConfig,
    *,
    run_kind: str = "test",
    run_seed: int = 0,
    profile_kind: str = "test",
    profile_seed: int = 0,
    baseline: bool = True,
    bus_capacity: int = 65536,
) -> ObsReport:
    """Run with obs and attribute; optionally also run BASELINE."""
    workload = get_workload(workload_name)
    inputs = workload.inputs(run_kind, run_seed)
    binary = get_binary(
        workload_name,
        config,
        profile_kind=profile_kind,
        profile_seed=profile_seed,
    )
    sim = binary.run(inputs, obs=True)
    attribution = attribute(binary.linked, sim.obs)
    mismatches = check_conservation(attribution, sim)

    bus = EventBus(capacity=bus_capacity)
    bus.post_all(events_from_sample(sim.obs, binary.linked.debug))
    if config.voltage_scaling == "timesqueezing":
        from repro.arch.dts import DTSModel

        bus.post_all(
            dts_mode_events(sim.class_counts, DTSModel().slack_profile)
        )
    event_counts = bus.counts_by_kind()

    report = ObsReport(
        workload=workload_name,
        config=config,
        attribution=attribution,
        sim=sim,
        mismatches=mismatches,
        pass_stats=binary.pass_stats,
        event_counts=event_counts,
        events_dropped=bus.dropped,
    )

    if baseline and config.name != "baseline":
        base_binary = get_binary(
            workload_name,
            CompilerConfig.baseline(),
            profile_kind=profile_kind,
            profile_seed=profile_seed,
        )
        base_sim = base_binary.run(inputs, obs=True)
        base_attr = attribute(base_binary.linked, base_sim.obs)
        report.baseline_by_function = base_attr.by_function()
        report.baseline_total = base_attr.total()
    return report


def _region_labels(region_keys) -> dict:
    """(function, region-id) → stable ``func#SR<k>`` display labels.

    Raw region ids come from a process-global counter, so their absolute
    values depend on how much compilation ran earlier in the process.
    Reports renumber them per function (ascending original id), which is
    deterministic for a given binary — and golden-testable.
    """
    labels = {}
    per_func: dict = {}
    for func, region in sorted(
        (k for k in region_keys if k[1] is not None),
        key=lambda k: (k[0], k[1]),
    ):
        ordinal = per_func[func] = per_func.get(func, 0) + 1
        labels[(func, region)] = f"{func}#SR{ordinal}"
    return labels


# -- text rendering -----------------------------------------------------------


def _fmt_row(cells, widths, aligns) -> str:
    out = []
    for cell, width, align in zip(cells, widths, aligns):
        text = str(cell)
        out.append(text.ljust(width) if align == "l" else text.rjust(width))
    return "  ".join(out).rstrip()


def _table(headers, rows, aligns) -> list:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [_fmt_row(headers, widths, aligns)]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(_fmt_row(row, widths, aligns))
    return lines


def _pj(value: float) -> str:
    return f"{value:.1f}"


def _pct(part: float, whole: float) -> str:
    if not whole:
        return "0.0%"
    return f"{100.0 * part / whole:.1f}%"


def _rate(tally) -> str:
    return f"{tally.misspec_rate:.6f}"


def render_text(report: ObsReport, *, top: int = 10) -> str:
    """The human-readable report (deterministic; golden-testable)."""
    a = report.attribution
    total = a.total()
    total_energy = total.energy().total
    lines = []
    push = lines.append

    push(f"== repro.obs report: {report.workload} × {report.config.name} ==")
    push("")
    conserved = "exact" if not report.mismatches else "VIOLATED"
    push(
        f"totals   instructions={total.instructions}  cycles={total.cycles}"
        f"  misspeculations={total.misspeculations}"
        f"  energy={_pj(total_energy)} pJ"
    )
    breakdown = total.energy()
    push(
        f"energy   alu={_pj(breakdown.alu)}  regfile={_pj(breakdown.regfile)}"
        f"  dcache={_pj(breakdown.dcache)}  icache={_pj(breakdown.icache)}"
        f"  pipeline={_pj(breakdown.pipeline)}"
    )
    push(f"conservation vs SimResult aggregates: {conserved}")
    for mismatch in report.mismatches:
        push(f"  !! {mismatch}")
    push("")

    # -- per-variable energy ---------------------------------------------------
    by_var = a.by_variable()
    var_rows = sorted(
        by_var.items(), key=lambda kv: (-kv[1].energy().total, kv[0])
    )
    push(f"-- energy by variable (top {top}) --")
    rows = [
        (
            name or "(unattributed)",
            tally.instructions,
            tally.misspeculations,
            _rate(tally),
            _pj(tally.energy().total),
            _pct(tally.energy().total, total_energy),
        )
        for name, tally in var_rows[:top]
    ]
    rest = var_rows[top:]
    lines.extend(
        _table(
            ("variable", "insts", "misspec", "miss/inst", "energy pJ", "share"),
            rows,
            ("l", "r", "r", "r", "r", "r"),
        )
    )
    if rest:
        rest_energy = sum(t.energy().total for _, t in rest)
        push(
            f"(+ {len(rest)} more variables, {_pj(rest_energy)} pJ, "
            f"{_pct(rest_energy, total_energy)})"
        )
    push("")

    # -- top misspeculating variables -----------------------------------------
    miss_rows = sorted(
        (item for item in by_var.items() if item[1].misspeculations),
        key=lambda kv: (-kv[1].misspeculations, kv[0]),
    )
    push(f"-- top misspeculating variables (top {top}) --")
    if miss_rows:
        lines.extend(
            _table(
                ("variable", "misspec", "insts", "miss/inst", "energy pJ"),
                [
                    (
                        name or "(unattributed)",
                        t.misspeculations,
                        t.instructions,
                        _rate(t),
                        _pj(t.energy().total),
                    )
                    for name, t in miss_rows[:top]
                ],
                ("l", "r", "r", "r", "r"),
            )
        )
    else:
        push("(no misspeculations)")
    push("")

    # -- energy by world / by region ------------------------------------------
    push("-- energy by world --")
    worlds = a.by_world()
    lines.extend(
        _table(
            ("world", "insts", "misspec", "energy pJ", "share"),
            [
                (
                    world,
                    t.instructions,
                    t.misspeculations,
                    _pj(t.energy().total),
                    _pct(t.energy().total, total_energy),
                )
                for world, t in sorted(worlds.items())
            ],
            ("l", "r", "r", "r", "r"),
        )
    )
    push("")

    regions = a.by_region()
    labels = _region_labels(regions)
    push("-- energy by speculative region --")
    if labels:
        lines.extend(
            _table(
                ("region", "insts", "misspec", "energy pJ", "share"),
                [
                    (
                        labels[key],
                        regions[key].instructions,
                        regions[key].misspeculations,
                        _pj(regions[key].energy().total),
                        _pct(regions[key].energy().total, total_energy),
                    )
                    for key in sorted(labels)
                ],
                ("l", "r", "r", "r", "r"),
            )
        )
    else:
        push("(no speculative regions executed)")
    push("")

    # -- handlers: re-execution cost ------------------------------------------
    handlers = a.by_handler()
    push("-- misspeculation handlers (re-execution cost) --")
    if handlers:
        lines.extend(
            _table(
                ("handler", "entries", "insts", "energy pJ"),
                [
                    (
                        label,
                        t.handler_entries,
                        t.instructions,
                        _pj(t.energy().total),
                    )
                    for label, t in sorted(handlers.items())
                ],
                ("l", "r", "r", "r"),
            )
        )
    else:
        push("(no handlers executed)")
    push("")

    # -- BASELINE vs this config ----------------------------------------------
    if report.baseline_by_function is not None:
        push(f"-- energy by function: BASELINE vs {report.config.name} --")
        ours = a.by_function()
        base = report.baseline_by_function
        names = sorted(set(ours) | set(base))
        rows = []
        for name in names:
            if name == "__skeleton__":
                continue
            b = base.get(name)
            o = ours.get(name)
            b_energy = b.energy().total if b else 0.0
            o_energy = o.energy().total if o else 0.0
            ratio = f"{o_energy / b_energy:.3f}" if b_energy else "-"
            rows.append((name, _pj(b_energy), _pj(o_energy), ratio))
        base_total = report.baseline_total.energy().total
        rows.append(
            (
                "(total)",
                _pj(base_total),
                _pj(total_energy),
                f"{total_energy / base_total:.3f}" if base_total else "-",
            )
        )
        lines.extend(
            _table(
                ("function", "BASELINE pJ", f"{report.config.name} pJ", "ratio"),
                rows,
                ("l", "r", "r", "r"),
            )
        )
        push("")

    # -- events ---------------------------------------------------------------
    push("-- events (batched per-pc) --")
    if report.event_counts:
        lines.extend(
            _table(
                ("kind", "count"),
                [(k, report.event_counts[k]) for k in sorted(report.event_counts)],
                ("l", "r"),
            )
        )
    else:
        push("(no events)")
    if report.events_dropped:
        push(f"(ring buffer dropped {report.events_dropped} events)")
    push("")

    # -- pass statistics -------------------------------------------------------
    push("-- compiler pass statistics --")
    if report.pass_stats:
        rows = [
            (pass_name, counter, count)
            for pass_name in sorted(report.pass_stats)
            for counter, count in sorted(report.pass_stats[pass_name].items())
        ]
        lines.extend(
            _table(("pass", "counter", "count"), rows, ("l", "l", "r"))
        )
    else:
        push("(no pass statistics collected)")
    push("")
    return "\n".join(lines)


# -- JSON rendering -----------------------------------------------------------


def _tally_dict(tally) -> dict:
    breakdown = tally.energy()
    return {
        "instructions": tally.instructions,
        "cycles": tally.cycles,
        "misspeculations": tally.misspeculations,
        "misspec_rate": round(tally.misspec_rate, 9),
        "loads": tally.loads,
        "stores": tally.stores,
        "handler_entries": tally.handler_entries,
        "static_insts": tally.static_insts,
        "energy_pj": round(breakdown.total, 4),
        "energy": {k: round(v, 4) for k, v in breakdown.as_dict().items()},
    }


def render_json(report: ObsReport, *, top: int = 10) -> dict:
    """The machine-readable artifact (JSON-serializable dict)."""
    a = report.attribution
    total = a.total()
    by_var = a.by_variable()
    regions = a.by_region()
    region_labels = _region_labels(regions)
    data = {
        "schema": 1,
        "workload": report.workload,
        "config": report.config.name,
        "conservation": {
            "exact": not report.mismatches,
            "mismatches": list(report.mismatches),
        },
        "totals": _tally_dict(total),
        "variables": {
            (name or "(unattributed)"): _tally_dict(tally)
            for name, tally in sorted(by_var.items())
        },
        "top_misspeculating": [
            {"variable": name or "(unattributed)", **_tally_dict(t)}
            for name, t in sorted(
                (kv for kv in by_var.items() if kv[1].misspeculations),
                key=lambda kv: (-kv[1].misspeculations, kv[0]),
            )[:top]
        ],
        "worlds": {
            world: _tally_dict(t) for world, t in sorted(a.by_world().items())
        },
        "regions": {
            region_labels[key]: _tally_dict(regions[key])
            for key in sorted(region_labels)
        },
        "handlers": {
            label: _tally_dict(t) for label, t in sorted(a.by_handler().items())
        },
        "functions": {
            name: _tally_dict(t)
            for name, t in sorted(a.by_function().items())
        },
        "events": dict(sorted(report.event_counts.items())),
        "events_dropped": report.events_dropped,
        "pass_stats": report.pass_stats,
    }
    if report.baseline_by_function is not None:
        data["baseline"] = {
            "functions": {
                name: _tally_dict(t)
                for name, t in sorted(report.baseline_by_function.items())
            },
            "totals": _tally_dict(report.baseline_total),
        }
    return data
