"""Structured observability events and the ring-buffered event bus.

The machine's fast path does not emit events one at a time — that would
put a callback in the hot loop.  Instead it hands back one
:class:`PcSample` per run: per-pc arrays of the dynamic events the loop
already had to notice (cache misses, load-use hazards, misspeculations,
taken conditional branches, conditional-move commits), alongside the
per-pc execution counts.  :func:`events_from_sample` expands a sample
into *batched* typed events — one :class:`ObsEvent` per (kind, pc) with a
``count`` — which is what a trace consumer or the :class:`EventBus`
ingests.  Everything aggregate is derived, nothing is double-counted:
:mod:`repro.obs.attribution` proves that by re-summing to the
:class:`~repro.arch.machine.SimResult` totals bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

# -- event kinds --------------------------------------------------------------

MISSPECULATION = "misspeculation"
HANDLER_ENTER = "handler_enter"
HANDLER_EXIT = "handler_exit"
ICACHE_MISS = "icache_miss"
DCACHE_MISS = "dcache_miss"
STALL = "stall"
DTS_MODE_SWITCH = "dts_mode_switch"

#: every event kind, in rendering order
EVENT_KINDS = (
    MISSPECULATION,
    HANDLER_ENTER,
    HANDLER_EXIT,
    ICACHE_MISS,
    DCACHE_MISS,
    STALL,
    DTS_MODE_SWITCH,
)


@dataclass(frozen=True)
class ObsEvent:
    """One batched observability event.

    ``count`` is how many times the event occurred at ``pc`` during the
    run (batching per-pc keeps event streams small and the simulator
    fast); ``info`` carries kind-specific detail, e.g. the miss level
    (``"l2"``/``"mem"``), the stall reason (``"hazard"``), the handler
    entry pc for misspeculations, or the DTS class being switched.
    """

    kind: str
    pc: int
    count: int = 1
    info: str = ""


@dataclass
class PcSample:
    """Per-pc dynamic event counts from one fast-path run.

    Parallel arrays indexed by pc over the full image (code + skeleton).
    ``exec_counts[pc]`` is the number of dynamic executions; the other
    arrays count the rare events.  Common-case counters (L1 hits,
    successful speculative writes, stall cycles) are *derived* — see
    :func:`repro.arch.predecode.pc_counters`.
    """

    narrow_rf: bool
    delta: int
    exec_counts: list = field(default_factory=list)
    icache_l2: list = field(default_factory=list)
    icache_mem: list = field(default_factory=list)
    dcache_l2: list = field(default_factory=list)
    dcache_mem: list = field(default_factory=list)
    hazards: list = field(default_factory=list)
    misspecs: list = field(default_factory=list)
    taken: list = field(default_factory=list)
    movconds: list = field(default_factory=list)

    @property
    def n_insts(self) -> int:
        return len(self.exec_counts)


class EventBus:
    """A bounded ring buffer of :class:`ObsEvent`.

    ``capacity`` bounds memory for arbitrarily long traces: when full,
    the oldest events are overwritten and ``dropped`` counts them, so a
    consumer always knows whether the window is complete.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._ring: list[Optional[ObsEvent]] = [None] * capacity
        self._next = 0  # next write position
        self._size = 0

    def post(self, event: ObsEvent) -> None:
        if self._size == self.capacity:
            self.dropped += 1
        else:
            self._size += 1
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity

    def post_all(self, events) -> None:
        for event in events:
            self.post(event)

    def __len__(self) -> int:
        return self._size

    def drain(self) -> list[ObsEvent]:
        """Return buffered events oldest-first and empty the bus."""
        if self._size < self.capacity:
            out = [e for e in self._ring[: self._size]]
        else:
            out = self._ring[self._next:] + self._ring[: self._next]
        self._ring = [None] * self.capacity
        self._next = 0
        self._size = 0
        return [e for e in out if e is not None]

    def counts_by_kind(self) -> dict:
        """Total occurrence count per event kind currently buffered."""
        totals: dict = {}
        live = (
            self._ring[: self._size]
            if self._size < self.capacity
            else self._ring
        )
        for event in live:
            if event is not None:
                totals[event.kind] = totals.get(event.kind, 0) + event.count
        return totals


def events_from_sample(sample: PcSample, debug=None) -> Iterator[ObsEvent]:
    """Expand a :class:`PcSample` into batched typed events.

    ``debug`` is the program's :class:`repro.backend.layout.DebugInfo`;
    when given, misspeculation events carry their handler entry pc in
    ``info`` and are paired with ``HANDLER_ENTER``/``HANDLER_EXIT``
    events at that handler (the misspeculate-once model re-enters
    CFG_orig, so enter and exit counts match the misspeculation count).
    """
    handler_of = debug.handler_of if debug is not None else {}
    for pc in range(sample.n_insts):
        if not sample.exec_counts[pc]:
            continue
        if sample.icache_l2[pc]:
            yield ObsEvent(ICACHE_MISS, pc, sample.icache_l2[pc], "l2")
        if sample.icache_mem[pc]:
            yield ObsEvent(ICACHE_MISS, pc, sample.icache_mem[pc], "mem")
        if sample.dcache_l2[pc]:
            yield ObsEvent(DCACHE_MISS, pc, sample.dcache_l2[pc], "l2")
        if sample.dcache_mem[pc]:
            yield ObsEvent(DCACHE_MISS, pc, sample.dcache_mem[pc], "mem")
        if sample.hazards[pc]:
            yield ObsEvent(STALL, pc, sample.hazards[pc], "hazard")
        miss = sample.misspecs[pc]
        if miss:
            handler = handler_of.get(pc)
            info = f"handler@{handler}" if handler is not None else ""
            yield ObsEvent(MISSPECULATION, pc, miss, info)
            if handler is not None:
                yield ObsEvent(HANDLER_ENTER, handler, miss, f"for@{pc}")
                yield ObsEvent(HANDLER_EXIT, handler, miss, f"for@{pc}")


def dts_mode_events(class_counts: dict, slack_profile: dict) -> Iterator[ObsEvent]:
    """Model DTS mode switches as batched per-class events.

    The DTS model (:mod:`repro.arch.dts`) is post-hoc — it rescales
    energy by the dynamic class mix rather than simulating a timeline —
    so its "mode switches" are reported the same way: one batched event
    per instruction class that runs at a non-nominal voltage/frequency
    mode, counted at the class's dynamic instruction count.  ``pc`` is
    -1: the events are class-wide, not located at an instruction.

    ``slack_profile`` maps class -> critical-path fraction of the clock
    period (:data:`repro.arch.dts.SLACK_PROFILE`); a fraction below 1.0
    means the class runs in a scaled-down mode.
    """
    for cls in sorted(class_counts):
        count = class_counts[cls]
        fraction = slack_profile.get(cls, 1.0)
        if count and fraction < 1.0:
            yield ObsEvent(DTS_MODE_SWITCH, -1, count, f"{cls}:path={fraction}")
