"""Observability & attribution: where do the misspeculations and joules go?

The simulator answers *how much* energy a run used; this package answers
*why*.  An obs-enabled run (``binary.run(inputs, obs=True)``, predecoded
fast path only) returns a :class:`~repro.obs.events.PcSample` — per-pc
counts of the rare events the hot loop already notices — which
:mod:`repro.obs.attribution` joins against the backend's link-time
:class:`~repro.backend.layout.DebugInfo` to charge every instruction,
stall and misspeculation to a source variable, function, speculative
region, handler, and world.  The headline invariant: attribution totals
re-sum to the aggregate :class:`~repro.arch.machine.SimResult` counters
bit for bit (:func:`~repro.obs.attribution.check_conservation`).

Modules: :mod:`~repro.obs.events` (typed events, :class:`EventBus` ring
buffer, sample expansion), :mod:`~repro.obs.attribution` (the engine),
:mod:`~repro.obs.report` (text/JSON rendering), and ``python -m
repro.obs`` (the CLI).  See ``docs/observability.md``.
"""

from repro.obs.attribution import (
    Attribution,
    Tally,
    attribute,
    check_conservation,
    source_var,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventBus,
    ObsEvent,
    PcSample,
    dts_mode_events,
    events_from_sample,
)
from repro.obs.report import ObsReport, build_report, render_json, render_text

__all__ = [
    "Attribution",
    "Tally",
    "attribute",
    "check_conservation",
    "source_var",
    "EVENT_KINDS",
    "EventBus",
    "ObsEvent",
    "PcSample",
    "dts_mode_events",
    "events_from_sample",
    "ObsReport",
    "build_report",
    "render_json",
    "render_text",
]
