"""Explain a winning design point via the obs attribution engine.

``python -m repro.dse best --explain`` does not just name the winner —
it re-runs it (and its speculation-off twin, the same machine knobs at
slice width 32) with per-pc observability, attributes energy to source
variables and speculative regions via :mod:`repro.obs.attribution`, and
reports *which variables drive the energy delta*.

Both runs are checked against the conservation invariant (attributed
totals must equal the simulator aggregates bit-for-bit); violations are
surfaced in the result and turned into a non-zero exit by the CLI and
the CI smoke job.
"""

from __future__ import annotations

from repro.obs.attribution import attribute, check_conservation
from repro.workloads import get_workload

#: variable stems reported per explanation
TOP_MOVERS = 8


def _observe(point, workload: str, *, profile_kind, profile_seed, run_kind, run_seed):
    """One obs-enabled run of ``point`` on ``workload`` → attribution view."""
    from repro.eval import harness

    config = point.to_config()
    binary = harness.get_binary(
        workload, config, profile_kind=profile_kind, profile_seed=profile_seed
    )
    inputs = get_workload(workload).inputs(run_kind, run_seed)
    sim = binary.run(inputs, obs=True)
    attribution = attribute(binary.linked, sim.obs)
    slice_bits = sim.slice_width
    by_var = {
        stem: tally.energy(slice_bits=slice_bits).total
        for stem, tally in attribution.by_variable().items()
    }
    by_region = {
        key: tally
        for key, tally in attribution.by_region().items()
    }
    return {
        "config": config.name,
        "sim": sim,
        "slice_bits": slice_bits,
        "total_energy": attribution.total().energy(slice_bits=slice_bits).total,
        "by_variable": by_var,
        "by_region": by_region,
        "misspeculating_pcs": attribution.misspeculating_pcs(),
        "conservation": check_conservation(attribution, sim),
    }


def explain_point(
    point,
    workload: str,
    *,
    profile_kind: str = "test",
    profile_seed: int = 0,
    run_kind: str = "test",
    run_seed: int = 0,
    top: int = TOP_MOVERS,
) -> dict:
    """Attribute the energy delta of ``point`` vs its width-32 twin.

    Returns a JSON-shaped dict: per-variable energy deltas (negative =
    the variable got cheaper under speculation), the winner's speculative
    regions with their misspeculation load, and the conservation check of
    both runs.
    """
    kwargs = dict(
        profile_kind=profile_kind,
        profile_seed=profile_seed,
        run_kind=run_kind,
        run_seed=run_seed,
    )
    winner = _observe(point, workload, **kwargs)
    reference = _observe(point.baseline_point(), workload, **kwargs)

    stems = set(winner["by_variable"]) | set(reference["by_variable"])
    deltas = []
    for stem in stems:
        before = reference["by_variable"].get(stem, 0.0)
        after = winner["by_variable"].get(stem, 0.0)
        deltas.append(
            {
                "variable": stem or "(unattributed)",
                "energy_pj_baseline": round(before, 6),
                "energy_pj_winner": round(after, 6),
                "delta_pj": round(after - before, 6),
            }
        )
    deltas.sort(key=lambda d: (abs(d["delta_pj"]), d["variable"]), reverse=True)

    regions = []
    for (function, region_id), tally in sorted(
        winner["by_region"].items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        if region_id is None:
            continue  # pcs outside any speculative region
        regions.append(
            {
                "function": function,
                "region": region_id,
                "energy_pj": round(
                    tally.energy(slice_bits=winner["slice_bits"]).total, 6
                ),
                "instructions": tally.instructions,
                "misspeculations": tally.misspeculations,
            }
        )
    regions.sort(key=lambda r: -r["energy_pj"])

    total_delta = winner["total_energy"] - reference["total_energy"]
    return {
        "workload": workload,
        "winner": winner["config"],
        "reference": reference["config"],
        "energy_pj_winner": round(winner["total_energy"], 6),
        "energy_pj_baseline": round(reference["total_energy"], 6),
        "delta_pj": round(total_delta, 6),
        "savings": round(-total_delta / reference["total_energy"], 6)
        if reference["total_energy"]
        else 0.0,
        "movers": deltas[:top],
        "regions": regions,
        "misspeculating_pcs": [
            {"pc": pc, "count": count}
            for pc, count in winner["misspeculating_pcs"][:top]
        ],
        "conservation_violations": (
            [f"winner: {m}" for m in winner["conservation"]]
            + [f"baseline: {m}" for m in reference["conservation"]]
        ),
    }
