"""Sweep execution: evaluate design points on the bench executor.

One :class:`PointRow` is the measurement of one (design point × workload)
cell; :func:`evaluate_points` fans the cells through
:func:`repro.bench.executor.run_matrix`, inheriting its multiprocessing
pool, per-task timeout/retry policy and the content-addressed
:class:`~repro.bench.cache.RunDiskCache`.

:class:`SweepResult` is the deliverable: rows plus the derived analysis
(Pareto fronts, per-workload winners, sensitivity curves), serialized by
:meth:`SweepResult.to_json`.  The JSON is **deterministic by
construction** — it carries no timestamps, wall-clock durations or
cache-hit flags, only event counts and derived metrics — so rerunning a
sweep against a warm cache must produce a byte-identical document (the
reproducibility gate the CI smoke job and tests/test_dse.py enforce).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.bench.executor import BenchTask, run_matrix
from repro.dse.space import SpecPoint, SpecSpace

#: schema version of the DSE_*.json document
SWEEP_SCHEMA = 1


@dataclass
class PointRow:
    """Measurements of one design point on one workload."""

    point: SpecPoint
    workload: str
    status: str = "ok"  # 'ok' | 'failed'
    instructions: int = 0
    cycles: int = 0
    misspeculations: int = 0
    energy_pj: float = 0.0
    error: str = ""

    @property
    def misspec_rate(self) -> float:
        """Misspeculations per dynamic instruction."""
        if not self.instructions:
            return 0.0
        return self.misspeculations / self.instructions

    def as_dict(self) -> dict:
        return {
            "config": self.point.label(),
            "knobs": self.point.as_dict(),
            "workload": self.workload,
            "status": self.status,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "misspeculations": self.misspeculations,
            "misspec_rate": round(self.misspec_rate, 9),
            "energy_pj": round(self.energy_pj, 6),
            "error": self.error,
        }


def evaluate_points(
    points,
    workloads,
    *,
    jobs: int = 1,
    cache_dir=None,
    timeout: float = 300.0,
    engine=None,
    progress=None,
) -> list:
    """Measure every (point × workload) cell; returns ordered PointRows.

    Rows come back point-major in the order given (the executor preserves
    task order), with failures degraded to ``status="failed"`` rather than
    aborting the sweep.  ``engine`` picks the simulation engine for every
    cell.  The three in-order engines are bit-identical, so the emitted
    document does not depend on which of them runs (the reproducibility
    gate holds across them); ``engine="ooo"`` measures the out-of-order
    timing/energy model instead — same committed counts, different
    ``cycles``/``energy_pj`` — and documents stamp their
    ``timing_model`` so the two sweeps are never conflated.
    """
    points = list(points)
    workloads = list(workloads)
    tasks = [
        BenchTask(workload=w, config=p.to_config(), engine=engine)
        for p in points
        for w in workloads
    ]
    outcomes, _stats = run_matrix(
        tasks,
        jobs=max(jobs, 1),
        cache_dir=cache_dir,
        timeout=timeout or None,
        progress=progress,
    )
    rows = []
    for (p, w), outcome in zip(
        ((p, w) for p in points for w in workloads), outcomes
    ):
        rows.append(
            PointRow(
                point=p,
                workload=w,
                status=outcome.status,
                instructions=outcome.instructions,
                cycles=outcome.cycles,
                misspeculations=outcome.misspeculations,
                energy_pj=outcome.energy_pj,
                error=outcome.error,
            )
        )
    return rows


@dataclass
class SweepResult:
    """One completed sweep: rows plus derived analysis, JSON-serializable."""

    preset: str
    workloads: tuple
    space: dict  # SpecSpace.describe() (or {} for ad-hoc point lists)
    strategy: str = "grid"
    evaluations: int = 0
    rows: list = field(default_factory=list)
    #: cycle/energy model the cells were measured under
    #: (:func:`repro.arch.machine.timing_model`)
    timing: str = "inorder"

    def to_document(self) -> dict:
        """The DSE_*.json document — deterministic, no wall-clock state."""
        from repro.dse.analysis import (
            best_per_workload,
            pareto_fronts,
            sensitivity,
        )

        return {
            "schema": SWEEP_SCHEMA,
            "preset": self.preset,
            "strategy": self.strategy,
            "timing_model": self.timing,
            "workloads": list(self.workloads),
            "space": self.space,
            "evaluations": self.evaluations,
            "rows": [r.as_dict() for r in self.rows],
            "pareto": pareto_fronts(self.rows),
            "best": best_per_workload(self.rows),
            "sensitivity": sensitivity(self.rows),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n"


def run_sweep(
    space: SpecSpace,
    workloads,
    *,
    preset: str = "custom",
    strategy: str = "grid",
    jobs: int = 1,
    cache_dir=None,
    timeout: float = 300.0,
    random_n: int = 0,
    random_seed: int = 0,
    halving_eta: int = 3,
    engine=None,
    progress=None,
) -> SweepResult:
    """Run one sweep end to end under the chosen search strategy."""
    from repro.arch.machine import timing_model
    from repro.dse import search

    kwargs = dict(
        jobs=jobs, cache_dir=cache_dir, timeout=timeout, engine=engine,
        progress=progress,
    )
    if strategy == "grid":
        rows, evaluations = search.grid_search(space, workloads, **kwargs)
    elif strategy == "random":
        rows, evaluations = search.random_search(
            space, workloads, n=random_n, seed=random_seed, **kwargs
        )
    elif strategy == "halving":
        rows, evaluations = search.successive_halving(
            space, workloads, eta=halving_eta, **kwargs
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return SweepResult(
        preset=preset,
        workloads=tuple(workloads),
        space=space.describe(),
        strategy=strategy,
        evaluations=evaluations,
        rows=rows,
        timing=timing_model(engine),
    )
