"""``python -m repro.dse`` — sweep the speculation design space.

Subcommands::

    # run a named preset sweep and emit DSE_mini.json
    python -m repro.dse sweep --preset mini --jobs 4

    # same grid, bandit-pruned on partial rosters
    python -m repro.dse sweep --preset widths --strategy halving

    # the Pareto front / winner tables of an emitted document
    python -m repro.dse pareto --input DSE_mini.json
    python -m repro.dse best --input DSE_mini.json

    # re-run the winners with per-pc observability and attribute the
    # energy delta vs the speculation-off twin to source variables
    python -m repro.dse best --input DSE_mini.json --explain

The sweep document is deterministic (no timestamps or wall-clock state),
so a rerun against a warm cache writes a byte-identical file — ``sweep
--check`` verifies exactly that and fails if the document drifted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.dse.explain import explain_point
from repro.dse.runner import run_sweep
from repro.dse.space import PRESETS, SpecPoint

DEFAULT_CACHE_DIR = ".benchcache"


def _table(header, rows) -> str:
    """Fixed-width text table (monospace-aligned, not markdown)."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def _load_document(args, parser) -> dict:
    path = args.input or Path(f"DSE_{args.preset}.json")
    if not path.is_file():
        parser.error(f"no sweep document at {path} (run `sweep` first)")
    return json.loads(path.read_text())


def cmd_sweep(args, parser) -> int:
    space, workloads = PRESETS[args.preset]
    if args.workloads:
        workloads = tuple(
            w.strip() for w in args.workloads.split(",") if w.strip()
        )
    cache_dir = None if args.no_cache else args.cache_dir

    def ticker(done, total, outcome):
        if args.quiet:
            return
        tag = "hit " if outcome.cached else "run "
        if outcome.status == "failed":
            tag = "FAIL"
        print(
            f"[{done}/{total}] {tag} {outcome.workload}/{outcome.config_name}"
            + (f"  {outcome.error}" if outcome.error else ""),
            flush=True,
        )

    try:
        result = run_sweep(
            space,
            workloads,
            preset=args.preset,
            strategy=args.strategy,
            jobs=args.jobs,
            cache_dir=cache_dir,
            timeout=args.timeout,
            random_n=args.random_n,
            random_seed=args.random_seed,
            halving_eta=args.eta,
            engine=args.engine,
            progress=ticker,
        )
    except KeyboardInterrupt:
        # evaluated cells are already fsync'd in the disk cache — a
        # rerun resumes from them instead of recomputing the sweep
        if cache_dir is not None:
            print(
                f"interrupted: completed evaluations are flushed to "
                f"{cache_dir}; rerun the same command to resume",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted: no cache dir configured, completed "
                "evaluations were discarded",
                file=sys.stderr,
            )
        return 130
    text = result.to_json()
    # ooo sweeps measure a different timing/energy model; never let them
    # clobber (or masquerade as) the in-order document of the same preset
    stem = f"DSE_ooo_{args.preset}" if result.timing.startswith("ooo") else f"DSE_{args.preset}"
    output = args.output or Path(f"{stem}.json")
    if args.check and output.is_file():
        previous = output.read_text()
        if previous != text:
            print(
                f"{output} DRIFTED: rerun produced a different document",
                file=sys.stderr,
            )
            return 1
        print(f"{output} reproduced byte-identically", flush=True)
    output.write_text(text)

    failed = [r for r in result.rows if r.status != "ok"]
    document = result.to_document()
    best_rows = [
        [w, b["config"], f"{b['energy_pj']:.0f}", b["cycles"],
         f"{100 * b['savings_vs_worst']:.1f}%"]
        for w, b in document["best"].items()
    ]
    print(
        f"{args.preset}: {result.evaluations} evaluations "
        f"({len(result.rows)} rows, {len(failed)} failed) via {args.strategy}",
        flush=True,
    )
    if best_rows:
        print(_table(
            ["workload", "best config", "energy (pJ)", "cycles", "vs worst"],
            best_rows,
        ))
    print(f"wrote {output}", flush=True)
    return 1 if failed else 0


def cmd_pareto(args, parser) -> int:
    document = _load_document(args, parser)
    for workload, front in sorted(document["pareto"].items()):
        if args.workload and workload != args.workload:
            continue
        print(f"\n{workload}: {len(front)} non-dominated point(s)")
        print(_table(
            ["config", "energy (pJ)", "cycles", "misspec rate"],
            [
                [p["config"], f"{p['energy_pj']:.0f}", p["cycles"],
                 f"{p['misspec_rate']:.6f}"]
                for p in front
            ],
        ))
    return 0


def cmd_best(args, parser) -> int:
    document = _load_document(args, parser)
    best = document["best"]
    if args.workload:
        best = {w: b for w, b in best.items() if w == args.workload}
        if not best:
            parser.error(f"workload {args.workload!r} not in the document")
    print(_table(
        ["workload", "best config", "energy (pJ)", "cycles", "misspecs",
         "vs worst"],
        [
            [w, b["config"], f"{b['energy_pj']:.0f}", b["cycles"],
             b["misspeculations"], f"{100 * b['savings_vs_worst']:.1f}%"]
            for w, b in sorted(best.items())
        ],
    ))
    if not args.explain:
        return 0

    violations = []
    for workload, entry in sorted(best.items()):
        point = SpecPoint.from_dict(entry["knobs"])
        if point.slice_width >= 32:
            print(f"\n{workload}: winner is the speculation-off point — "
                  "nothing to attribute")
            continue
        explanation = explain_point(point, workload)
        print(
            f"\n{workload}: {explanation['winner']} saves "
            f"{100 * explanation['savings']:.1f}% "
            f"({explanation['energy_pj_winner']:.0f} pJ vs "
            f"{explanation['energy_pj_baseline']:.0f} pJ at width 32)"
        )
        print(_table(
            ["variable", "width-32 (pJ)", "winner (pJ)", "delta (pJ)"],
            [
                [m["variable"], f"{m['energy_pj_baseline']:.0f}",
                 f"{m['energy_pj_winner']:.0f}", f"{m['delta_pj']:+.0f}"]
                for m in explanation["movers"]
            ],
        ))
        if explanation["regions"]:
            print(_table(
                ["region", "energy (pJ)", "insts", "misspecs"],
                [
                    [f"{r['function']}#{r['region']}", f"{r['energy_pj']:.0f}",
                     r["instructions"], r["misspeculations"]]
                    for r in explanation["regions"][:args.top]
                ],
            ))
        for violation in explanation["conservation_violations"]:
            print(f"CONSERVATION VIOLATION: {violation}", file=sys.stderr)
        violations.extend(explanation["conservation_violations"])
    return 1 if violations else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Design-space exploration over speculation parameters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a preset sweep, emit DSE_*.json")
    sweep.add_argument("--preset", choices=sorted(PRESETS), default="mini")
    sweep.add_argument(
        "--workloads", default=None,
        help="comma-separated workloads (overrides the preset roster)",
    )
    sweep.add_argument(
        "--strategy", choices=("grid", "random", "halving"), default="grid"
    )
    sweep.add_argument("--jobs", type=int, default=1)
    sweep.add_argument("--timeout", type=float, default=300.0)
    sweep.add_argument("--cache-dir", type=Path, default=Path(DEFAULT_CACHE_DIR))
    sweep.add_argument("--no-cache", action="store_true")
    sweep.add_argument("--output", type=Path, default=None)
    sweep.add_argument(
        "--random-n", type=int, default=8,
        help="points sampled by --strategy random",
    )
    sweep.add_argument("--random-seed", type=int, default=0)
    sweep.add_argument(
        "--eta", type=int, default=3, help="halving keep-rate (top 1/eta)"
    )
    sweep.add_argument(
        "--check", action="store_true",
        help="fail if an existing document is not reproduced byte-identically",
    )
    sweep.add_argument("--quiet", action="store_true")
    sweep.add_argument(
        "--engine",
        choices=("legacy", "fast", "compiled", "ooo"),
        default=None,
        help="simulation engine for every cell.  The in-order engines are "
        "bit-identical (affect throughput only, never the document); "
        "'ooo' measures the out-of-order timing/energy model and writes "
        "DSE_ooo_<preset>.json by default",
    )
    sweep.set_defaults(func=cmd_sweep)

    pareto = sub.add_parser("pareto", help="print per-workload Pareto fronts")
    best = sub.add_parser("best", help="print (and explain) the winners")
    for command in (pareto, best):
        command.add_argument("--preset", choices=sorted(PRESETS), default="mini")
        command.add_argument(
            "--input", type=Path, default=None,
            help="sweep document (default: DSE_<preset>.json)",
        )
        command.add_argument("--workload", default=None)
    pareto.set_defaults(func=cmd_pareto)
    best.add_argument(
        "--explain", action="store_true",
        help="obs-attribute each winner's energy delta vs its width-32 twin",
    )
    best.add_argument(
        "--top", type=int, default=8, help="rows per --explain table"
    )
    best.set_defaults(func=cmd_best)

    args = parser.parse_args(argv)
    return args.func(args, parser)


if __name__ == "__main__":
    sys.exit(main())
