"""`repro.dse` — design-space exploration over the speculation parameters.

The paper evaluates *one* design point (8-bit slices, the Table 1 op
set, max-heuristic selection).  This package turns every knob that point
fixed into a sweepable axis and searches the resulting space:

* :mod:`repro.dse.space` — the typed :class:`SpecSpace` of knobs (slice
  width 4/8/16/32, squeezable-opcode subsets, hotness/confidence
  selection thresholds, DTS α and bitwidth-awareness, L1/L2 cache
  geometry), each point lowering to a
  :class:`~repro.core.pipeline.CompilerConfig`;
* :mod:`repro.dse.search` — pluggable strategies (full grid, seeded
  random sampling, successive-halving pruning on partial workload
  rosters) built on the :mod:`repro.bench` multiprocessing executor and
  its content-addressed disk cache;
* :mod:`repro.dse.analysis` — per-workload Pareto fronts over (energy,
  cycles, misspeculation rate), best-config-per-workload tables, and
  per-knob sensitivity curves;
* :mod:`repro.dse.explain` — obs-attribution of a winner's energy delta
  against its speculation-off twin (which variables/regions pay off);
* the ``python -m repro.dse`` CLI (``sweep`` / ``pareto`` / ``best``),
  emitting deterministic ``DSE_<preset>.json`` documents that reproduce
  byte-for-byte against a warm cache.

Two fixed points anchor every sweep to the paper: slice width 32 *is*
the BASELINE build (bit-identical event counts), and the all-defaults
point *is* BITSPEC (the headline numbers).  See ``docs/dse.md``.
"""

from repro.dse.analysis import (
    OBJECTIVES,
    best_per_workload,
    pareto_front,
    pareto_fronts,
    sensitivity,
)
from repro.dse.explain import explain_point
from repro.dse.runner import PointRow, SweepResult, evaluate_points, run_sweep
from repro.dse.search import grid_search, random_search, successive_halving
from repro.dse.space import OP_SETS, PRESETS, SpecPoint, SpecSpace

__all__ = [
    "OBJECTIVES",
    "OP_SETS",
    "PRESETS",
    "PointRow",
    "SpecPoint",
    "SpecSpace",
    "SweepResult",
    "best_per_workload",
    "evaluate_points",
    "explain_point",
    "grid_search",
    "pareto_front",
    "pareto_fronts",
    "random_search",
    "run_sweep",
    "sensitivity",
    "successive_halving",
]
