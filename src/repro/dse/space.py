"""The typed design space of speculation parameters (the DSE knob set).

A :class:`SpecPoint` is one fully-specified design point — a value for
every sweepable knob the pipeline exposes; :meth:`SpecPoint.to_config`
maps it onto a :class:`repro.core.pipeline.CompilerConfig`.  A
:class:`SpecSpace` is a set of axes (knob → candidate values) whose
cartesian product enumerates the points of a sweep.

Two design-point identities anchor every sweep to the paper:

* slice width **32** means *speculation off* — no value is narrower than
  a register, so the point lowers to the plain ARM BASELINE pipeline and
  must reproduce its event counts bit-for-bit;
* the all-defaults point (8-bit slices, full Table 1 op set, no
  thresholds) is exactly the paper's BITSPEC configuration and must
  reproduce its headline numbers unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace

from repro.arch.widths import SLICE_WIDTHS, validate_slice_width
from repro.core.pipeline import CompilerConfig
from repro.profiler.selection import SQUEEZABLE_BINOPS

#: named squeezable-opcode subsets available as axis values
OP_SETS = {
    "all": tuple(sorted(SQUEEZABLE_BINOPS)),
    "noshift": ("add", "and", "or", "sub", "xor"),
    "arith": ("add", "sub"),
    "logic": ("and", "or", "xor"),
}


@dataclass(frozen=True)
class SpecPoint:
    """One point of the speculation design space (all knobs bound)."""

    #: speculative slice width in bits; 32 = speculation off (BASELINE)
    slice_width: int = 8
    #: binop opcodes the selector may squeeze
    squeeze_ops: tuple = OP_SETS["all"]
    #: bitwidth-selection heuristic over the profile (max/avg/min)
    heuristic: str = "max"
    #: hotness gate: fraction of the hottest assignment count required
    min_hotness: float = 0.0
    #: confidence margin in bits below the slice width
    confidence_margin: int = 0
    #: voltage scaling on (timesqueezing) / off (nominal)
    dts: bool = False
    #: alpha-power-law exponent of the DTS delay model
    dts_alpha: float = 1.3
    #: DTS slack estimator exploits slice carry chains
    dts_bitwidth_aware: bool = False
    #: L1 I/D cache size (KiB) and associativity
    l1_kb: int = 8
    l1_ways: int = 4
    #: shared L2 size (KiB) and associativity
    l2_kb: int = 256
    l2_ways: int = 8

    def __post_init__(self) -> None:
        validate_slice_width(self.slice_width)
        object.__setattr__(self, "squeeze_ops", tuple(self.squeeze_ops))

    def label(self) -> str:
        """Deterministic compact config name, e.g. ``dse-w8-cm1-l1_4x4``."""
        parts = [f"w{self.slice_width}"]
        default = SpecPoint()
        if self.squeeze_ops != default.squeeze_ops:
            for name, ops in OP_SETS.items():
                if tuple(sorted(self.squeeze_ops)) == tuple(sorted(ops)):
                    parts.append(f"ops_{name}")
                    break
            else:
                parts.append("ops_" + "".join(op[0] for op in self.squeeze_ops))
        if self.heuristic != default.heuristic:
            parts.append(self.heuristic)
        if self.min_hotness != default.min_hotness:
            parts.append(f"h{self.min_hotness:g}")
        if self.confidence_margin != default.confidence_margin:
            parts.append(f"cm{self.confidence_margin}")
        if self.dts:
            tag = f"dts{self.dts_alpha:g}"
            if self.dts_bitwidth_aware:
                tag += "bw"
            parts.append(tag)
        if (self.l1_kb, self.l1_ways) != (default.l1_kb, default.l1_ways):
            parts.append(f"l1_{self.l1_kb}x{self.l1_ways}")
        if (self.l2_kb, self.l2_ways) != (default.l2_kb, default.l2_ways):
            parts.append(f"l2_{self.l2_kb}x{self.l2_ways}")
        return "dse-" + "-".join(parts)

    def as_dict(self) -> dict:
        return {
            "slice_width": self.slice_width,
            "squeeze_ops": list(self.squeeze_ops),
            "heuristic": self.heuristic,
            "min_hotness": self.min_hotness,
            "confidence_margin": self.confidence_margin,
            "dts": self.dts,
            "dts_alpha": self.dts_alpha,
            "dts_bitwidth_aware": self.dts_bitwidth_aware,
            "l1_kb": self.l1_kb,
            "l1_ways": self.l1_ways,
            "l2_kb": self.l2_kb,
            "l2_ways": self.l2_ways,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecPoint":
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in data.items() if k in known}
        if "squeeze_ops" in kw:
            kw["squeeze_ops"] = tuple(kw["squeeze_ops"])
        return cls(**kw)

    def baseline_point(self) -> "SpecPoint":
        """The speculation-off twin of this point (same machine knobs)."""
        return replace(self, slice_width=32)

    def to_config(self) -> CompilerConfig:
        """Lower the point onto a :class:`CompilerConfig`.

        Width 32 selects the BASELINE pipeline (plain ARM, no middle-end):
        with no value narrower than a register there is nothing to squeeze,
        and the ARM_BS ISA's slice-aware register-file accounting would
        still differ from BASELINE for native i8 values — the paper's
        comparison point is the plain ARM build.
        """
        common = dict(
            slice_width=self.slice_width,
            squeeze_ops=self.squeeze_ops,
            min_hotness=self.min_hotness,
            confidence_margin=self.confidence_margin,
            dts_alpha=self.dts_alpha,
            dts_bitwidth_aware=self.dts_bitwidth_aware,
            l1_kb=self.l1_kb,
            l1_ways=self.l1_ways,
            l2_kb=self.l2_kb,
            l2_ways=self.l2_ways,
            voltage_scaling="timesqueezing" if self.dts else "nominal",
        )
        if self.slice_width >= 32:
            return CompilerConfig(
                name=self.label(), isa="ARM", middle_end="none", **common
            )
        return CompilerConfig(
            name=self.label(),
            isa="ARM_BS",
            middle_end=f"2cfg-{self.heuristic}",
            **common,
        )


_KNOBS = tuple(f.name for f in fields(SpecPoint))


class SpecSpace:
    """An ordered set of sweep axes; the grid is their cartesian product."""

    def __init__(self, **axes) -> None:
        unknown = [k for k in axes if k not in _KNOBS]
        if unknown:
            raise ValueError(
                f"unknown knobs {unknown}; valid: {sorted(_KNOBS)}"
            )
        self.axes: dict = {}
        for knob in _KNOBS:  # canonical order, independent of call order
            if knob in axes:
                values = tuple(axes[knob])
                if not values:
                    raise ValueError(f"axis {knob} has no values")
                self.axes[knob] = values
        for width in self.axes.get("slice_width", ()):
            validate_slice_width(width)

    @property
    def size(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> list:
        """Every grid point, in deterministic axis-major order."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            out.append(SpecPoint(**dict(zip(names, combo))))
        return out

    def describe(self) -> dict:
        return {
            knob: [list(v) if isinstance(v, tuple) else v for v in values]
            for knob, values in self.axes.items()
        }


#: named sweep presets: (space, workload roster)
PRESETS = {
    # CI-sized: 2 knobs × 2 values on 2 workloads
    "smoke": (
        SpecSpace(slice_width=(8, 32), l1_kb=(4, 8)),
        ("crc32", "sha"),
    ),
    # the default: 24 points over slice width × confidence × L1 size
    "mini": (
        SpecSpace(
            slice_width=(4, 8, 16, 32),
            confidence_margin=(0, 1),
            l1_kb=(4, 8, 16),
        ),
        ("crc32", "sha"),
    ),
    "widths": (
        SpecSpace(slice_width=(4, 8, 16, 32), heuristic=("max", "avg", "min")),
        ("crc32", "sha", "bitcount"),
    ),
    "ops": (
        SpecSpace(
            slice_width=(4, 8, 16),
            squeeze_ops=tuple(OP_SETS[n] for n in ("all", "noshift", "arith", "logic")),
        ),
        ("crc32", "sha", "bitcount"),
    ),
    "thresholds": (
        SpecSpace(
            min_hotness=(0.0, 0.01, 0.1, 0.5),
            confidence_margin=(0, 1, 2),
        ),
        ("crc32", "sha", "bitcount"),
    ),
    "dts": (
        SpecSpace(
            slice_width=(8, 32),
            dts=(True,),
            dts_alpha=(1.1, 1.3, 1.6),
            dts_bitwidth_aware=(False, True),
        ),
        ("crc32", "sha"),
    ),
    "cachegeom": (
        SpecSpace(l1_kb=(2, 4, 8, 16), l1_ways=(1, 2, 4)),
        ("crc32", "sha", "dijkstra"),
    ),
}
