"""Sweep analysis: Pareto fronts, per-workload winners, sensitivity.

All three views consume the flat :class:`~repro.dse.runner.PointRow`
list a sweep produced and return plain JSON-shaped dicts — they are the
``pareto`` / ``best`` / ``sensitivity`` sections of the DSE document and
the data behind ``python -m repro.dse pareto|best``.

Determinism note: everything here is a pure fold over the rows with
stable tie-breaks (config label order), so the derived sections are as
reproducible as the measurements themselves.
"""

from __future__ import annotations

from repro.eval.harness import geomean

#: the objective vector, all minimized
OBJECTIVES = ("energy_pj", "cycles", "misspec_rate")


def _objective(row) -> tuple:
    return (row.energy_pj, row.cycles, row.misspec_rate)


def _dominates(a: tuple, b: tuple) -> bool:
    """True iff ``a`` is no worse in every objective and better in one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(rows) -> list:
    """Non-dominated rows under (energy, cycles, misspec rate), minimized.

    Failed rows never enter the front.  Duplicate objective vectors all
    survive (neither strictly dominates); output is sorted by energy then
    config label for a stable listing.
    """
    ok = [r for r in rows if r.status == "ok"]
    front = []
    for row in ok:
        mine = _objective(row)
        if any(
            _dominates(_objective(other), mine) for other in ok if other is not row
        ):
            continue
        front.append(row)
    front.sort(key=lambda r: (r.energy_pj, r.point.label()))
    return front


def pareto_fronts(rows) -> dict:
    """Per-workload Pareto fronts, JSON-shaped."""
    by_workload: dict = {}
    for row in rows:
        by_workload.setdefault(row.workload, []).append(row)
    return {
        workload: [
            {
                "config": r.point.label(),
                "knobs": r.point.as_dict(),
                "energy_pj": round(r.energy_pj, 6),
                "cycles": r.cycles,
                "misspec_rate": round(r.misspec_rate, 9),
            }
            for r in pareto_front(group)
        ]
        for workload, group in sorted(by_workload.items())
    }


def best_per_workload(rows) -> dict:
    """Minimum-energy point per workload, with savings vs the sweep's worst.

    ``savings_vs_worst`` contextualizes the winner inside the swept space;
    it is *not* the paper's baseline-relative number (use a sweep whose
    space includes slice width 32 for that — the width-32 point *is* the
    BASELINE build).
    """
    by_workload: dict = {}
    for row in rows:
        if row.status == "ok":
            by_workload.setdefault(row.workload, []).append(row)
    table = {}
    for workload, group in sorted(by_workload.items()):
        winner = min(group, key=lambda r: (r.energy_pj, r.point.label()))
        worst = max(group, key=lambda r: (r.energy_pj, r.point.label()))
        table[workload] = {
            "config": winner.point.label(),
            "knobs": winner.point.as_dict(),
            "energy_pj": round(winner.energy_pj, 6),
            "cycles": winner.cycles,
            "misspeculations": winner.misspeculations,
            "misspec_rate": round(winner.misspec_rate, 9),
            "savings_vs_worst": round(
                1.0 - winner.energy_pj / worst.energy_pj, 6
            )
            if worst.energy_pj
            else 0.0,
        }
    return table


#: knobs reported on the sensitivity curves (the swept scalar axes)
SENSITIVITY_KNOBS = (
    "slice_width",
    "min_hotness",
    "confidence_margin",
    "heuristic",
    "dts_alpha",
    "l1_kb",
    "l1_ways",
    "l2_kb",
    "l2_ways",
)


def sensitivity(rows) -> dict:
    """Per-knob sensitivity: knob value → geomean normalized energy.

    Energies are first normalized per workload to that workload's best
    ok-row (so workloads with very different absolute energy weigh
    equally), then geomeaned across every row sharing a knob value.
    A knob that only ever takes one value across the rows is omitted —
    a one-point curve says nothing.
    """
    ok = [r for r in rows if r.status == "ok"]
    best: dict = {}
    for row in ok:
        current = best.get(row.workload)
        if current is None or row.energy_pj < current:
            best[row.workload] = row.energy_pj
    curves: dict = {}
    for knob in SENSITIVITY_KNOBS:
        buckets: dict = {}
        for row in ok:
            value = getattr(row.point, knob)
            floor = best[row.workload]
            normalized = row.energy_pj / floor if floor else 0.0
            buckets.setdefault(value, []).append(normalized)
        if len(buckets) < 2:
            continue
        curves[knob] = {
            str(value): round(geomean(samples), 6)
            for value, samples in sorted(buckets.items())
        }
    return curves
