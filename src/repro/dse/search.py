"""Search strategies over a :class:`~repro.dse.space.SpecSpace`.

Three strategies, all built on the same cached executor so they compose
with warm caches and with each other:

* :func:`grid_search` — exhaustive cartesian product; the reference.
* :func:`random_search` — a seeded sample of the grid; same measurement
  path, just fewer points.
* :func:`successive_halving` — bandit-style pruning on *partial rosters*:
  every point is first scored on a small prefix of the workload roster,
  only the top ``1/eta`` survive to the next (larger) rung, and the final
  survivors are measured on the full roster.  Because every cell goes
  through the content-addressed disk cache, the partial measurements of a
  survivor are free when the rung grows — the rungs share work instead of
  repeating it.

Each strategy returns ``(rows, evaluations)``: the PointRows backing the
result (for halving, the final rung only) and the total number of cells
measured across all stages.
"""

from __future__ import annotations

import math
import random

from repro.dse.runner import evaluate_points
from repro.dse.space import SpecSpace
from repro.eval.harness import geomean


def grid_search(space: SpecSpace, workloads, **kwargs):
    """Evaluate every grid point on every workload."""
    rows = evaluate_points(space.points(), workloads, **kwargs)
    return rows, len(rows)


def random_search(space: SpecSpace, workloads, *, n: int, seed: int = 0, **kwargs):
    """Evaluate a seeded without-replacement sample of ``n`` grid points."""
    points = space.points()
    if n <= 0:
        raise ValueError("random_search needs n > 0")
    if n < len(points):
        points = random.Random(seed).sample(points, n)
    rows = evaluate_points(points, workloads, **kwargs)
    return rows, len(rows)


def _rank_key(point, rows):
    """Sort key for a point given its measured rows: lower is better.

    Points with any failed cell sort after every healthy point; ties
    break on the deterministic config label.
    """
    mine = [r for r in rows if r.point == point]
    failed = any(r.status != "ok" for r in mine)
    energy = geomean([r.energy_pj for r in mine if r.status == "ok"])
    return (1 if failed or not energy else 0, energy, point.label())


def successive_halving(
    space: SpecSpace, workloads, *, eta: int = 3, **kwargs
):
    """Prune the grid on growing workload rosters; survivors get the full one.

    Rung ``k`` measures the current survivors on the first
    ``min(eta**k, len(workloads))`` workloads, ranks them by geomean
    energy over the cells measured so far, and keeps the top
    ``ceil(n/eta)``.  With fewer than two workloads (or ``eta < 2``)
    this degenerates to a grid search.
    """
    workloads = list(workloads)
    points = space.points()
    if eta < 2 or len(workloads) < 2 or len(points) <= eta:
        rows = evaluate_points(points, workloads, **kwargs)
        return rows, len(rows)

    evaluations = 0
    roster_size = 1
    survivors = points
    while roster_size < len(workloads) and len(survivors) > 1:
        roster = workloads[:roster_size]
        rows = evaluate_points(survivors, roster, **kwargs)
        evaluations += len(rows)
        keep = max(1, math.ceil(len(survivors) / eta))
        survivors = sorted(survivors, key=lambda p: _rank_key(p, rows))[:keep]
        roster_size = min(roster_size * eta, len(workloads))

    final_rows = evaluate_points(survivors, workloads, **kwargs)
    evaluations += len(final_rows)
    return final_rows, evaluations
