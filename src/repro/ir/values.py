"""Value hierarchy for the repro IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, global variables and other instructions.  Values keep a
use-list (``users``) so transformation passes can rewrite programs with
``replace_all_uses_with`` in constant time per use, mirroring LLVM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.types import IntType, PointerType, int_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ir.instructions import Instruction


class Value:
    """Base class of everything that can appear as an instruction operand."""

    def __init__(self, ty, name: str = "") -> None:
        self.type = ty
        self.name = name
        #: Instructions currently holding this value as an operand.  An
        #: instruction appears once per *distinct* operand slot; bookkeeping
        #: is multiset-like via a count map.
        self._user_counts: dict["Instruction", int] = {}

    @property
    def users(self) -> list["Instruction"]:
        """Instructions using this value (each listed once)."""
        return list(self._user_counts)

    def _add_user(self, inst: "Instruction") -> None:
        self._user_counts[inst] = self._user_counts.get(inst, 0) + 1

    def _remove_user(self, inst: "Instruction") -> None:
        count = self._user_counts.get(inst, 0)
        if count <= 1:
            self._user_counts.pop(inst, None)
        else:
            self._user_counts[inst] = count - 1

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every use of ``self`` to use ``replacement`` instead."""
        if replacement is self:
            return
        for user in self.users:
            user.replace_uses_of_value(self, replacement)

    @property
    def ref(self) -> str:
        """Printable reference (e.g. ``%x`` or a literal for constants)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"{self.type!r} {self.ref}"


class Constant(Value):
    """An integer constant, stored in unsigned representation."""

    def __init__(self, ty: IntType, value: int) -> None:
        super().__init__(ty)
        self.value = ty.wrap(value)

    @property
    def ref(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"{self.type!r} {self.value}"


def const(value: int, bits: int = 32) -> Constant:
    """Convenience constructor for an integer constant."""
    return Constant(int_type(bits), value)


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    def __init__(self, ty, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level array (or scalar, ``count == 1``) in flat memory.

    The value of a global *as an operand* is its address, hence its type is a
    pointer to the element type.  ``initializer`` may be overridden by the
    evaluation harness to inject workload inputs.
    """

    def __init__(
        self,
        name: str,
        elem_type: IntType,
        count: int,
        initializer: Optional[list[int]] = None,
    ) -> None:
        super().__init__(PointerType(elem_type), name)
        if count < 1:
            raise ValueError("global variable needs at least one element")
        self.elem_type = elem_type
        self.count = count
        if initializer is None:
            initializer = [0] * count
        if len(initializer) > count:
            raise ValueError(f"initializer too long for global {name!r}")
        self.initializer = [elem_type.wrap(v) for v in initializer]
        self.initializer += [0] * (count - len(self.initializer))

    @property
    def size_bytes(self) -> int:
        return self.elem_type.size_bytes * self.count

    @property
    def ref(self) -> str:
        return f"@{self.name}"
