"""IR verifier: structural and SSA well-formedness checks.

Raises :class:`VerificationError` describing the first problem found.  Run
after construction and after every transformation pass in tests.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.cfg import compute_dominators, dominates
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class VerificationError(Exception):
    """The IR violates a structural invariant."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise VerificationError(message)


def verify_function(func: Function, module: Optional[Module] = None) -> None:
    _check(bool(func.blocks), f"{func.name}: function has no blocks")

    block_set = set(func.blocks)
    seen_names: set[str] = set()
    defined: dict[Value, BasicBlock] = {}

    for block in func.blocks:
        _check(block.parent is func, f"{block.name}: wrong parent")
        _check(len(block.instructions) > 0, f"{block.name}: empty block")
        term = block.instructions[-1]
        _check(term.is_terminator, f"{block.name}: missing terminator")
        for inst in block.instructions[:-1]:
            _check(
                not inst.is_terminator,
                f"{block.name}: terminator {inst.opcode} not at block end",
            )
        for succ in block.successors():
            _check(
                succ in block_set,
                f"{block.name}: branch to foreign block {succ.name}",
            )
        for inst in block.instructions:
            _check(inst.parent is block, f"{block.name}: orphan instruction")
            if inst.has_result:
                _check(
                    inst.name not in seen_names,
                    f"{func.name}: duplicate value name %{inst.name}",
                )
                seen_names.add(inst.name)
                defined[inst] = block

    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block)

    for block in func.blocks:
        phi_group_done = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                _check(
                    not phi_group_done,
                    f"{block.name}: phi %{inst.name} after non-phi instruction",
                )
                incoming_blocks = list(inst.incoming_blocks)
                incoming_names = sorted(b.name for b in incoming_blocks)
                # One incoming per unique predecessor: a conditional branch
                # may target the same block on both edges, which still counts
                # as a single phi entry (predecessors() dedupes likewise).
                _check(
                    incoming_names == sorted(set(incoming_names)),
                    f"{block.name}: phi %{inst.name} has duplicate incoming "
                    f"blocks {incoming_names}",
                )
                _check(
                    incoming_names
                    == sorted({p.name for p in preds[block]}),
                    f"{block.name}: phi %{inst.name} incoming blocks "
                    f"{[b.name for b in incoming_blocks]} != preds "
                    f"{[p.name for p in preds[block]]}",
                )
            else:
                phi_group_done = True

    has_handlers = any(b.handler_for is not None for b in func.blocks)
    if has_handlers:
        # SIR rule (Eq. 1): a handler is dominated by whatever dominates its
        # region's entry, letting it use values live into the region.
        from repro.sir.regions import sir_predecessors

        dom = compute_dominators(func, pred_fn=sir_predecessors)
    else:
        dom = compute_dominators(func)
    for block in func.blocks:
        for inst in block.instructions:
            operand_pairs = list(enumerate(inst.operands))
            for idx, op in operand_pairs:
                _check(
                    isinstance(op, (Instruction, Constant, Argument, GlobalVariable)),
                    f"{block.name}: bad operand kind {type(op).__name__}",
                )
                if isinstance(op, Instruction):
                    _check(
                        op in defined,
                        f"{block.name}: %{inst.name or inst.opcode} uses "
                        f"undefined value %{op.name}",
                    )
                    if isinstance(inst, Phi):
                        use_block = inst.incoming_blocks[idx]
                    else:
                        use_block = block
                    def_block = defined[op]
                    if def_block is use_block and not isinstance(inst, Phi):
                        def_pos = use_block.instructions.index(op)
                        use_pos = use_block.instructions.index(inst)
                        _check(
                            def_pos < use_pos,
                            f"{block.name}: %{op.name} used before defined",
                        )
                    elif def_block is not use_block:
                        if use_block in dom:
                            _check(
                                dominates(dom, def_block, use_block),
                                f"{block.name}: def of %{op.name} "
                                f"({def_block.name}) does not dominate use "
                                f"in {use_block.name}",
                            )
            if module is not None and inst.opcode == "call":
                _check(
                    inst.callee in module.functions
                    or inst.callee.startswith("__"),
                    f"{block.name}: call to unknown function @{inst.callee}",
                )


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func, module)
