"""CFG analyses: traversal orders, dominators, natural loops.

These serve the verifier (SSA dominance checks), the squeezer (block
ordering) and the expander's loop detection.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks last)."""
    visited: set[int] = set()
    postorder: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(id(block))
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if id(succ) not in visited:
                    visited.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    if func.blocks:
        visit(func.entry)
    order = list(reversed(postorder))
    order.extend(b for b in func.blocks if id(b) not in visited)
    return order


def compute_dominators(
    func: Function, pred_fn=None
) -> dict[BasicBlock, set[BasicBlock]]:
    """Iterative dataflow dominator computation.

    ``pred_fn`` overrides the predecessor relation; pass
    :func:`repro.sir.regions.sir_predecessors` to verify SIR functions, where
    a misspeculation handler's predecessors are those of its region's entry
    (Eq. 1 of the paper) even though no branch targets the handler.
    """
    blocks = reverse_postorder(func)
    if not blocks:
        return {}
    entry = func.entry
    all_blocks = set(blocks)
    dom: dict[BasicBlock, set[BasicBlock]] = {b: set(all_blocks) for b in blocks}
    dom[entry] = {entry}
    if pred_fn is None:
        preds = {b: b.predecessors() for b in blocks}
    else:
        preds = {b: pred_fn(b) for b in blocks}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            reachable_preds = [p for p in preds[block] if p in dom]
            if reachable_preds:
                new = set.intersection(*(dom[p] for p in reachable_preds))
            else:
                new = set()
            new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def dominates(
    dom: dict[BasicBlock, set[BasicBlock]], a: BasicBlock, b: BasicBlock
) -> bool:
    """True when block ``a`` dominates block ``b``."""
    return a in dom.get(b, set())


class NaturalLoop:
    """A natural loop: header plus body blocks, from a back edge."""

    def __init__(self, header: BasicBlock, blocks: set[BasicBlock]) -> None:
        self.header = header
        self.blocks = blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} size={len(self.blocks)}>"


def find_natural_loops(func: Function) -> list[NaturalLoop]:
    """Find natural loops via back edges (edges into a dominator)."""
    dom = compute_dominators(func)
    loops: dict[int, NaturalLoop] = {}
    for block in func.blocks:
        for succ in block.successors():
            if dominates(dom, succ, block):
                # back edge block -> succ; collect the loop body
                loop = loops.get(id(succ))
                if loop is None:
                    loop = NaturalLoop(succ, {succ})
                    loops[id(succ)] = loop
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    stack.extend(current.predecessors())
    return list(loops.values())


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks not reachable from the entry; returns count removed.

    Handler blocks reachable only via misspeculation are *kept*: they are
    reachable through their region's PC+Δ redirection even though no branch
    targets them.  A handler's downstream (CFG_orig) blocks are therefore
    treated as reachable through the handler.
    """
    reachable: set[int] = set()
    worklist = [func.entry] if func.blocks else []
    while worklist:
        block = worklist.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        worklist.extend(block.successors())
        if block.region is not None and block.region.handler is not None:
            worklist.append(block.region.handler)
    removed = 0
    for block in list(func.blocks):
        if id(block) not in reachable:
            for inst in list(block.instructions):
                inst.drop_all_references()
            for succ in block.successors():
                for phi in succ.phis():
                    if block in phi.incoming_blocks:
                        phi.remove_incoming(block)
            func.remove_block(block)
            removed += 1
    return removed
