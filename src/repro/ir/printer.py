"""Textual printer for IR modules (LLVM-flavoured, for tests and debugging)."""

from __future__ import annotations

from repro.ir.function import Function, Module


def print_function(func: Function) -> str:
    args = ", ".join(f"{a.type!r} %{a.name}" for a in func.args)
    lines = [f"define {func.ret_type!r} @{func.name}({args}) {{"]
    for block in func.blocks:
        header = f"{block.name}:"
        notes = []
        if block.world:
            notes.append(block.world)
        if block.region is not None and block.region.handler is not None:
            notes.append(f"handler=%{block.region.handler.name}")
        if block.is_handler:
            notes.append(f"handles=%{block.handler_for.entry.name}")
        if notes:
            header += "    ; " + ", ".join(notes)
        lines.append(header)
        for inst in block.instructions:
            lines.append(f"  {inst!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for gv in module.globals.values():
        nonzero = sum(1 for v in gv.initializer if v)
        parts.append(
            f"@{gv.name} = global [{gv.count} x {gv.elem_type!r}] "
            f"; {nonzero} nonzero init"
        )
    for func in module.functions.values():
        parts.append("")
        parts.append(print_function(func))
    return "\n".join(parts)
