"""Typed SSA intermediate representation (the repo's LLVM-IR analog).

Public surface::

    from repro.ir import (
        Module, Function, BasicBlock, IRBuilder,
        int_type, I1, I8, I16, I32, I64, VOID,
        Constant, GlobalVariable, verify_module, print_module,
    )
"""

from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_blocks
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Alloca,
    BINARY_OPS,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Gep,
    ICMP_PREDS,
    Icmp,
    Instruction,
    Load,
    Phi,
    Ret,
    SPECULATIVE_OPS,
    Select,
    Store,
)
from repro.ir.printer import print_function, print_module
from repro.ir.types import (
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    VOID,
    int_type,
    is_int,
    is_pointer,
    required_bits,
)
from repro.ir.values import Argument, Constant, GlobalVariable, Value, const
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca",
    "Argument",
    "BINARY_OPS",
    "BasicBlock",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "CondBr",
    "Constant",
    "Function",
    "Gep",
    "GlobalVariable",
    "I1",
    "I16",
    "I32",
    "I64",
    "I8",
    "ICMP_PREDS",
    "IRBuilder",
    "Icmp",
    "Instruction",
    "IntType",
    "Load",
    "Module",
    "Phi",
    "PointerType",
    "Ret",
    "SPECULATIVE_OPS",
    "Select",
    "Store",
    "VOID",
    "Value",
    "VerificationError",
    "clone_blocks",
    "const",
    "int_type",
    "is_int",
    "is_pointer",
    "print_function",
    "print_module",
    "required_bits",
    "verify_function",
    "verify_module",
]
