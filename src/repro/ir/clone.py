"""Cloning of basic blocks.

Used by the squeezer to materialize ``CFG_spec`` (clone of the whole function
body, §3.2.3 step 1).  Cloning returns value and block maps (the paper's
``Spec``/``Orig`` relations are built from them).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Gep,
    Icmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Value


def _clone_instruction(inst, lookup) -> object:
    """Clone one instruction, mapping operands through ``lookup``."""
    if isinstance(inst, BinOp):
        clone = BinOp(inst.opcode, lookup(inst.lhs), lookup(inst.rhs))
    elif isinstance(inst, Icmp):
        clone = Icmp(inst.pred, lookup(inst.lhs), lookup(inst.rhs))
    elif isinstance(inst, Select):
        clone = Select(
            lookup(inst.cond), lookup(inst.true_value), lookup(inst.false_value)
        )
    elif isinstance(inst, Cast):
        clone = Cast(inst.opcode, lookup(inst.value), inst.type)
    elif isinstance(inst, Phi):
        clone = Phi(inst.type)
        # incoming edges filled by the second pass (needs the block map)
    elif isinstance(inst, Load):
        clone = Load(
            lookup(inst.ptr), result_type=inst.type, volatile=inst.volatile
        )
    elif isinstance(inst, Store):
        clone = Store(lookup(inst.value), lookup(inst.ptr), volatile=inst.volatile)
    elif isinstance(inst, Gep):
        clone = Gep(lookup(inst.ptr), lookup(inst.index))
    elif isinstance(inst, Alloca):
        clone = Alloca(inst.elem_type, inst.count)
    elif isinstance(inst, Call):
        clone = Call(inst.callee, [lookup(a) for a in inst.args], inst.type)
    elif isinstance(inst, Br):
        clone = Br(inst.target)  # retargeted by the second pass
    elif isinstance(inst, CondBr):
        clone = CondBr(lookup(inst.cond), inst.if_true, inst.if_false)
    elif isinstance(inst, Ret):
        clone = Ret(lookup(inst.value) if inst.value is not None else None)
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot clone instruction kind {type(inst).__name__}")
    clone.speculative = inst.speculative
    clone.volatile = inst.volatile
    return clone


def clone_function(func: Function) -> Function:
    """Deep-copy ``func`` into a fresh, independent :class:`Function`.

    Block and value names are preserved verbatim; arguments are remapped
    to the clone's own :class:`Argument` objects.  Used by the pipeline's
    graceful-degradation path to snapshot every function before the
    speculative middle-end runs, so a failing squeeze/verify can restore
    the pristine body instead of aborting the whole compile.
    """
    clone = Function(
        func.name, func.ret_type, [(a.name, a.type) for a in func.args]
    )
    seed = dict(zip(func.args, clone.args))
    clone_blocks(clone, func.blocks, "", value_map=seed)
    # Keep the clone's name counters ahead of every existing name so a
    # later ``next_name()`` on the restored body cannot collide.  (Burning
    # one number from the source counters is harmless.)
    clone._name_counter = itertools.count(next(func._name_counter))
    clone._block_counter = itertools.count(next(func._block_counter))
    return clone


def clone_blocks(
    func: Function,
    blocks: Iterable[BasicBlock],
    suffix: str,
    value_map: Optional[dict[Value, Value]] = None,
) -> tuple[dict[Value, Value], dict[BasicBlock, BasicBlock]]:
    """Clone ``blocks`` into ``func`` with names suffixed by ``suffix``.

    Operand references *within* the cloned set are remapped to the clones;
    references to values defined outside the set are kept (callers may seed
    ``value_map`` to override).  Branch targets and phi incoming blocks that
    point inside the set are remapped; edges leaving the set are preserved.

    Returns ``(value_map, block_map)`` — the Spec relation of the paper when
    used for CFG_spec construction.
    """
    blocks = list(blocks)
    vmap: dict[Value, Value] = dict(value_map or {})
    bmap: dict[BasicBlock, BasicBlock] = {}

    def lookup(value: Value) -> Value:
        return vmap.get(value, value)

    for block in blocks:
        clone = func.add_block(f"{block.name}{suffix}")
        clone.world = block.world
        bmap[block] = clone

    # First pass: clone instructions, build the value map.
    for block in blocks:
        clone_block = bmap[block]
        for inst in block.instructions:
            cloned = _clone_instruction(inst, lookup)
            if cloned.has_result:
                cloned.name = f"{inst.name}{suffix}"
            clone_block.append(cloned)
            if inst.has_result:
                vmap[inst] = cloned

    # Second pass: wire up phi incomings, fix forward-referenced operands
    # (values defined later in the set) and remap block targets.
    for block in blocks:
        clone_block = bmap[block]
        for orig, cloned in zip(block.instructions, clone_block.instructions):
            if isinstance(orig, Phi):
                for value, pred in orig.incoming():
                    cloned.add_incoming(lookup(value), bmap.get(pred, pred))
            else:
                for i, op in enumerate(cloned.operands):
                    mapped = vmap.get(op)
                    if mapped is not None and mapped is not op:
                        cloned.set_operand(i, mapped)
            term = cloned if cloned.is_terminator else None
            if term is not None:
                for succ in list(term.successors()):
                    if succ in bmap:
                        term.replace_target(succ, bmap[succ])
    return vmap, bmap
