"""Basic blocks and speculative-region metadata.

A :class:`BasicBlock` is an ordered instruction list ending in a terminator.
Blocks carry the SIR state introduced by the squeezer: the speculative region
they belong to, whether they are a misspeculation *handler*, and which world
(``CFG_spec`` vs ``CFG_orig``, §3.2.3 step 1) they live in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.ir.instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function
    from repro.sir.regions import SpeculativeRegion


class BasicBlock:
    """A single-entry straight-line instruction sequence."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.parent: Optional["Function"] = None
        #: Speculative region containing this block (None outside regions).
        self.region: Optional["SpeculativeRegion"] = None
        #: Region this block is the misspeculation handler for, if any.
        self.handler_for: Optional["SpeculativeRegion"] = None
        #: World tag: "orig" for CFG_orig blocks, "spec" for CFG_spec clones,
        #: None before the squeezer runs.
        self.world: Optional[str] = None

    # -- instruction list management ------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        index = len(self.instructions)
        if self.instructions and self.instructions[-1].is_terminator:
            index -= 1
        return self.insert(index, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    # -- structure queries ------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phis(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> list["BasicBlock"]:
        """CFG predecessors (branch sources only).

        Note: for SIR liveness the handler predecessor rule (Eq. 1/2 of the
        paper) is applied by :mod:`repro.sir.regions`, not here.
        """
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    @property
    def is_handler(self) -> bool:
        return self.handler_for is not None

    def is_idempotent(self) -> bool:
        """Idempotent? predicate on blocks (§3.2.3): no volatile ops/calls."""
        return all(i.is_idempotent for i in self.instructions)

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __bool__(self) -> bool:
        # A block is always truthy, even when empty: callers test `is None`.
        return True

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
