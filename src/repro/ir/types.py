"""Type system for the repro IR.

The IR models the slice of LLVM IR that BITSPEC operates on: arbitrary-width
unsigned-representation integers (``i1``..``i64``), a void type for functions
without a return value, and a flat-address-space pointer type used by loads,
stores and address arithmetic.

Integer values are stored in unsigned two's-complement representation; signed
operations reinterpret the bit pattern, exactly as LLVM does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntType:
    """An integer type of a fixed bitwidth (``i1``, ``i8``, ... ``i64``)."""

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ValueError(f"unsupported integer bitwidth: {self.bits}")

    @property
    def mask(self) -> int:
        """Bitmask selecting the value bits of this type."""
        return (1 << self.bits) - 1

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes (rounded up to 1/2/4/8)."""
        for size in (1, 2, 4, 8):
            if self.bits <= size * 8:
                return size
        raise AssertionError("unreachable")

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's unsigned representation."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        """Reinterpret the unsigned representation ``value`` as signed."""
        value &= self.mask
        sign_bit = 1 << (self.bits - 1)
        return value - (1 << self.bits) if value & sign_bit else value

    def __repr__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class VoidType:
    """The type of functions that return no value."""

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType:
    """A pointer into the flat byte-addressable address space.

    Pointers are 32 bits wide on the modeled machine; ``pointee`` records the
    element type for address arithmetic (``gep``) and typed loads/stores.
    """

    pointee: IntType

    @property
    def bits(self) -> int:
        return 32

    @property
    def size_bytes(self) -> int:
        return 4

    @property
    def mask(self) -> int:
        return 0xFFFFFFFF

    def wrap(self, value: int) -> int:
        return value & 0xFFFFFFFF

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


_INT_CACHE: dict[int, IntType] = {}


def int_type(bits: int) -> IntType:
    """Return the canonical :class:`IntType` of width ``bits``."""
    cached = _INT_CACHE.get(bits)
    if cached is None:
        cached = IntType(bits)
        _INT_CACHE[bits] = cached
    return cached


VOID = VoidType()
I1 = int_type(1)
I8 = int_type(8)
I16 = int_type(16)
I32 = int_type(32)
I64 = int_type(64)


def is_int(ty: object) -> bool:
    """True if ``ty`` is an integer type."""
    return isinstance(ty, IntType)


def is_pointer(ty: object) -> bool:
    """True if ``ty`` is a pointer type."""
    return isinstance(ty, PointerType)


def required_bits(value: int) -> int:
    """Bits needed to store the unsigned value ``value``.

    This is the paper's ``RequiredBits(a) = floor(lg a) + 1`` with the natural
    extension ``RequiredBits(0) = 1`` (one bit stores a zero).
    """
    if value < 0:
        raise ValueError("required_bits expects an unsigned representation")
    return max(1, value.bit_length())
