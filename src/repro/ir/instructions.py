"""Instruction set of the repro IR.

The instruction vocabulary mirrors the integer slice of LLVM IR that BITSPEC
transforms: binary arithmetic/logic, comparisons, casts, phis, memory access,
address arithmetic, calls and control flow.  Instructions are SSA values
(each defines at most one result).

Speculation support (the paper's SIR, §3.1) is expressed with two pieces of
instruction state:

* ``speculative`` — the instruction operates on a squeezed (8-bit) value and
  may *misspeculate* at run time (Table 1 of the paper); and
* ``spec_guards`` — values whose successful speculation this instruction's
  correctness relies on (used by compare elimination, §3.2.4, to keep the
  guarded definition alive through DCE).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.ir.types import IntType, PointerType, VOID, I1, is_int
from repro.ir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import BasicBlock

#: Binary opcodes, with LLVM semantics on the unsigned representation.
BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "udiv",
        "urem",
        "sdiv",
        "srem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)

#: Comparison predicates (LLVM ``icmp``).
ICMP_PREDS = frozenset(
    {"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}
)

#: Opcodes with an 8-bit speculative form in the BITSPEC ISA (Table 1).
#: ``mul`` and divisions are deliberately absent: the ISA provides no
#: speculative multiplier, so they are never Squeezable.
SPECULATIVE_OPS = frozenset(
    {"add", "sub", "and", "or", "xor", "shl", "lshr", "icmp", "load", "trunc", "phi"}
)


class Instruction(Value):
    """Base class for all instructions.

    Operand storage is uniform: ``operands`` is the ordered list of value
    operands; block operands of terminators and phis are held separately (in
    ``targets`` / ``incoming_blocks``) since basic blocks are not values.
    """

    opcode: str = "?"

    def __init__(self, ty, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(ty, name)
        self._operands: list[Value] = []
        self.parent: Optional["BasicBlock"] = None
        #: Marks an instruction that executes in squeezed (8-bit) form and is
        #: monitored by the hardware for misspeculation.
        self.speculative = False
        #: True for memory operations with side effects that must not be
        #: re-executed (models I/O); also blocks idempotency of the block.
        self.volatile = False
        #: Values whose speculation outcome this instruction relies on.
        self.spec_guards: list[Value] = []
        for op in operands:
            self._attach(op)

    # -- operand bookkeeping -------------------------------------------------

    def _attach(self, value: Value) -> None:
        self._operands.append(value)
        value._add_user(self)

    @property
    def operands(self) -> list[Value]:
        return list(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._remove_user(self)
        self._operands[index] = value
        value._add_user(self)

    def replace_uses_of_value(self, old: Value, new: Value) -> None:
        """Replace every operand slot holding ``old`` with ``new``."""
        for i, op in enumerate(self._operands):
            if op is old:
                self.set_operand(i, new)

    def drop_all_references(self) -> None:
        """Detach from all operands (used when erasing instructions)."""
        for op in self._operands:
            op._remove_user(self)
        self._operands.clear()

    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    # -- classification ------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def has_result(self) -> bool:
        return self.type is not VOID

    @property
    def may_have_side_effects(self) -> bool:
        return self.volatile or isinstance(self, (Store, Call, Ret, Br, CondBr))

    @property
    def is_idempotent(self) -> bool:
        """Idempotent? predicate from §3.2.3 (volatile ops and calls are not)."""
        return not (self.volatile or isinstance(self, Call))

    def successors(self) -> list["BasicBlock"]:
        return []

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        raise TypeError(f"{self.opcode} has no block targets")

    def _fmt_attrs(self) -> str:
        attrs = ""
        if self.speculative:
            attrs += " !speculative"
        if self.volatile:
            attrs += " !volatile"
        if self.spec_guards:
            guards = ", ".join(g.ref for g in self.spec_guards)
            attrs += f" !guards({guards})"
        return attrs


class BinOp(Instruction):
    """Two-operand integer arithmetic/logic; result type = operand type."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode: {op}")
        if lhs.type != rhs.type:
            raise TypeError(f"binop operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = {self.opcode} {self.type!r} "
            f"{self.lhs.ref}, {self.rhs.ref}{self._fmt_attrs()}"
        )


class Icmp(Instruction):
    """Integer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDS:
            raise ValueError(f"unknown icmp predicate: {pred}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = icmp {self.pred} {self.lhs.type!r} "
            f"{self.lhs.ref}, {self.rhs.ref}{self._fmt_attrs()}"
        )


class Select(Instruction):
    """``select cond, a, b`` — conditional move."""

    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = "") -> None:
        if cond.type != I1:
            raise TypeError("select condition must be i1")
        if tval.type != fval.type:
            raise TypeError("select arms must share a type")
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def cond(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = select {self.cond.ref}, {self.type!r} "
            f"{self.true_value.ref}, {self.false_value.ref}{self._fmt_attrs()}"
        )


CAST_OPS = frozenset({"zext", "sext", "trunc"})


class Cast(Instruction):
    """Width change: ``zext``/``sext`` widen, ``trunc`` narrows.

    A ``trunc`` with ``speculative=True`` is the paper's *speculative
    truncate* (Table 1): it misspeculates when the source value does not fit
    the destination width.
    """

    def __init__(self, op: str, value: Value, to_type: IntType, name: str = "") -> None:
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast opcode: {op}")
        if not is_int(value.type) or not is_int(to_type):
            raise TypeError("casts operate on integer types")
        if op == "trunc" and to_type.bits > value.type.bits:
            raise TypeError("trunc must narrow")
        if op in ("zext", "sext") and to_type.bits < value.type.bits:
            raise TypeError(f"{op} must widen")
        super().__init__(to_type, [value], name)
        self.opcode = op

    @property
    def value(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = {self.opcode} {self.value.type!r} {self.value.ref} "
            f"to {self.type!r}{self._fmt_attrs()}"
        )


class Phi(Instruction):
    """SSA phi; incoming blocks are stored parallel to operands."""

    opcode = "phi"

    def __init__(self, ty, name: str = "") -> None:
        super().__init__(ty, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type {value.type} != phi type {self.type}"
            )
        self._attach(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi {self.ref} has no incoming edge from {block.name}")

    def set_incoming_block(self, index: int, block: "BasicBlock") -> None:
        self.incoming_blocks[index] = block

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                if i < len(self._operands):
                    self._operands[i]._remove_user(self)
                    del self._operands[i]
                del self.incoming_blocks[i]
                return
        raise KeyError(f"phi {self.ref} has no incoming edge from {block.name}")

    def drop_all_references(self) -> None:
        super().drop_all_references()
        self.incoming_blocks.clear()

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"[{v.ref}, %{b.name}]" for v, b in self.incoming()
        )
        return f"{self.ref} = phi {self.type!r} {pairs}{self._fmt_attrs()}"


class Load(Instruction):
    """Typed load.

    A *speculative load* (``speculative=True``) reads the full element from
    memory but produces a narrowed result type; it misspeculates when the
    loaded value needs more bits than the result type provides (Table 1).
    """

    opcode = "load"

    def __init__(
        self,
        ptr: Value,
        name: str = "",
        *,
        result_type: Optional[IntType] = None,
        volatile: bool = False,
    ) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError("load pointer operand must have pointer type")
        ty = result_type if result_type is not None else ptr.type.pointee
        super().__init__(ty, [ptr], name)
        self.volatile = volatile

    @property
    def ptr(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = load {self.type!r}, {self.ptr.type!r} "
            f"{self.ptr.ref}{self._fmt_attrs()}"
        )


class Store(Instruction):
    """Typed store; no result."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value, *, volatile: bool = False) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError("store pointer operand must have pointer type")
        if value.type != ptr.type.pointee:
            raise TypeError(
                f"store value type {value.type} != pointee {ptr.type.pointee}"
            )
        super().__init__(VOID, [value, ptr])
        self.volatile = volatile

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def ptr(self) -> Value:
        return self.operand(1)

    def __repr__(self) -> str:
        return (
            f"store {self.value.type!r} {self.value.ref}, "
            f"{self.ptr.type!r} {self.ptr.ref}{self._fmt_attrs()}"
        )


class Gep(Instruction):
    """Element address arithmetic: ``ptr + index * sizeof(pointee)``."""

    opcode = "gep"

    def __init__(self, ptr: Value, index: Value, name: str = "") -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError("gep base must have pointer type")
        if not is_int(index.type):
            raise TypeError("gep index must be an integer")
        super().__init__(ptr.type, [ptr, index], name)

    @property
    def ptr(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)

    def __repr__(self) -> str:
        return (
            f"{self.ref} = gep {self.ptr.type!r} {self.ptr.ref}, "
            f"{self.index.type!r} {self.index.ref}{self._fmt_attrs()}"
        )


class Alloca(Instruction):
    """Stack allocation of ``count`` elements of ``elem_type``."""

    opcode = "alloca"

    def __init__(self, elem_type: IntType, count: int = 1, name: str = "") -> None:
        if count < 1:
            raise ValueError("alloca count must be positive")
        super().__init__(PointerType(elem_type), [], name)
        self.elem_type = elem_type
        self.count = count

    def __repr__(self) -> str:
        return f"{self.ref} = alloca {self.elem_type!r} x {self.count}"


class Call(Instruction):
    """Direct call, by callee name (resolved through the module).

    Calls are never idempotent in SIR: they fence speculative regions
    (Eq. 5 of the paper).
    """

    opcode = "call"

    def __init__(self, callee: str, args: Sequence[Value], ty, name: str = "") -> None:
        super().__init__(ty, args, name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return self.operands

    def __repr__(self) -> str:
        args = ", ".join(a.ref for a in self.args)
        lhs = f"{self.ref} = " if self.has_result else ""
        return f"{lhs}call {self.type!r} @{self.callee}({args}){self._fmt_attrs()}"


class Br(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new

    def __repr__(self) -> str:
        return f"br label %{self.target.name}"


class CondBr(Instruction):
    """Two-way conditional branch on an ``i1``."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if cond.type != I1:
            raise TypeError("condbr condition must be i1")
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operand(0)

    def successors(self) -> list["BasicBlock"]:
        return [self.if_true, self.if_false]

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.if_true is old:
            self.if_true = new
        if self.if_false is old:
            self.if_false = new

    def __repr__(self) -> str:
        return (
            f"br {self.cond.ref}, label %{self.if_true.name}, "
            f"label %{self.if_false.name}"
        )


class Ret(Instruction):
    """Function return, with optional value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self._operands else None

    def __repr__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type!r} {self.value.ref}"
