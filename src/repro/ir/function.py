"""Functions and modules."""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.values import Argument, GlobalVariable


class Function:
    """A function: argument list, return type and a CFG of basic blocks.

    The first block is the entry block.  Value names are uniqued per function
    through :meth:`next_name`, which keeps textual IR and profiles stable.
    """

    def __init__(self, name: str, ret_type, arg_specs: Sequence[tuple] = ()) -> None:
        self.name = name
        self.ret_type = ret_type
        self.args = [
            Argument(ty, arg_name, i) for i, (arg_name, ty) in enumerate(arg_specs)
        ]
        self.blocks: list[BasicBlock] = []
        self._name_counter = itertools.count()
        self._block_counter = itertools.count()
        self.parent: Optional["Module"] = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "", index: Optional[int] = None) -> BasicBlock:
        if not name:
            name = f"bb{next(self._block_counter)}"
        block = BasicBlock(name)
        block.parent = self
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def next_name(self, hint: str = "v") -> str:
        return f"{hint}.{next(self._name_counter)}"

    def instructions(self) -> list[Instruction]:
        return [inst for block in self.blocks for inst in block.instructions]

    def set_entry(self, block: BasicBlock) -> None:
        """Make ``block`` the entry block (moves it to the front)."""
        self.blocks.remove(block)
        self.blocks.insert(0, block)

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A whole program: functions plus global variables."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function name: {func.name}")
        self.functions[func.name] = func
        func.parent = self
        return func

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise ValueError(f"duplicate global name: {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
