"""Liveness analysis over the (S)IR.

Backward dataflow over the CFG computing live-in/live-out sets of SSA values
per block.  Phi semantics follow LLVM: a phi's operands are live-out of the
corresponding predecessor, and the phi result is live-in to its block.

The analysis honours SIR's handler predecessor rule when ``sir=True``: a
misspeculation handler's live-in values flow out of the *predecessors of its
region's entry* (Eq. 1 of the paper), reflecting that control can enter the
handler from anywhere inside the region with region-defined values dead
(Theorem 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Value


def _trackable(value: Value) -> bool:
    return isinstance(value, Instruction)


@dataclass
class LivenessInfo:
    """Live value sets per block."""

    live_in: dict[BasicBlock, set[Value]] = field(default_factory=dict)
    live_out: dict[BasicBlock, set[Value]] = field(default_factory=dict)


def block_uses_defs(block: BasicBlock) -> tuple[set[Value], set[Value]]:
    """(upward-exposed uses, defs) of a block; phi operands excluded."""
    uses: set[Value] = set()
    defs: set[Value] = set()
    for inst in block.instructions:
        if not isinstance(inst, Phi):
            for op in inst.operands:
                if _trackable(op) and op not in defs:
                    uses.add(op)
        if inst.has_result:
            defs.add(inst)
    return uses, defs


def compute_liveness(func: Function, *, sir: bool = False) -> LivenessInfo:
    """Compute per-block liveness; see module docstring for the SIR mode."""
    info = LivenessInfo()
    use_def = {b: block_uses_defs(b) for b in func.blocks}
    for block in func.blocks:
        info.live_in[block] = set()
        info.live_out[block] = set()

    # Successor edges for the dataflow, with phi-operand handling: for each
    # edge pred -> succ, values flowing are live_in(succ) minus succ's phis,
    # plus the phi operands contributed along that edge.
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            live_out: set[Value] = set()
            successors = list(block.successors())
            if sir and block.region is not None and block.region.handler is not None:
                # Eq. 2 (SMIR): every block of a region feeds its handler, so
                # handler-used values stay live across the whole region.
                successors.append(block.region.handler)
            for succ in successors:
                phi_results = set()
                for phi in succ.phis():
                    phi_results.add(phi)
                    if block in phi.incoming_blocks:
                        incoming = phi.incoming_for_block(block)
                        if _trackable(incoming):
                            live_out.add(incoming)
                live_out |= info.live_in[succ] - phi_results
            uses, defs = use_def[block]
            live_in = uses | (live_out - defs)
            # Phi results are defined at the top of the block, hence live-in
            # from the point of view of incoming edges; we expose them via
            # live_in so handlers know what the region entry provides.
            for phi in block.phis():
                live_in.add(phi)
            if live_out != info.live_out[block] or live_in != info.live_in[block]:
                info.live_out[block] = live_out
                info.live_in[block] = live_in
                changed = True

    if sir:
        # Handlers conceptually take their live-in from the region entry's
        # predecessors (Eq. 1): re-express handler live-ins after convergence.
        for block in func.blocks:
            if block.handler_for is not None:
                region = block.handler_for
                entry = region.entry
                # Values available at the handler are those live-in to the
                # region entry (they dominate the region; Theorem 3.1).
                available = set(info.live_in[entry])
                info.live_in[block] |= available & info.live_in[block]
    return info
