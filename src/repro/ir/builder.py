"""IRBuilder: convenience layer for constructing IR.

Mirrors LLVM's ``IRBuilder``: keeps an insertion point (a basic block) and
provides one method per instruction kind, auto-naming results.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    Gep,
    Icmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IntType, int_type
from repro.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions at the end of a chosen basic block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self):
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion block")
        return self.block.parent

    def _emit(self, inst):
        if not inst.name and inst.has_result:
            inst.name = self.function.next_name(inst.opcode)
        return self.block.append(inst)

    # -- constants -----------------------------------------------------------

    def const(self, value: int, bits: int = 32) -> Constant:
        return Constant(int_type(bits), value)

    def const_like(self, value: int, like: Value) -> Constant:
        return Constant(like.type, value)

    # -- arithmetic / logic ----------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self._emit(BinOp(op, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("udiv", lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("ashr", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Icmp:
        return self._emit(Icmp(pred, lhs, rhs, name))

    def select(self, cond: Value, tval: Value, fval: Value, name: str = "") -> Select:
        return self._emit(Select(cond, tval, fval, name))

    # -- casts ---------------------------------------------------------------

    def zext(self, value: Value, to_bits: int, name: str = "") -> Value:
        if value.type.bits == to_bits:
            return value
        return self._emit(Cast("zext", value, int_type(to_bits), name))

    def sext(self, value: Value, to_bits: int, name: str = "") -> Value:
        if value.type.bits == to_bits:
            return value
        return self._emit(Cast("sext", value, int_type(to_bits), name))

    def trunc(self, value: Value, to_bits: int, name: str = "") -> Value:
        if value.type.bits == to_bits:
            return value
        return self._emit(Cast("trunc", value, int_type(to_bits), name))

    # -- memory --------------------------------------------------------------

    def load(self, ptr: Value, name: str = "", *, volatile: bool = False) -> Load:
        return self._emit(Load(ptr, name, volatile=volatile))

    def store(self, value: Value, ptr: Value, *, volatile: bool = False) -> Store:
        return self._emit(Store(value, ptr, volatile=volatile))

    def gep(self, ptr: Value, index: Value, name: str = "") -> Gep:
        return self._emit(Gep(ptr, index, name))

    def alloca(self, elem_type: IntType, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(elem_type, count, name))

    # -- control flow ----------------------------------------------------------

    def phi(self, ty, name: str = "") -> Phi:
        """Insert a phi at the start of the current block's phi group."""
        inst = Phi(ty, name or self.function.next_name("phi"))
        index = 0
        for i, existing in enumerate(self.block.instructions):
            if isinstance(existing, Phi):
                index = i + 1
        return self.block.insert(index, inst)

    def call(self, callee: str, args: Sequence[Value], ret_type, name: str = "") -> Call:
        return self._emit(Call(callee, args, ret_type, name))

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))
