"""Middle-end passes: expander, CFG prep, squeezer, speculative opts.

Every pass reports what it did through the scoped counter registry in
:mod:`repro.passes.stats` (LLVM ``-stats`` style); the pipeline collects
a snapshot onto ``CompiledBinary.pass_stats``.
"""

from repro.passes import stats
from repro.passes.cfg_prep import check_prepared, prepare_cfg, prepare_cfg_module
from repro.passes.dce import eliminate_dead_code, eliminate_dead_code_module
from repro.passes.expander import (
    AUTOTUNE_GRID,
    ExpanderConfig,
    autotune,
    build_module,
)
from repro.passes.inline import inline_module
from repro.passes.opt import (
    eliminate_compares,
    elide_bitmasks,
    run_speculative_opts,
)
from repro.passes.simplify import fold_constants, simplify_function, simplify_module
from repro.passes.squeezer import SqueezeResult, squeeze_function, squeeze_module
from repro.passes.ssa_updater import SSAUpdater, UndefinedValueError
from repro.passes.static_narrow import narrow_function, narrow_module
from repro.passes.unroll import unroll_program

__all__ = [
    "AUTOTUNE_GRID",
    "ExpanderConfig",
    "SSAUpdater",
    "SqueezeResult",
    "UndefinedValueError",
    "autotune",
    "build_module",
    "check_prepared",
    "eliminate_compares",
    "eliminate_dead_code",
    "eliminate_dead_code_module",
    "elide_bitmasks",
    "fold_constants",
    "inline_module",
    "narrow_function",
    "narrow_module",
    "prepare_cfg",
    "prepare_cfg_module",
    "run_speculative_opts",
    "simplify_function",
    "simplify_module",
    "squeeze_function",
    "squeeze_module",
    "stats",
    "unroll_program",
]
