"""The expander (§3.2.1): aggressive loop unrolling + function inlining.

Expansion instantiates dynamic code paths as static control flow, enlarging
the optimization space — at the cost of register pressure, which BITSPEC's
slice packing then absorbs (RQ4).  Configuration mirrors the paper's
autotuner search space: *unrolling factor*, *max function size*, *max loop
size*; :func:`autotune` greedily minimizes baseline dynamic instructions
over a small grid (the OpenTuner substitution, see DESIGN.md).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.frontend.ast_nodes import Program
from repro.frontend.codegen import compile_program
from repro.frontend.parser import parse
from repro.ir.function import Module
from repro.passes.inline import inline_module
from repro.passes.simplify import simplify_module
from repro.passes.unroll import unroll_program


@dataclass(frozen=True)
class ExpanderConfig:
    """Tuning knobs of the expander (the autotuner's search space)."""

    enabled: bool = True
    unroll_factor: int = 4
    max_loop_size: int = 120
    max_callee_size: int = 80
    max_function_size: int = 4000

    @classmethod
    def disabled(cls) -> "ExpanderConfig":
        return cls(enabled=False)


#: Grid explored by :func:`autotune` (a scaled-down OpenTuner sweep).
AUTOTUNE_GRID = {
    "unroll_factor": (1, 2, 4, 8),
    "max_loop_size": (60, 120, 240),
    "max_callee_size": (40, 80, 160),
}


def build_module(
    source: str,
    config: Optional[ExpanderConfig] = None,
    name: str = "program",
) -> Module:
    """Front-end + expander: MiniC source → expanded, simplified IR module."""
    config = config or ExpanderConfig()
    program = parse(source)
    if config.enabled and config.unroll_factor > 1:
        unroll_program(
            program,
            factor=config.unroll_factor,
            max_loop_size=config.max_loop_size,
        )
    module = compile_program(program, name)
    if config.enabled:
        inline_module(
            module,
            max_callee_size=config.max_callee_size,
            max_function_size=config.max_function_size,
        )
    simplify_module(module)
    return module


def autotune(
    source: str,
    measure: Callable[[Module], int],
    *,
    base: Optional[ExpanderConfig] = None,
) -> ExpanderConfig:
    """Pick the expander config minimizing ``measure`` (dynamic instructions).

    ``measure`` receives a freshly built module and returns the metric to
    minimize on the baseline architecture; ties favour less expansion.
    The search is coordinate descent over :data:`AUTOTUNE_GRID`, mirroring
    the offline tuning procedure of §3.2.1.
    """
    best = base or ExpanderConfig()
    best_score = measure(build_module(source, best))
    for knob, choices in AUTOTUNE_GRID.items():
        for choice in choices:
            candidate = replace(best, **{knob: choice})
            if candidate == best:
                continue
            score = measure(build_module(source, candidate))
            if score < best_score:
                best, best_score = candidate, score
    return best
