"""On-demand SSA reconstruction (the LLVM ``SSAUpdater`` analog).

The squeezer's handler insertion (pass ③) introduces additional definitions
of original variables — the zero-extensions materialized in each handler —
and additional control edges (handler → ``BB_orig``).  Rewiring every
downstream use requires phi insertion at the joins of ``CFG_orig``; this
module implements the classic recursive reaching-definition construction
with cycle-breaking phi placement (Braun et al. style, on a complete CFG).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import Value


class UndefinedValueError(Exception):
    """A use was reachable along a path with no definition."""


class SSAUpdater:
    """Rewrites uses of one variable that now has multiple definitions."""

    def __init__(self, func: Function, ty, name_hint: str) -> None:
        self.func = func
        self.type = ty
        self.name_hint = name_hint
        self._def_at_end: dict[BasicBlock, Value] = {}
        self._placed_phis: list[Phi] = []

    def add_def(self, block: BasicBlock, value: Value) -> None:
        """Declare that ``value`` is the variable's value at the end of
        ``block`` (a real definition, not a computed join)."""
        self._def_at_end[block] = value

    def value_at_end(self, block: BasicBlock) -> Value:
        cached = self._def_at_end.get(block)
        if cached is not None:
            return cached
        value = self._value_at_begin(block)
        self._def_at_end[block] = value
        return value

    def _value_at_begin(self, block: BasicBlock) -> Value:
        preds = block.predecessors()
        if not preds:
            raise UndefinedValueError(
                f"{self.name_hint}: no reaching definition at {block.name}"
            )
        if len(preds) == 1:
            return self.value_at_end(preds[0])
        # Place the phi before recursing so loops terminate.
        phi = Phi(self.type, self.func.next_name(f"{self.name_hint}.merge"))
        block.insert(0, phi)
        self._def_at_end[block] = phi
        self._placed_phis.append(phi)
        for pred in preds:
            phi.add_incoming(self.value_at_end(pred), pred)
        return self._try_remove_trivial(phi)

    def _try_remove_trivial(self, phi: Phi) -> Value:
        distinct = {v for v in phi.operands if v is not phi}
        if len(distinct) != 1:
            return phi
        (replacement,) = distinct
        phi.replace_all_uses_with(replacement)
        # Patch cached entries pointing at the phi.
        for block, value in list(self._def_at_end.items()):
            if value is phi:
                self._def_at_end[block] = replacement
        phi.erase_from_parent()
        self._placed_phis.remove(phi)
        return replacement

    def rewrite_use(self, user, operand_index: int) -> None:
        """Replace the use at ``user.operands[operand_index]``."""
        if isinstance(user, Phi):
            incoming_block = user.incoming_blocks[operand_index]
            value = self.value_at_end(incoming_block)
        else:
            value = self._value_at_begin_for_use(user.parent)
        user.set_operand(operand_index, value)

    def _value_at_begin_for_use(self, block: BasicBlock) -> Value:
        # A use in the block where a definition lives refers to that
        # definition directly (SSA: single static def per value).
        existing = self._def_at_end.get(block)
        if existing is not None:
            return existing
        return self._value_at_begin(block)

    def cleanup(self) -> None:
        """Remove phis that became trivial after all uses were rewritten."""
        changed = True
        while changed:
            changed = False
            for phi in list(self._placed_phis):
                if self._try_remove_trivial(phi) is not phi:
                    changed = True
