"""Dead code elimination.

Removes result-producing instructions with no remaining users and no side
effects.  Values named in any live instruction's ``spec_guards`` are kept
alive: after compare elimination (§3.2.4) the program's correctness depends
on the *speculation outcome* of the guarded definition, so the definition
must execute even though its result is otherwise unused.
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction


def _removable(inst: Instruction, guarded: set) -> bool:
    if inst.is_terminator or inst.may_have_side_effects:
        return False
    if not inst.has_result:
        return False
    if inst.users:
        return False
    if inst in guarded:
        return False
    return True


def eliminate_dead_code(func: Function) -> int:
    """Iteratively delete dead instructions; returns the number removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        guarded = set()
        for block in func.blocks:
            for inst in block.instructions:
                guarded.update(inst.spec_guards)
        for block in func.blocks:
            for inst in list(block.instructions):
                if _removable(inst, guarded):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def eliminate_dead_code_module(module: Module) -> int:
    from repro.passes import stats

    removed = sum(eliminate_dead_code(f) for f in module.functions.values())
    stats.bump("dce", "instructions_removed", removed)
    return removed
