"""AST-level loop unrolling — the other half of the expander (§3.2.1).

Unrolls canonical counted ``for`` loops::

    for (T i = e0; i < bound; i += c) body

into a main loop executing ``factor`` bodies per iteration plus a remainder
loop, guarded against unsigned wrap-around::

    T i = e0;
    T limit = bound >= (factor-1)*c ? bound - (factor-1)*c : 0;
    while (i < limit) { body; i += c;  ... (factor times) }
    while (i < bound) { body; i += c; }

Eligibility is conservative (this is the NOELLE-expander substitution — see
DESIGN.md): the induction variable must be declared in the init clause and
not assigned in the body; the bound must be a literal, or a scalar name
neither assigned in the body nor potentially aliased by a call; the body
must not break/continue/return; the step must add a positive constant.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.frontend.ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CondExpr,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    Program,
    ReturnStmt,
    Stmt,
    VarExpr,
    WhileStmt,
    DoWhileStmt,
)


def _stmt_count(stmts: list) -> int:
    total = 0
    for stmt in stmts:
        total += 1
        for attr in ("body", "then_body", "else_body"):
            inner = getattr(stmt, attr, None)
            if inner:
                total += _stmt_count(inner)
    return total


def _contains_control_escape(stmts: list) -> bool:
    """break/continue/return anywhere below (without crossing a nested loop
    for break/continue, but we stay conservative and reject all)."""
    for stmt in stmts:
        if isinstance(stmt, (BreakStmt, ContinueStmt, ReturnStmt)):
            return True
        for attr in ("body", "then_body", "else_body"):
            inner = getattr(stmt, attr, None)
            if inner and _contains_control_escape(inner):
                return True
    return False


def _assigned_names(stmts: list) -> set:
    names: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, AssignStmt):
            if isinstance(stmt.target, VarExpr):
                names.add(stmt.target.name)
            elif isinstance(stmt.target, IndexExpr):
                names.add(stmt.target.base)
        if isinstance(stmt, DeclStmt):
            names.add(stmt.name)
        for attr in ("body", "then_body", "else_body"):
            inner = getattr(stmt, attr, None)
            if inner:
                names |= _assigned_names(inner)
    return names


def _contains_call(node) -> bool:
    if isinstance(node, CallExpr):
        return True
    if isinstance(node, list):
        return any(_contains_call(item) for item in node)
    if isinstance(node, (Stmt, Expr)):
        return any(
            _contains_call(value)
            for value in vars(node).values()
            if isinstance(value, (Stmt, Expr, list))
        )
    return False


def _match_canonical_for(stmt: ForStmt):
    """Return (ivar DeclStmt, bound Expr, step constant) or None."""
    init = stmt.init
    if not isinstance(init, DeclStmt) or init.array_size is not None:
        return None
    if init.ctype.signed or init.ctype.pointer:
        return None
    ivar = init.name
    cond = stmt.cond
    if not (
        isinstance(cond, BinaryExpr)
        and cond.op == "<"
        and isinstance(cond.lhs, VarExpr)
        and cond.lhs.name == ivar
    ):
        return None
    bound = cond.rhs
    step = stmt.step
    if not (
        isinstance(step, AssignStmt)
        and isinstance(step.target, VarExpr)
        and step.target.name == ivar
        and step.op == "+="
        and isinstance(step.value, NumExpr)
        and step.value.value >= 1
    ):
        return None
    assigned = _assigned_names(stmt.body)
    if ivar in assigned:
        return None
    if _contains_control_escape(stmt.body):
        return None
    if isinstance(bound, NumExpr):
        pass
    elif isinstance(bound, VarExpr):
        if bound.name in assigned or _contains_call(stmt.body):
            return None
    else:
        return None
    return init, bound, step.value.value


def _literal_trip_count(init: DeclStmt, bound, step: int) -> Optional[int]:
    """Exact trip count when init and bound are literals."""
    if not isinstance(bound, NumExpr):
        return None
    if init.init is None:
        start = 0
    elif isinstance(init.init, NumExpr):
        start = init.init.value
    else:
        return None
    if bound.value <= start:
        return 0
    return (bound.value - start + step - 1) // step


def _full_unroll(stmt: ForStmt, init: DeclStmt, trips: int) -> Stmt:
    """Replace a small constant-trip loop with straight-line copies."""
    body: list[Stmt] = [init]
    step_stmt = stmt.step
    for _ in range(trips):
        body.append(IfStmt(NumExpr(1), copy.deepcopy(stmt.body), []))
        body.append(copy.deepcopy(step_stmt))
    return IfStmt(NumExpr(1), body, [])


def _unroll_for(
    stmt: ForStmt, factor: int, counter: list, max_loop_size: int = 120
) -> Optional[Stmt]:
    match = _match_canonical_for(stmt)
    if match is None:
        return None
    init, bound, step_const = match
    trips = _literal_trip_count(init, bound, step_const)
    if (
        trips is not None
        and trips <= 2 * factor
        and trips * _stmt_count(stmt.body) <= max_loop_size
    ):
        # Small constant-trip loops (e.g. 3x3/5x5 image masks): eliminate
        # the loop entirely rather than pay guard/remainder overhead.
        counter[0] += 1
        return _full_unroll(stmt, init, trips)
    if trips is not None and trips < 2 * factor:
        # Partial unrolling would spend most iterations in the remainder.
        return None
    ivar = init.name
    ctype = init.ctype
    slack = (factor - 1) * step_const
    limit_name = f"__ur_limit{counter[0]}"
    counter[0] += 1
    limit_decl = DeclStmt(
        ctype,
        limit_name,
        None,
        CondExpr(
            BinaryExpr(">=", copy.deepcopy(bound), NumExpr(slack)),
            BinaryExpr("-", copy.deepcopy(bound), NumExpr(slack)),
            NumExpr(0),
        ),
    )
    step_stmt = AssignStmt(VarExpr(ivar), "+=", NumExpr(step_const))
    main_body: list[Stmt] = []
    for _ in range(factor):
        # Each body copy gets its own scope so locals may redeclare.
        main_body.append(IfStmt(NumExpr(1), copy.deepcopy(stmt.body), []))
        main_body.append(copy.deepcopy(step_stmt))
    main_loop = WhileStmt(
        BinaryExpr("<", VarExpr(ivar), VarExpr(limit_name)), main_body
    )
    remainder_body = [IfStmt(NumExpr(1), copy.deepcopy(stmt.body), []),
                      copy.deepcopy(step_stmt)]
    remainder = WhileStmt(
        BinaryExpr("<", VarExpr(ivar), copy.deepcopy(bound)), remainder_body
    )
    # Wrap in an anonymous scope so ivar/limit don't leak.
    return IfStmt(NumExpr(1), [init, limit_decl, main_loop, remainder], [])


def _unroll_stmts(stmts: list, factor: int, max_loop_size: int, counter: list) -> list:
    out: list[Stmt] = []
    for stmt in stmts:
        for attr in ("body", "then_body", "else_body"):
            inner = getattr(stmt, attr, None)
            if inner:
                setattr(stmt, attr, _unroll_stmts(inner, factor, max_loop_size, counter))
        if (
            isinstance(stmt, ForStmt)
            and factor > 1
            and _stmt_count(stmt.body) * factor <= max_loop_size
        ):
            replacement = _unroll_for(stmt, factor, counter, max_loop_size)
            if replacement is not None:
                out.append(replacement)
                continue
        out.append(stmt)
    return out


def unroll_program(
    program: Program, *, factor: int = 4, max_loop_size: int = 120
) -> int:
    """Unroll eligible loops in place; returns the number of loops unrolled."""
    if factor <= 1:
        return 0
    from repro.passes import stats

    counter = [0]
    for func in program.functions:
        func.body = _unroll_stmts(func.body, factor, max_loop_size, counter)
    stats.bump("unroll", "loops_unrolled", counter[0])
    return counter[0]
