"""The squeezer — BITSPEC's core transformation (§3.2.3).

Given the profiler's squeeze plan, rewrites a prepared function so selected
variables compute and live at 8 bits inside speculative regions, with a
misspeculation handler per region that re-extends live state and re-executes
the block at the original bitwidth:

② clone the CFG into ``CFG_spec``/``CFG_orig`` and speculatively narrow the
   planned definitions (speculative truncates bridge unsqueezed operands);
③ insert one handler per speculative region: zero-extensions of the values
   live into the original block, a branch to ``BB_orig``, and SSA repair of
   ``CFG_orig`` through phi insertion (Eq. 8, generalized via SSAUpdater).

After any misspeculation, execution continues in ``CFG_orig`` until the
function returns — the paper's misspeculate-once-per-invocation model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.cfg import reverse_postorder
from repro.ir.clone import clone_blocks
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Br,
    Cast,
    Icmp,
    Instruction,
    Load,
    Phi,
)
from repro.ir.liveness import compute_liveness
from repro.ir.types import IntType, int_type
from repro.passes import stats
from repro.ir.values import Constant, Value
from repro.passes.ssa_updater import SSAUpdater
from repro.profiler.selection import SqueezePlan
from repro.sir.regions import SpeculativeRegion


@dataclass
class SqueezeResult:
    """Bookkeeping produced by squeezing one function."""

    narrowed: int = 0
    narrowed_cmps: int = 0
    spec_truncs: int = 0
    regions: int = 0
    #: Spec relation restricted to blocks: CFG_orig block -> CFG_spec block
    spec_block: dict = field(default_factory=dict)
    #: spec-world value -> its 8-bit form
    spec8: dict = field(default_factory=dict)
    #: per-(block, value) speculative-truncate dedup cache
    trunc_cache: dict = field(default_factory=dict)


def _narrow_operand(
    func: Function,
    block: BasicBlock,
    position: Instruction,
    value: Value,
    spec8: dict,
    result: SqueezeResult,
    slice_ty: IntType,
) -> Value:
    """Slice-width form of ``value`` for use by a narrowed instruction."""
    mapped = spec8.get(value)
    if mapped is not None:
        return mapped
    if isinstance(value, Constant):
        return Constant(slice_ty, value.value)
    if isinstance(value.type, IntType) and value.type.bits == slice_ty.bits:
        return value
    cached = result.trunc_cache.get((id(block), value))
    if cached is not None:
        return cached
    if isinstance(value.type, IntType) and value.type.bits < slice_ty.bits:
        # i1 operand: widen to the slice; trivially fits, never misspeculates.
        widen = Cast("zext", value, slice_ty, func.next_name("swiden"))
        index = block.instructions.index(position)
        block.insert(index, widen)
        result.trunc_cache[(id(block), value)] = widen
        return widen
    # Unsqueezed wide producer: bridge with a speculative truncate, which
    # misspeculates when the run-time value does not fit the slice.
    trunc = Cast("trunc", value, slice_ty, func.next_name("strunc"))
    trunc.speculative = True
    index = block.instructions.index(position)
    block.insert(index, trunc)
    result.spec_truncs += 1
    result.trunc_cache[(id(block), value)] = trunc
    return trunc


def _narrow_definition(
    func: Function,
    inst: Instruction,
    spec8: dict,
    result: SqueezeResult,
    slice_ty: IntType,
) -> Optional[Instruction]:
    """Create the slice-width clone of ``inst`` (or alias through for casts)."""
    block = inst.parent
    if isinstance(inst, BinOp):
        lhs = _narrow_operand(func, block, inst, inst.lhs, spec8, result, slice_ty)
        rhs = _narrow_operand(func, block, inst, inst.rhs, spec8, result, slice_ty)
        narrow = BinOp(inst.opcode, lhs, rhs, func.next_name(f"{inst.name}.n"))
        narrow.speculative = True
    elif isinstance(inst, Load):
        narrow = Load(
            inst.ptr, func.next_name(f"{inst.name}.n"), result_type=slice_ty
        )
        narrow.speculative = True
    elif isinstance(inst, Cast):
        src = inst.value
        mapped = spec8.get(src)
        if mapped is not None:
            spec8[inst] = mapped
            return None
        if isinstance(src, Constant):
            spec8[inst] = Constant(slice_ty, slice_ty.wrap(src.value))
            return None
        if isinstance(src.type, IntType) and src.type.bits == slice_ty.bits:
            spec8[inst] = src
            return None
        if isinstance(src.type, IntType) and src.type.bits < slice_ty.bits:
            # Sub-slice source (i1 from a compare): the low slice bits of the
            # original widening cast are the same cast to the slice type —
            # always fits, so no speculation is needed.
            narrow = Cast(inst.opcode, src, slice_ty, func.next_name(f"{inst.name}.n"))
        else:
            narrow = Cast("trunc", src, slice_ty, func.next_name(f"{inst.name}.n"))
            narrow.speculative = True
            result.spec_truncs += 1
    elif isinstance(inst, Phi):
        narrow = Phi(slice_ty, func.next_name(f"{inst.name}.n"))
        # incomings are filled once every definition has its 8-bit form
    else:  # pragma: no cover - plan only selects the kinds above
        raise TypeError(f"cannot narrow {inst.opcode}")
    index = block.instructions.index(inst)
    block.insert(index, narrow)
    spec8[inst] = narrow
    return narrow


def squeeze_function(
    func: Function, plan: SqueezePlan, module: Optional[Module] = None
) -> SqueezeResult:
    """Apply the squeezer to ``func`` (already CFG-prepared and profiled)."""
    result = SqueezeResult()
    if not plan.narrow and not plan.narrow_cmps:
        return result
    slice_ty = int_type(plan.width)

    # Dedicated (idempotent, call-free) entry block to host the hoisted
    # argument truncates; created pre-clone so its CFG_orig twin exists.
    if plan.narrow_args:
        old_entry = func.entry
        pre_entry = func.add_block("entry.args")
        pre_entry.append(Br(old_entry))
        func.set_entry(pre_entry)

    # -- pass ①b: clone into CFG_spec / CFG_orig ------------------------------
    orig_blocks = list(func.blocks)
    for block in orig_blocks:
        block.world = "orig"
    vmap, bmap = clone_blocks(func, orig_blocks, ".sp")
    for block in orig_blocks:
        clone = bmap[block]
        clone.world = "spec"
        result.spec_block[block] = clone
    func.set_entry(bmap[func.entry])

    spec_narrow = {vmap[v] for v in plan.narrow}
    spec_cmps = {vmap[c] for c in plan.narrow_cmps}
    spec8 = result.spec8

    # Hoisted argument truncates: one speculative slice form per narrow
    # argument, materialized in the dedicated spec entry block.
    spec_entry = func.entry
    if plan.narrow_args:
        for position, arg in enumerate(
            sorted(plan.narrow_args, key=lambda a: a.index)
        ):
            trunc = Cast("trunc", arg, slice_ty, func.next_name(f"{arg.name}.arg8"))
            trunc.speculative = True
            spec_entry.insert(position, trunc)
            spec8[arg] = trunc
            result.spec_truncs += 1

    # -- pass ②: narrow definitions in CFG_spec --------------------------------
    narrow_phis: list[tuple[Phi, Phi]] = []
    for block in reverse_postorder(func):
        if block.world != "spec":
            continue
        for inst in list(block.instructions):
            if inst in spec_narrow:
                narrow = _narrow_definition(func, inst, spec8, result, slice_ty)
                if isinstance(narrow, Phi):
                    narrow_phis.append((inst, narrow))
                result.narrowed += 1
            elif inst in spec_cmps:
                lhs = _narrow_operand(
                    func, block, inst, inst.lhs, spec8, result, slice_ty
                )
                rhs = _narrow_operand(
                    func, block, inst, inst.rhs, spec8, result, slice_ty
                )
                narrow_cmp = Icmp(
                    inst.pred, lhs, rhs, func.next_name(f"{inst.name}.n")
                )
                index = block.instructions.index(inst)
                block.insert(index, narrow_cmp)
                inst.replace_all_uses_with(narrow_cmp)
                inst.erase_from_parent()
                spec8[inst] = narrow_cmp  # i1-typed: used directly by handlers
                result.narrowed_cmps += 1

    # Fill narrow-phi incomings (all producers now have 8-bit forms).
    for original, narrow in narrow_phis:
        for value, pred in original.incoming():
            if value in spec8:
                narrow.add_incoming(spec8[value], pred)
            elif isinstance(value, Constant):
                narrow.add_incoming(Constant(slice_ty, value.value), pred)
            elif isinstance(value.type, IntType) and value.type.bits == plan.width:
                narrow.add_incoming(value, pred)
            else:  # pragma: no cover - excluded by the plan's phi fixpoint
                raise AssertionError(
                    f"narrow phi {narrow.name}: wide incoming {value!r}"
                )

    # -- pass ②c: extend narrowed values back for surviving wide uses ---------
    for original in list(spec8):
        if not isinstance(original, Instruction) or original.parent is None:
            continue
        if original not in spec_narrow:
            continue
        narrow_value = spec8[original]
        block = original.parent
        if original.users:
            ext = Cast(
                "zext", narrow_value, original.type, func.next_name(f"{original.name}.x")
            )
            phis = block.phis()
            if isinstance(original, Phi):
                index = len(phis)  # after the phi group
            else:
                index = block.instructions.index(original)
            block.insert(index, ext)
            original.replace_all_uses_with(ext)
        original.erase_from_parent()

    # -- speculative regions: one per block holding speculative instructions --
    liveness = compute_liveness(func)
    regions: list[SpeculativeRegion] = []
    for block in func.blocks:
        if block.world != "spec":
            continue
        if any(inst.speculative for inst in block.instructions):
            regions.append(SpeculativeRegion([block]))
    result.regions = len(regions)

    # -- pass ③: handlers + SSA repair of CFG_orig ------------------------------
    orig_of = {clone: orig for orig, clone in bmap.items()}
    updaters: dict[Instruction, SSAUpdater] = {}
    def_blocks: dict[Instruction, BasicBlock] = {}
    for block in orig_blocks:
        for inst in block.instructions:
            if inst.has_result:
                def_blocks[inst] = block

    for region in regions:
        b_spec = region.entry
        b_orig = orig_of[b_spec]
        handler = func.add_block(f"{b_orig.name}.hdl")
        handler.world = "handler"
        region.set_handler(handler)
        live_in = sorted(
            (
                v
                for v in liveness.live_in.get(b_orig, ())
                if isinstance(v, Instruction) and v in def_blocks
            ),
            key=lambda v: v.name,
        )
        for v_orig in live_in:
            spec_value = vmap.get(v_orig)
            if spec_value is None:  # pragma: no cover - clone covers all defs
                continue
            narrow_value = spec8.get(spec_value)
            if narrow_value is not None and narrow_value.type != v_orig.type:
                ext = Cast(
                    "zext",
                    narrow_value,
                    v_orig.type,
                    func.next_name(f"{v_orig.name}.h"),
                )
                handler.append(ext)
                handler_value: Value = ext
            elif narrow_value is not None:
                handler_value = narrow_value
            else:
                handler_value = spec_value
            updater = updaters.get(v_orig)
            if updater is None:
                updater = SSAUpdater(func, v_orig.type, v_orig.name)
                updater.add_def(def_blocks[v_orig], v_orig)
                updaters[v_orig] = updater
            updater.add_def(handler, handler_value)
        handler.append(Br(b_orig))

    # Rewrite CFG_orig uses of variables that handlers redefine.
    for v_orig, updater in updaters.items():
        home = def_blocks[v_orig]
        for user in list(v_orig.users):
            if user.parent is None:
                continue
            if user.parent is home and not isinstance(user, Phi):
                continue
            for index, operand in enumerate(user.operands):
                if operand is v_orig:
                    if isinstance(user, Phi) and user.incoming_blocks[index] is home:
                        continue
                    updater.rewrite_use(user, index)
    for updater in updaters.values():
        updater.cleanup()
    return result


def squeeze_module(
    module: Module, plans: dict[str, SqueezePlan]
) -> dict[str, SqueezeResult]:
    """Squeeze every function that has a plan; returns per-function results."""
    results = {}
    for name, plan in plans.items():
        result = squeeze_function(module.functions[name], plan, module)
        results[name] = result
        stats.bump("squeezer", "variables_narrowed", result.narrowed)
        stats.bump("squeezer", "compares_narrowed", result.narrowed_cmps)
        stats.bump("squeezer", "casts_inserted", result.spec_truncs)
        stats.bump("squeezer", "regions_created", result.regions)
        stats.bump("squeezer", "functions_squeezed",
                   1 if (plan.narrow or plan.narrow_cmps) else 0)
    return results
