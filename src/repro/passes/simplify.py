"""Scalar and CFG simplification.

A small instcombine/simplifycfg analog: constant folding, identity folds,
add/sub chain reassociation (which collapses the induction-variable chains
loop unrolling produces), constant-branch folding, straight-line block
merging and empty-block threading.  Run after the expander so Figure 3's
"fewer IR instructions as unrolling grows" effect materializes.
"""

from __future__ import annotations

from repro.interp.interpreter import TrapError, evaluate_binop, evaluate_icmp
from repro.ir.block import BasicBlock
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Br,
    Cast,
    CondBr,
    Icmp,
    Instruction,
    Phi,
    Select,
)
from repro.ir.types import IntType
from repro.ir.values import Constant, Value
from repro.passes.dce import eliminate_dead_code


def _fold_instruction(inst: Instruction):
    """Return a replacement Value for ``inst``, or None."""
    if isinstance(inst, BinOp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            try:
                return Constant(
                    inst.type, evaluate_binop(inst.opcode, lhs.value, rhs.value, inst.type)
                )
            except TrapError:
                return None
        if isinstance(rhs, Constant):
            c = rhs.value
            if c == 0 and inst.opcode in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
                return lhs
            if c == 0 and inst.opcode in ("mul", "and"):
                return Constant(inst.type, 0)
            if c == 1 and inst.opcode in ("mul", "udiv", "sdiv"):
                return lhs
            if c == inst.type.mask and inst.opcode == "and":
                return lhs
            # Reassociate constant chains: (x op c1) op c2 -> x op (c1+c2).
            if (
                isinstance(lhs, BinOp)
                and lhs.opcode == inst.opcode
                and inst.opcode in ("add", "sub")
                and isinstance(lhs.rhs, Constant)
            ):
                merged = inst.type.wrap(lhs.rhs.value + c)
                return BinOp(inst.opcode, lhs.lhs, Constant(inst.type, merged))
        if isinstance(lhs, Constant):
            c = lhs.value
            if c == 0 and inst.opcode == "add":
                return rhs
            if c == 0 and inst.opcode in ("mul", "and"):
                return Constant(inst.type, 0)
        if lhs is rhs:
            if inst.opcode in ("xor", "sub"):
                return Constant(inst.type, 0)
            if inst.opcode in ("and", "or"):
                return lhs
        return None
    if isinstance(inst, Icmp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            result = evaluate_icmp(inst.pred, lhs.value, rhs.value, lhs.type)
            from repro.ir.types import int_type

            return Constant(int_type(1), int(result))
        return None
    if isinstance(inst, Cast):
        value = inst.value
        if isinstance(value, Constant):
            if inst.opcode == "sext":
                return Constant(inst.type, value.type.to_signed(value.value))
            return Constant(inst.type, value.value)
        # zext(trunc(x)) where widths match x -> cannot fold in general
        # (trunc drops bits); but trunc(zext(x)) back to the source width is x.
        if (
            inst.opcode == "trunc"
            and isinstance(value, Cast)
            and value.opcode == "zext"
            and value.value.type.bits == inst.type.bits
        ):
            return value.value
        if (
            inst.opcode in ("zext", "trunc")
            and isinstance(value, Cast)
            and value.opcode == "zext"
            and inst.opcode == "zext"
        ):
            return Cast("zext", value.value, inst.type)
        return None
    if isinstance(inst, Select):
        if isinstance(inst.cond, Constant):
            return inst.true_value if inst.cond.value else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
        return None
    return None


def fold_constants(func: Function) -> int:
    """Apply peephole folds until fixpoint; returns number of rewrites."""
    total = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                if inst.speculative:
                    # Folding a speculative instruction would silently drop
                    # its misspeculation check; leave it to the hardware.
                    continue
                replacement = _fold_instruction(inst)
                if replacement is None:
                    continue
                if isinstance(replacement, Instruction) and replacement.parent is None:
                    # A freshly created instruction (reassociation): insert it
                    # in place of the original.
                    replacement.name = func.next_name(replacement.opcode)
                    index = block.instructions.index(inst)
                    block.insert(index, replacement)
                inst.replace_all_uses_with(replacement)
                inst.erase_from_parent()
                total += 1
                changed = True
    return total


def _fold_constant_branches(func: Function) -> int:
    changed = 0
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Constant):
            taken = term.if_true if term.cond.value else term.if_false
            dropped = term.if_false if term.cond.value else term.if_true
            if dropped is not taken:
                for phi in dropped.phis():
                    if block in phi.incoming_blocks:
                        phi.remove_incoming(block)
            term.erase_from_parent()
            block.append(Br(taken))
            changed += 1
    return changed


def _merge_straightline(func: Function) -> int:
    """Merge B into A when A->B is B's only entry and A's only exit."""
    merged = 0
    changed = True
    while changed:
        changed = False
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
        for block in func.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ = term.target
            if succ is block or len(preds.get(succ, [])) != 1:
                continue
            if succ is func.entry or succ.phis():
                continue
            if succ.handler_for is not None or block.handler_for is not None:
                continue
            if succ.region is not block.region:
                continue
            # Fold: remove the branch, move succ's instructions into block.
            succ_successors = succ.successors()
            term.erase_from_parent()
            for inst in list(succ.instructions):
                succ.remove(inst)
                block.append(inst)
            for after in succ_successors:
                for phi in after.phis():
                    for i, pred in enumerate(phi.incoming_blocks):
                        if pred is succ:
                            phi.set_incoming_block(i, block)
            func.remove_block(succ)
            merged += 1
            changed = True
            break  # pred map is stale; recompute
    return merged


def _thread_empty_blocks(func: Function) -> int:
    """Retarget branches that hop through a block containing only ``br``."""
    threaded = 0
    for block in list(func.blocks):
        if block is func.entry or block.handler_for is not None:
            continue
        if len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Br):
            continue
        target = term.target
        if target is block:
            continue
        if target.phis():
            continue  # would need phi surgery; the merge pass handles these
        for pred in block.predecessors():
            pred.terminator.replace_target(block, target)
            threaded += 1
    if threaded:
        remove_unreachable_blocks(func)
    return threaded


def simplify_function(func: Function) -> None:
    """Run the full simplification pipeline to a fixpoint."""
    from repro.passes import stats

    for _ in range(8):
        changed = 0
        folds = fold_constants(func)
        stats.bump("simplify", "constants_folded", folds)
        changed += folds
        changed += _fold_constant_branches(func)
        changed += _thread_empty_blocks(func)
        changed += _merge_straightline(func)
        changed += eliminate_dead_code(func)
        changed += remove_unreachable_blocks(func)
        if not changed:
            break


def simplify_module(module: Module) -> None:
    for func in module.functions.values():
        simplify_function(func)
