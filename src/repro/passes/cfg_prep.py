"""CFG preparation — squeezer pass ① (§3.2.3, Eqs. 4–6).

Splits basic blocks so that:

* Eq. 4 — a block contains loads or stores, never both (no WAR memory
  dependences inside a block, so re-execution is idempotent);
* Eq. 5 — every volatile instruction or call sits alone in its block
  (non-idempotent instructions fence speculative regions);
* Eq. 6 — a block holds either only phis or only non-phis (terminators
  exempt), so misspeculation handling never needs to reason about phis
  except the ones pass ③ injects.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.instructions import Call, Instruction, Load, Phi, Store


def split_block(block: BasicBlock, index: int, name_hint: str) -> BasicBlock:
    """Move ``instructions[index:]`` into a new fall-through block.

    The original block receives an unconditional branch to the new block;
    successor phis are rewired to the new block (which now owns the
    terminator).
    """
    func = block.parent
    position = func.blocks.index(block) + 1
    tail = func.add_block(f"{block.name}.{name_hint}", index=position)
    tail.world = block.world
    moved = list(block.instructions[index:])
    for inst in moved:
        block.remove(inst)
        tail.append(inst)
    for succ in tail.successors():
        for phi in succ.phis():
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is block:
                    phi.set_incoming_block(i, tail)
    IRBuilder(block).br(tail)
    return tail


def _split_phis(func: Function) -> None:
    for block in list(func.blocks):
        phis = block.phis()
        if not phis:
            continue
        body = [
            i
            for i in block.instructions
            if not isinstance(i, Phi) and not i.is_terminator
        ]
        if body:
            split_block(block, len(phis), "nonphi")


def _split_non_idempotent(func: Function) -> None:
    """Eq. 5: isolate calls and volatile instructions."""
    progress = True
    while progress:
        progress = False
        for block in list(func.blocks):
            insts = block.instructions
            for index, inst in enumerate(insts):
                if inst.is_terminator:
                    break
                fencing = isinstance(inst, Call) or inst.volatile
                if not fencing:
                    continue
                if index > 0:
                    split_block(block, index, "fence")
                    progress = True
                    break
                # inst is first; split after it if more non-terminators follow
                rest = insts[1:]
                if rest and not (len(rest) == 1 and rest[0].is_terminator):
                    split_block(block, 1, "postfence")
                    progress = True
                    break
            if progress:
                break


def _split_memory_mix(func: Function) -> None:
    """Eq. 4: a block may contain loads or stores, not both."""
    progress = True
    while progress:
        progress = False
        for block in list(func.blocks):
            seen_load = False
            seen_store = False
            for index, inst in enumerate(block.instructions):
                if isinstance(inst, Load):
                    if seen_store:
                        split_block(block, index, "mem")
                        progress = True
                        break
                    seen_load = True
                elif isinstance(inst, Store):
                    if seen_load:
                        split_block(block, index, "mem")
                        progress = True
                        break
                    seen_store = True
            if progress:
                break


def prepare_cfg(func: Function) -> None:
    """Run all three splitting criteria on ``func``."""
    _split_phis(func)
    _split_non_idempotent(func)
    _split_memory_mix(func)


def prepare_cfg_module(module: Module) -> None:
    for func in module.functions.values():
        prepare_cfg(func)


def check_prepared(func: Function) -> list[str]:
    """Diagnostics: which blocks violate Eqs. 4–6 (empty when prepared)."""
    problems: list[str] = []
    for block in func.blocks:
        loads = sum(isinstance(i, Load) for i in block.instructions)
        stores = sum(isinstance(i, Store) for i in block.instructions)
        if loads and stores:
            problems.append(f"{block.name}: mixes loads and stores")
        fencing = [
            i
            for i in block.instructions
            if (isinstance(i, Call) or i.volatile) and not i.is_terminator
        ]
        body_size = sum(1 for i in block.instructions if not i.is_terminator)
        if fencing and body_size != 1:
            problems.append(f"{block.name}: call/volatile not isolated")
        phis = len(block.phis())
        if phis and phis != body_size:
            problems.append(f"{block.name}: mixes phis and non-phis")
    return problems
