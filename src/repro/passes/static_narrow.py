"""Static (non-speculative) bitwidth narrowing — the RQ2 baseline.

Narrows definitions the static analyses *prove* fit 8 bits (or whose users
provably demand only 8 bits, for low-bits-preserving ops).  No speculative
regions, handlers or ISA monitoring are needed: every truncate is exact.
This models "register packing without speculation": the BITSPEC hardware's
slice storage is used, but only where a production static analysis finds the
opportunity — Figure 12 measures what that leaves on the table.
"""

from __future__ import annotations

from repro.analysis.bitwidth import demanded_bits, known_bits
from repro.ir.block import BasicBlock
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function, Module
from repro.ir.instructions import BinOp, Cast, Icmp, Instruction, Load, Phi
from repro.ir.types import IntType, int_type, required_bits
from repro.ir.values import Constant, Value

WIDTH = 8
I8 = int_type(WIDTH)

#: ops whose low 8 result bits depend only on the low 8 operand bits
_LOW_BITS_PRESERVING = frozenset({"add", "sub", "and", "or", "xor", "shl"})
#: ops that are exact at 8 bits when operands provably fit 8 bits
_FIT_PRESERVING = frozenset({"add", "and", "or", "xor", "shl", "lshr"})
_UNSIGNED_PREDS = frozenset({"eq", "ne", "ult", "ule", "ugt", "uge"})


def plan_static_narrowing(func: Function) -> tuple[set, set]:
    """(definitions to narrow, comparisons to narrow), all proven safe."""
    known = known_bits(func)
    demanded = demanded_bits(func)

    def fits(value: Value) -> bool:
        if isinstance(value, Constant):
            return required_bits(value.value) <= WIDTH
        if isinstance(value, Instruction):
            return known.get(value, 64) <= WIDTH
        return False

    candidates: set[Instruction] = set()
    cmps: set[Icmp] = set()
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Icmp):
                if inst.pred in _UNSIGNED_PREDS and isinstance(
                    inst.lhs.type, IntType
                ) and inst.lhs.type.bits > WIDTH:
                    if fits(inst.lhs) and fits(inst.rhs):
                        cmps.add(inst)
                continue
            if not isinstance(inst.type, IntType) or inst.type.bits <= WIDTH:
                continue
            if isinstance(inst, BinOp):
                op = inst.opcode
                proven_fit = known.get(inst, 64) <= WIDTH and all(
                    fits(o) for o in (inst.lhs, inst.rhs)
                )
                low_demand = (
                    demanded.get(inst, 64) <= WIDTH and op in _LOW_BITS_PRESERVING
                )
                if (op in _FIT_PRESERVING and proven_fit) or low_demand:
                    # shift amounts must themselves fit the slice
                    if op in ("shl", "lshr") and not fits(inst.rhs):
                        continue
                    candidates.add(inst)
            elif isinstance(inst, Phi):
                if known.get(inst, 64) <= WIDTH or demanded.get(inst, 64) <= WIDTH:
                    candidates.add(inst)
            elif isinstance(inst, Cast) and inst.opcode in ("zext", "trunc"):
                if fits(inst.value) or demanded.get(inst, 64) <= WIDTH:
                    if inst.opcode == "trunc" or fits(inst.value):
                        candidates.add(inst)

    # Phi fixpoint: incomings must be narrowed values or small constants.
    changed = True
    while changed:
        changed = False
        for inst in list(candidates):
            if not isinstance(inst, Phi):
                continue
            for value in inst.operands:
                ok = (
                    (isinstance(value, Constant) and required_bits(value.value) <= WIDTH)
                    or value in candidates
                    or (
                        isinstance(value.type, IntType)
                        and value.type.bits <= WIDTH
                    )
                )
                if not ok:
                    candidates.discard(inst)
                    changed = True
                    break

    # Narrow-demand bridging uses plain truncs (drop bits we may rely on for
    # FIT-narrowed ops) — for proven-fit ops the trunc is exact anyway; for
    # demand-narrowed ops dropping high bits is precisely what is allowed.
    kept_cmps = set()
    for cmp in cmps:
        # Comparisons need *values*, not just low bits: both sides must be
        # proven-fit or narrowed proven-fit producers.
        kept_cmps.add(cmp)
    return candidates, kept_cmps


def _narrow_value(
    func: Function,
    block: BasicBlock,
    position: Instruction,
    value: Value,
    narrow_map: dict,
) -> Value:
    mapped = narrow_map.get(value)
    if mapped is not None:
        return mapped
    if isinstance(value, Constant):
        return Constant(I8, value.value)
    if isinstance(value.type, IntType) and value.type.bits == WIDTH:
        return value
    trunc = Cast("trunc", value, I8, func.next_name("ntr"))
    index = block.instructions.index(position)
    block.insert(index, trunc)
    return trunc


def narrow_function(func: Function) -> int:
    """Apply static narrowing; returns the number of narrowed definitions."""
    candidates, cmps = plan_static_narrowing(func)
    if not candidates and not cmps:
        return 0
    narrow_map: dict[Value, Value] = {}
    narrow_phis: list[tuple[Phi, Phi]] = []
    count = 0
    for block in reverse_postorder(func):
        for inst in list(block.instructions):
            if inst in candidates:
                if isinstance(inst, Phi):
                    narrow = Phi(I8, func.next_name(f"{inst.name}.n"))
                    block.insert(block.instructions.index(inst), narrow)
                    narrow_phis.append((inst, narrow))
                    narrow_map[inst] = narrow
                elif isinstance(inst, Cast):
                    source = inst.value
                    mapped = narrow_map.get(source)
                    if mapped is not None:
                        narrow_map[inst] = mapped
                    elif isinstance(source, Constant):
                        narrow_map[inst] = Constant(I8, I8.wrap(source.value))
                    elif (
                        isinstance(source.type, IntType)
                        and source.type.bits == WIDTH
                    ):
                        narrow_map[inst] = source
                    else:
                        narrow = Cast("trunc", source, I8, func.next_name(f"{inst.name}.n"))
                        block.insert(block.instructions.index(inst), narrow)
                        narrow_map[inst] = narrow
                else:
                    lhs = _narrow_value(func, block, inst, inst.lhs, narrow_map)
                    rhs = _narrow_value(func, block, inst, inst.rhs, narrow_map)
                    narrow = BinOp(inst.opcode, lhs, rhs, func.next_name(f"{inst.name}.n"))
                    block.insert(block.instructions.index(inst), narrow)
                    narrow_map[inst] = narrow
                count += 1
            elif inst in cmps:
                lhs = _narrow_value(func, block, inst, inst.lhs, narrow_map)
                rhs = _narrow_value(func, block, inst, inst.rhs, narrow_map)
                narrow_cmp = Icmp(inst.pred, lhs, rhs, func.next_name(f"{inst.name}.n"))
                block.insert(block.instructions.index(inst), narrow_cmp)
                inst.replace_all_uses_with(narrow_cmp)
                inst.erase_from_parent()
                count += 1

    for original, narrow in narrow_phis:
        for value, pred in original.incoming():
            if value in narrow_map:
                narrow.add_incoming(narrow_map[value], pred)
            elif isinstance(value, Constant):
                narrow.add_incoming(Constant(I8, value.value), pred)
            else:
                narrow.add_incoming(value, pred)

    for original in list(narrow_map):
        if not isinstance(original, Instruction) or original.parent is None:
            continue
        if original not in candidates:
            continue
        block = original.parent
        if original.users:
            ext = Cast(
                "zext",
                narrow_map[original],
                original.type,
                func.next_name(f"{original.name}.x"),
            )
            if isinstance(original, Phi):
                block.insert(len(block.phis()), ext)
            else:
                block.insert(block.instructions.index(original), ext)
            original.replace_all_uses_with(ext)
        original.erase_from_parent()
    return count


def narrow_module(module: Module) -> int:
    from repro.passes import stats

    narrowed = sum(narrow_function(f) for f in module.functions.values())
    stats.bump("static-narrow", "operations_narrowed", narrowed)
    return narrowed
