"""LLVM ``-stats``-style pass counters.

Passes report what they did through a process-wide *scoped* registry:
:func:`collecting` opens a scope, :func:`bump` adds to a named counter of
the innermost open scope, and the scope's dict is the result.  When no
scope is open, :func:`bump` is a no-op costing one truthiness check — so
instrumented passes pay nothing outside of collection, and nothing needs
to be threaded through pass signatures.

The pipeline (:func:`repro.core.pipeline.compile_binary`) wraps the whole
compilation in a scope and stores the snapshot on
``CompiledBinary.pass_stats``; the eval harness copies it onto
``RunRecord.pass_stats`` so ``repro.bench`` caches it with the run, and
``python -m repro.obs report`` renders it.

Counter naming: ``bump("squeezer", "variables_narrowed")`` — the pass
name groups counters in reports, the counter name says what was counted.
Keep both lowercase-with-underscores.
"""

from __future__ import annotations

from contextlib import contextmanager

#: stack of open collection scopes (innermost last)
_SCOPES: list[dict] = []


@contextmanager
def collecting():
    """Open a collection scope; yields the (live) stats dict.

    Scopes nest: counters land in the innermost scope only, so a nested
    compilation (e.g. a fuzz oracle compiling under an outer bench scope)
    does not pollute its parent.
    """
    scope: dict = {}
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.pop()


def bump(pass_name: str, counter: str, amount: int = 1) -> None:
    """Add ``amount`` to ``pass_name.counter`` in the innermost scope."""
    if not _SCOPES or not amount:
        return
    counters = _SCOPES[-1].setdefault(pass_name, {})
    counters[counter] = counters.get(counter, 0) + amount


def snapshot(scope: dict) -> dict:
    """A deterministic, JSON-ready copy of a scope (keys sorted)."""
    return {
        pass_name: {k: scope[pass_name][k] for k in sorted(scope[pass_name])}
        for pass_name in sorted(scope)
    }
