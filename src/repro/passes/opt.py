"""BITSPEC-specific optimizations: compare elimination and bitmask elision.

*Compare elimination* (§3.2.4): a comparison between a speculative 8-bit
value and a constant that cannot fit the slice is decided by the speculation
outcome itself — if the guarded definition did not misspeculate, the value
is < 2^8, so the compare folds to a constant.  The guarded definition is
pinned alive via ``spec_guards`` so DCE cannot remove the speculation.

*Bitmask elision* (RQ3): ``and v, 0xFF`` becomes a register-slice move —
expressed in IR as ``zext(trunc(v, 8))``, which the back-end lowers to an
8-bit slice access and which lets neighbouring squeezed instructions consume
the 8-bit value directly (the simplifier folds ``trunc(zext(x8))`` to x8).
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import BinOp, Cast, Icmp, Instruction
from repro.ir.types import IntType, int_type
from repro.ir.values import Constant, Value
from repro.profiler.selection import SQUEEZE_WIDTH

#: predicate -> constant result when lhs < 2^width <= rhs
_FOLD_WHEN_RHS_TOO_BIG = {
    "ult": 1,
    "ule": 1,
    "ugt": 0,
    "uge": 0,
    "eq": 0,
    "ne": 1,
}


def _speculative_root(value: Value, width: int) -> Instruction | None:
    """The speculative definition guaranteeing ``value`` < 2^width, if any."""
    if isinstance(value, Cast) and value.opcode == "zext":
        source = value.value
        if (
            isinstance(source, Instruction)
            and source.speculative
            and isinstance(source.type, IntType)
            and source.type.bits == width
        ):
            return source
    if (
        isinstance(value, Instruction)
        and value.speculative
        and isinstance(value.type, IntType)
        and value.type.bits == width
    ):
        return value
    return None


def eliminate_compares(func: Function, width: int = SQUEEZE_WIDTH) -> int:
    """Fold compares decided by speculation; returns the number removed."""
    removed = 0
    limit = 1 << width
    for block in list(func.blocks):
        if block.world == "orig":
            continue  # CFG_orig executes without speculation guarantees
        for inst in list(block.instructions):
            if not isinstance(inst, Icmp):
                continue
            lhs, rhs = inst.lhs, inst.rhs
            if not isinstance(rhs, Constant):
                continue
            outcome = _FOLD_WHEN_RHS_TOO_BIG.get(inst.pred)
            if outcome is None:
                continue
            root = _speculative_root(lhs, width)
            if root is None:
                continue
            folds = False
            if rhs.value >= limit:
                folds = True
            elif rhs.value == limit - 1 and inst.pred == "ule":
                # v <= slice max is tautological for a non-misspeculated slice.
                outcome = 1
                folds = True
            if not folds:
                continue
            replacement = Constant(int_type(1), outcome)
            inst.replace_all_uses_with(replacement)
            terminator = block.terminator
            if terminator is not None and root not in terminator.spec_guards:
                terminator.spec_guards.append(root)
            inst.erase_from_parent()
            removed += 1
    return removed


def elide_bitmasks(func: Function, width: int = SQUEEZE_WIDTH) -> int:
    """Rewrite ``and v, slice-mask`` as a slice move; returns rewrites done.

    Only byte-aligned slice widths qualify: the register file is
    byte-granular, so a sub-byte mask (e.g. ``and v, 0xF`` at a 4-bit
    slice) is a real ALU op, not a slice access — the byte cell would
    deliver the upper nibble too.
    """
    if width % 8:
        return 0
    rewritten = 0
    limit = 1 << width
    for block in list(func.blocks):
        if block.world == "orig":
            continue
        for inst in list(block.instructions):
            if not (isinstance(inst, BinOp) and inst.opcode == "and"):
                continue
            if not isinstance(inst.type, IntType) or inst.type.bits <= width:
                continue
            lhs, rhs = inst.lhs, inst.rhs
            mask = None
            source = None
            if isinstance(rhs, Constant) and rhs.value == limit - 1:
                source = lhs
            elif isinstance(lhs, Constant) and lhs.value == limit - 1:
                source = rhs
            if source is None:
                continue
            index = block.instructions.index(inst)
            trunc = Cast(
                "trunc", source, int_type(width), func.next_name("slice")
            )
            block.insert(index, trunc)
            ext = Cast("zext", trunc, inst.type, func.next_name("slice.x"))
            block.insert(index + 1, ext)
            inst.replace_all_uses_with(ext)
            inst.erase_from_parent()
            rewritten += 1
    return rewritten


def run_speculative_opts(
    module: Module,
    *,
    compare_elimination: bool = True,
    bitmask_elision: bool = True,
    slice_width: int = SQUEEZE_WIDTH,
    skip: frozenset = frozenset(),
) -> dict[str, int]:
    """Run the enabled optimizations module-wide; returns counts.

    ``skip`` names functions to leave untouched — the pipeline's
    BASELINE-fallback functions, whose restored raw bodies carry no
    speculation guarantees (their blocks have no world tags, so the
    ``world == "orig"`` guards above would not protect them).
    """
    from repro.passes import stats

    counts = {"compares_eliminated": 0, "bitmasks_elided": 0}
    for func in module.functions.values():
        if func.name in skip:
            continue
        if compare_elimination:
            counts["compares_eliminated"] += eliminate_compares(func, slice_width)
        if bitmask_elision:
            counts["bitmasks_elided"] += elide_bitmasks(func, slice_width)
    stats.bump("speculative-opts", "compares_eliminated",
               counts["compares_eliminated"])
    stats.bump("speculative-opts", "bitmasks_elided",
               counts["bitmasks_elided"])
    return counts
