"""IR-level function inlining — half of the expander (§3.2.1).

Inlines non-recursive callees up to a size budget.  Returned values are
merged with a phi at the continuation block; callee allocas are hoisted to
the caller's entry block so frames stay fixed-size.
"""

from __future__ import annotations

import itertools

from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_blocks
from repro.ir.function import Function, Module
from repro.ir.instructions import Alloca, Br, Call, Phi, Ret
from repro.ir.types import VOID


def _functions_in_cycles(module: Module) -> set:
    """Names of functions involved in call-graph cycles (recursion)."""
    graph = {
        name: {
            inst.callee
            for block in func.blocks
            for inst in block.instructions
            if isinstance(inst, Call) and inst.callee in module.functions
        }
        for name, func in module.functions.items()
    }
    cyclic: set[str] = set()

    def reaches(start: str, target: str, seen: set) -> bool:
        if start in seen:
            return False
        seen.add(start)
        for succ in graph.get(start, ()):
            if succ == target or reaches(succ, target, seen):
                return True
        return False

    for name in graph:
        if name in graph[name] or reaches(name, name, set()):
            cyclic.add(name)
    return cyclic


def _function_size(func: Function) -> int:
    return sum(len(block.instructions) for block in func.blocks)


def _inline_call(caller: Function, call: Call, callee: Function, tag: str) -> None:
    block = call.parent
    index = block.instructions.index(call)

    # Split the caller block at the call site.
    continuation = caller.add_block(f"{block.name}.cont{tag}")
    for inst in list(block.instructions[index + 1 :]):
        block.remove(inst)
        continuation.append(inst)
    for succ in continuation.successors():
        for phi in succ.phis():
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is block:
                    phi.set_incoming_block(i, continuation)

    # Clone the callee body with arguments substituted.
    arg_map = {formal: actual for formal, actual in zip(callee.args, call.args)}
    vmap, bmap = clone_blocks(caller, callee.blocks, tag, value_map=arg_map)

    # Rets become branches to the continuation; values merge in a phi.
    ret_edges = []
    for callee_block in callee.blocks:
        cloned = bmap[callee_block]
        term = cloned.terminator
        if isinstance(term, Ret):
            value = term.value
            term.erase_from_parent()
            IRBuilder(cloned).br(continuation)
            ret_edges.append((cloned, value))

    if call.type is not VOID and call.users:
        if len(ret_edges) == 1:
            replacement = ret_edges[0][1]
        else:
            phi = Phi(call.type, caller.next_name("inl.ret"))
            continuation.insert(0, phi)
            for cloned, value in ret_edges:
                phi.add_incoming(value, cloned)
            replacement = phi
        call.replace_all_uses_with(replacement)

    # Replace the call with a branch into the inlined entry.
    entry_clone = bmap[callee.entry]
    call.erase_from_parent()
    IRBuilder(block).br(entry_clone)

    # Hoist cloned allocas into the caller entry (fixed-size frames).
    for callee_block in callee.blocks:
        cloned = bmap[callee_block]
        for inst in list(cloned.instructions):
            if isinstance(inst, Alloca):
                cloned.remove(inst)
                caller.entry.insert(0, inst)


def inline_module(
    module: Module,
    *,
    max_callee_size: int = 80,
    max_function_size: int = 4000,
    entry: str = "main",
) -> int:
    """Inline eligible call sites module-wide; returns the inline count."""
    cyclic = _functions_in_cycles(module)
    counter = itertools.count()
    total = 0
    progress = True
    while progress:
        progress = False
        for caller in module.functions.values():
            if _function_size(caller) >= max_function_size:
                continue
            for block in list(caller.blocks):
                call_sites = [
                    inst
                    for inst in block.instructions
                    if isinstance(inst, Call) and inst.callee in module.functions
                ]
                for call in call_sites:
                    callee = module.functions[call.callee]
                    if (
                        call.callee in cyclic
                        or callee is caller
                        or not callee.blocks
                        or _function_size(callee) > max_callee_size
                        or _function_size(caller) + _function_size(callee)
                        > max_function_size
                    ):
                        continue
                    _inline_call(caller, call, callee, f".i{next(counter)}")
                    total += 1
                    progress = True
                    break  # the block was split; rescan
    from repro.passes import stats

    stats.bump("inline", "calls_inlined", total)
    return total
