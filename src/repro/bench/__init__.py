"""`repro.bench` — the parallel, persistently-cached evaluation harness.

Three layers:

* :mod:`repro.bench.cache` — a content-addressed on-disk result cache,
  keyed by SHA-256 over everything that can change a simulation's
  semantics (workload source, compiler configuration, profile and run
  inputs, energy-model version stamp).  It sits *under* the in-process
  memoizer of :mod:`repro.eval.harness`, making results shareable across
  processes and sessions.
* :mod:`repro.bench.executor` — a ``multiprocessing`` fan-out that shards
  the (workload × config × seed) matrix across cores with per-task
  timeouts and a retry-once-then-degrade policy.
* the ``python -m repro.bench`` CLI — runs a roster and emits a
  ``BENCH_<date>.json`` with wall-clock, per-workload simulation time,
  cache hit rate, and simulated instructions/second, so the perf
  trajectory of this repo is measured, not guessed.
"""

from repro.bench.cache import (
    ENERGY_MODEL_VERSION,
    DiskCache,
    RunDiskCache,
    energy_model_stamp,
    install_disk_cache,
    run_key,
)
from repro.bench.executor import BenchTask, TaskOutcome, run_matrix

__all__ = [
    "ENERGY_MODEL_VERSION",
    "DiskCache",
    "RunDiskCache",
    "BenchTask",
    "TaskOutcome",
    "energy_model_stamp",
    "install_disk_cache",
    "run_key",
    "run_matrix",
]
