"""Content-addressed on-disk result cache.

Simulations here are pure functions of their inputs — every metric is a
deterministic event count — so a result may be reused across processes,
sessions and machines *provided* the cache key covers everything that can
change semantics: the workload source text, the full compiler
configuration (via :meth:`CompilerConfig.fingerprint`), the profile and
run input selectors, and a version stamp over the energy/DTS model
constants.  Change any one ingredient and the key (hence the cache entry)
changes; see ``tests/test_bench_cache.py`` for the property tests.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per record,
written atomically (temp file + fsync + ``os.replace``) so concurrent
bench workers never observe torn entries and a power loss mid-write
cannot publish an empty or partial file under the final name.  A
corrupt, truncated, or stale-format file is *evicted* on read, never
raised; ``.tmp-*`` orphans left by a killed writer are swept on the
next cache open.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Bump manually on semantic changes to the simulation that are not
#: captured by the constants hashed into :func:`energy_model_stamp`.
ENERGY_MODEL_VERSION = 1

#: On-disk entry schema version; mismatches are treated as corruption.
#: 2: payloads carry ``pass_stats`` (repro.passes.stats snapshots).
#: 3: sims carry ``slice_width`` and configs carry the DSE knobs
#:    (slice width, squeeze-op set, hotness/confidence thresholds, DTS
#:    alpha/awareness, cache geometry) in their fingerprints.
#: 4: configs carry ``max_spec_regions`` (graceful-degradation budget)
#:    in their fingerprints.
#: 5: keys carry the ``timing`` partition ("inorder" or "ooo:<geometry>")
#:    and sims the OoO structure counters + stats — in-order records
#:    stay interchangeable across the three bit-identical engines while
#:    ooo records never alias them (nor each other across geometries).
#: 6: entries carry a payload checksum (``sha``): a bit-flipped or
#:    torn-but-parseable payload is detected and evicted instead of
#:    being served as a valid result (the chaos campaign's
#:    zero-corruption gate depends on this).
ENTRY_FORMAT = 6


def energy_model_stamp() -> str:
    """Version stamp over every constant the energy numbers depend on.

    Hashes the per-event costs and the DTS model's defaults, so editing
    ``arch/energy.py`` or ``arch/dts.py`` invalidates all cached results
    automatically — no stale figures after a model tweak.
    """
    from repro.arch.dts import DTSModel
    from repro.arch.energy import COSTS

    basis = {
        "version": ENERGY_MODEL_VERSION,
        "costs": COSTS,
        "dts": dataclasses.asdict(DTSModel()),
    }
    blob = json.dumps(basis, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_key(
    source: str,
    config,
    *,
    profile_kind: str = "test",
    profile_seed: int = 0,
    run_kind: str = "test",
    run_seed: int = 0,
    energy_stamp: Optional[str] = None,
    timing: str = "inorder",
) -> str:
    """The content address of one (source × config × inputs) simulation.

    ``timing`` partitions on the cycle/energy model
    (:func:`repro.arch.machine.timing_model`): the three in-order engines
    share records because they are bit-identical, but an ooo-engine run
    has its own cycles and counters and must never serve an in-order
    lookup (or vice versa).
    """
    basis = {
        "entry_format": ENTRY_FORMAT,
        "source": source,
        "config": config.fingerprint(),
        "profile": [profile_kind, profile_seed],
        "run": [run_kind, run_seed],
        "energy": energy_stamp or energy_model_stamp(),
        "timing": timing,
    }
    blob = json.dumps(basis, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def payload_digest(payload: dict) -> str:
    """Checksum stored alongside every entry's payload (format 6+)."""
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class DiskCache:
    """Key → JSON-payload store with corruption eviction."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove ``.tmp-*`` files a killed writer never renamed.

        Only files older than an hour are touched: a young temp file may
        belong to a concurrent live writer about to ``os.replace`` it.
        """
        import time

        cutoff = time.time() - 3600.0
        for tmp in self.root.glob("*/.tmp-*.json"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            # decode inside the eviction guard: a bit-flipped shard can
            # be invalid UTF-8, which is corruption, not a crash
            entry = json.loads(raw.decode())
            if (
                not isinstance(entry, dict)
                or entry.get("format") != ENTRY_FORMAT
                or entry.get("key") != key
                or not isinstance(entry.get("payload"), dict)
                or entry.get("sha") != payload_digest(entry["payload"])
            ):
                raise ValueError("malformed cache entry")
        except (ValueError, TypeError):
            # Corrupt / foreign / stale-format file: evict, don't crash.
            self.stats.evictions += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": ENTRY_FORMAT,
            "key": key,
            "payload": payload,
            "sha": payload_digest(payload),
        }
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


# -- RunRecord (de)serialization ----------------------------------------------

_SIM_INT_FIELDS = (
    "instructions",
    "cycles",
    "misspeculations",
    "branches",
    "taken_branches",
    "spill_stores",
    "spill_loads",
    "copies",
    "loads",
    "stores",
    "return_value",
)

_COUNTER_INT_FIELDS = (
    "icache_l1",
    "icache_l2",
    "icache_mem",
    "dcache_l1",
    "dcache_l2",
    "dcache_mem",
    "alu32_ops",
    "alu8_ops",
    "mul_ops",
    "div_ops",
    "move_ops",
    "cycles",
    "rename_reads",
    "rename_writes",
    "rob_writes",
    "rob_reads",
    "iq_writes",
    "iq_wakeups",
    "ckpt_ops",
)


def _sim_to_dict(sim) -> dict:
    counters = {f: getattr(sim.counters, f) for f in _COUNTER_INT_FIELDS}
    counters["rf_reads_by_width"] = {
        str(w): n for w, n in sim.counters.rf_reads_by_width.items()
    }
    counters["rf_writes_by_width"] = {
        str(w): n for w, n in sim.counters.rf_writes_by_width.items()
    }
    data = {f: getattr(sim, f) for f in _SIM_INT_FIELDS}
    data["output"] = list(sim.output)
    data["class_counts"] = dict(sim.class_counts)
    data["counters"] = counters
    data["slice_width"] = sim.slice_width
    data["ooo"] = sim.ooo.as_dict() if sim.ooo is not None else None
    return data


def _sim_from_dict(data: dict):
    from repro.arch.energy import EnergyCounters
    from repro.arch.machine import SimResult

    counters = EnergyCounters(
        **{f: data["counters"][f] for f in _COUNTER_INT_FIELDS}
    )
    counters.rf_reads_by_width = {
        int(w): n for w, n in data["counters"]["rf_reads_by_width"].items()
    }
    counters.rf_writes_by_width = {
        int(w): n for w, n in data["counters"]["rf_writes_by_width"].items()
    }
    sim = SimResult(
        output=list(data["output"]),
        counters=counters,
        class_counts=dict(data["class_counts"]),
        slice_width=data.get("slice_width", 8),
        **{f: data[f] for f in _SIM_INT_FIELDS},
    )
    if data.get("ooo") is not None:
        from repro.arch.ooo import OooStats

        sim.ooo = OooStats(**data["ooo"])
    return sim


def record_to_payload(record) -> dict:
    """RunRecord → JSON payload (drops the binary and the memory image)."""
    payload = {
        "workload": record.workload,
        "config_name": record.config.name,
        "correct": record.correct,
        "sim": _sim_to_dict(record.sim),
        "energy": record.energy.as_dict(),
        "dts_energy": record.dts_energy.as_dict() if record.dts_energy else None,
        "pass_stats": record.pass_stats,
    }
    return payload


def payload_to_record(payload: dict, config):
    """JSON payload → RunRecord (``binary`` is None on the cached path)."""
    from repro.arch.energy import EnergyBreakdown
    from repro.eval.harness import RunRecord

    dts = payload.get("dts_energy")
    return RunRecord(
        workload=payload["workload"],
        config=config,
        sim=_sim_from_dict(payload["sim"]),
        binary=None,
        correct=payload["correct"],
        energy=EnergyBreakdown(**payload["energy"]),
        dts_energy=EnergyBreakdown(**dts) if dts else None,
        pass_stats=payload.get("pass_stats") or {},
    )


class RunDiskCache(DiskCache):
    """The harness-facing view: RunRecords keyed by run ingredients."""

    def __init__(self, root) -> None:
        super().__init__(root)
        # One stamp per process: the model constants cannot change under us.
        self._stamp = energy_model_stamp()

    def _run_key(self, source, config, pk, ps, rk, rs, timing="inorder") -> str:
        return run_key(
            source,
            config,
            profile_kind=pk,
            profile_seed=ps,
            run_kind=rk,
            run_seed=rs,
            energy_stamp=self._stamp,
            timing=timing,
        )

    def contains_run(
        self, source, config, pk, ps, rk, rs, timing="inorder"
    ) -> bool:
        return self.contains(
            self._run_key(source, config, pk, ps, rk, rs, timing)
        )

    def lookup_run(self, source, config, pk, ps, rk, rs, timing="inorder"):
        payload = self.get(
            self._run_key(source, config, pk, ps, rk, rs, timing)
        )
        if payload is None:
            return None
        return payload_to_record(payload, config)

    def store_run(
        self, source, config, pk, ps, rk, rs, record, timing="inorder"
    ) -> None:
        self.put(
            self._run_key(source, config, pk, ps, rk, rs, timing),
            record_to_payload(record),
        )


def install_disk_cache(root) -> RunDiskCache:
    """Create a :class:`RunDiskCache` and install it under the harness."""
    from repro.eval import harness

    cache = RunDiskCache(root)
    harness.set_disk_cache(cache)
    return cache
