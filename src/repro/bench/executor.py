"""Multiprocessing fan-out over the (workload × config × seed) matrix.

Each task is one :func:`repro.eval.harness.run` invocation.  Workers share
nothing in memory but everything on disk: every worker installs the same
:class:`RunDiskCache`, so a task computed by one worker is a cache hit for
every later process (the property the whole bench design rests on —
results are pure event counts, so cross-process reuse is sound).

Failure policy: a task that raises or exceeds its timeout is retried once
(fresh attempt, possibly on another worker), then *degraded* — reported as
``status="failed"`` in the outcome list instead of aborting the campaign.
Retry rounds are separated by exponential backoff with *deterministic*
jitter (:func:`_backoff_delay` hashes the round + task label, so two
campaigns over the same matrix pause identically — no wall-clock entropy
in reproducible runs).  Per-task timeouts are enforced inside the worker
with ``SIGALRM`` (POSIX; elsewhere tasks run untimed rather than
unexecuted); the alarm scope (:func:`_task_alarm`) is re-entrancy safe —
it restores both the prior handler *and* whatever remained of an outer
``ITIMER_REAL``, so a bench task nested under another alarm-based timeout
cannot silently disarm it.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import signal
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.arch.machine import timing_model
from repro.core.pipeline import CompilerConfig

#: first-retry backoff ceiling (seconds); doubles per round up to the cap
BACKOFF_BASE = 0.25
BACKOFF_CAP = 8.0


@dataclass(frozen=True)
class BenchTask:
    """One cell of the evaluation matrix (picklable)."""

    workload: str
    config: CompilerConfig
    profile_kind: str = "test"
    profile_seed: int = 0
    run_kind: str = "test"
    run_seed: int = 0
    #: simulation engine ("legacy" / "fast" / "compiled"; None = default
    #: resolution).  Engines are bit-identical, so this changes *how* the
    #: cell simulates, never what it reports.
    engine: Optional[str] = None

    def label(self) -> str:
        tag = f"{self.workload}/{self.config.name}"
        if (self.profile_kind, self.profile_seed, self.run_kind, self.run_seed) != (
            "test", 0, "test", 0
        ):
            tag += (
                f"[p={self.profile_kind}:{self.profile_seed},"
                f"r={self.run_kind}:{self.run_seed}]"
            )
        if self.engine is not None:
            tag += f"@{self.engine}"
        return tag


@dataclass
class TaskOutcome:
    """Picklable per-task result row (also serialized into BENCH_*.json)."""

    workload: str
    config_name: str
    profile_kind: str
    profile_seed: int
    run_kind: str
    run_seed: int
    engine: Optional[str] = None
    status: str = "ok"  # 'ok' | 'failed'
    #: served from a cache (disk or in-process memo) rather than simulated
    cached: bool = False
    sim_seconds: float = 0.0
    attempts: int = 1
    instructions: int = 0
    cycles: int = 0
    misspeculations: int = 0
    energy_pj: float = 0.0
    error: str = ""

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class MatrixStats:
    """Aggregates over one :func:`run_matrix` campaign."""

    wall_seconds: float = 0.0
    tasks: int = 0
    ok: int = 0
    failed: int = 0
    retried: int = 0
    cache_hits: int = 0
    sim_seconds: float = 0.0
    instructions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.tasks if self.tasks else 0.0

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.wall_seconds if self.wall_seconds else 0.0


class _TaskTimeout(Exception):
    pass


_WORKER_TIMEOUT: Optional[float] = None


def _init_worker(cache_dir, timeout) -> None:
    global _WORKER_TIMEOUT
    _WORKER_TIMEOUT = timeout
    if cache_dir is not None:
        from repro.bench.cache import install_disk_cache

        install_disk_cache(cache_dir)


def _alarm_handler(signum, frame):
    raise _TaskTimeout()


def _backoff_delay(round_index: int, key: str) -> float:
    """Backoff before retry round ``round_index`` (0-based), in seconds.

    Exponential in the round number, capped at :data:`BACKOFF_CAP`, with
    deterministic jitter in ``[base/2, base]`` derived by hashing the
    round + ``key`` — identical campaigns back off identically, while
    different tasks still de-synchronize.
    """
    base = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** round_index))
    digest = hashlib.sha256(f"{round_index}:{key}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
    return base * (0.5 + 0.5 * fraction)


@contextmanager
def _task_alarm(seconds: Optional[float]):
    """Arm ``SIGALRM`` to raise :class:`_TaskTimeout` after ``seconds``.

    Re-entrancy safe: on exit the prior handler is restored *and*, if an
    outer ``ITIMER_REAL`` was pending when we armed ours, it is re-armed
    with its remaining time (minus what this scope consumed).  An outer
    deadline that expired while the inner scope ran fires immediately on
    exit instead of being lost.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
    prior_remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    started = time.monotonic()
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prior_remaining > 0.0:
            elapsed = time.monotonic() - started
            signal.setitimer(
                signal.ITIMER_REAL, max(prior_remaining - elapsed, 1e-6)
            )


def _execute(task: BenchTask) -> TaskOutcome:
    """Run one task under the per-task timeout; never raises."""
    from repro.eval import harness

    outcome = TaskOutcome(
        workload=task.workload,
        config_name=task.config.name,
        profile_kind=task.profile_kind,
        profile_seed=task.profile_seed,
        run_kind=task.run_kind,
        run_seed=task.run_seed,
        engine=task.engine,
    )
    cache = harness.get_disk_cache()
    memo_key = (
        task.workload,
        harness._config_key(task.config),
        task.profile_kind,
        task.profile_seed,
        task.run_kind,
        task.run_seed,
        task.engine,
    )
    try:
        outcome.cached = memo_key in harness._RUN_CACHE or (
            cache is not None
            and cache.contains_run(
                _workload_source(task.workload),
                task.config,
                task.profile_kind,
                task.profile_seed,
                task.run_kind,
                task.run_seed,
                timing_model(task.engine),
            )
        )
    except Exception:
        outcome.cached = False

    started = time.perf_counter()
    try:
        with _task_alarm(_WORKER_TIMEOUT):
            record = harness.run(
                task.workload,
                task.config,
                profile_kind=task.profile_kind,
                profile_seed=task.profile_seed,
                run_kind=task.run_kind,
                run_seed=task.run_seed,
                engine=task.engine,
            )
        outcome.sim_seconds = time.perf_counter() - started
        outcome.instructions = record.sim.instructions
        outcome.cycles = record.sim.cycles
        outcome.misspeculations = record.sim.misspeculations
        outcome.energy_pj = record.total_energy
    except _TaskTimeout:
        outcome.sim_seconds = time.perf_counter() - started
        outcome.status = "failed"
        outcome.error = f"timeout after {_WORKER_TIMEOUT:.0f}s"
    except Exception as exc:  # degrade, never kill the campaign
        outcome.sim_seconds = time.perf_counter() - started
        outcome.status = "failed"
        outcome.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    return outcome


def _workload_source(name: str) -> str:
    from repro.workloads import get_workload

    return get_workload(name).source


def run_matrix(
    tasks: Sequence[BenchTask],
    *,
    jobs: int = 1,
    cache_dir=None,
    timeout: Optional[float] = 120.0,
    retries: int = 1,
    progress=None,
) -> tuple[list[TaskOutcome], MatrixStats]:
    """Execute the matrix; returns per-task outcomes + campaign stats.

    ``progress`` is an optional callable ``(done, total, outcome)`` invoked
    as results arrive (the CLI's live ticker).
    """
    tasks = list(tasks)
    stats = MatrixStats(tasks=len(tasks))
    started = time.monotonic()
    outcomes: dict[int, TaskOutcome] = {}

    def _note(index, outcome, done):
        outcomes[index] = outcome
        if progress is not None:
            progress(done, len(tasks), outcome)

    if jobs > 1 and len(tasks) > 1:
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(cache_dir, timeout),
        ) as pool:
            results = pool.imap(
                _execute, tasks, chunksize=max(1, len(tasks) // (jobs * 4) or 1)
            )
            for done, (index, outcome) in enumerate(
                zip(range(len(tasks)), results), start=1
            ):
                _note(index, outcome, done)
            # retry-once-then-degrade, still fanned out
            for _round in range(retries):
                failed = [i for i, o in outcomes.items() if o.status == "failed"]
                if not failed:
                    break
                stats.retried += len(failed)
                time.sleep(_backoff_delay(_round, tasks[failed[0]].label()))
                retry_results = pool.imap(_execute, [tasks[i] for i in failed])
                for index, outcome in zip(failed, retry_results):
                    outcome.attempts = outcomes[index].attempts + 1
                    if outcome.status == "failed" and outcomes[index].error:
                        outcome.error = (
                            f"{outcomes[index].error}; retry: {outcome.error}"
                        )
                    _note(index, outcome, len(tasks))
    else:
        _init_worker(cache_dir, timeout)
        for done, (index, task) in enumerate(enumerate(tasks), start=1):
            outcome = _execute(task)
            for _round in range(retries):
                if outcome.status != "failed":
                    break
                stats.retried += 1
                time.sleep(_backoff_delay(_round, task.label()))
                retry = _execute(task)
                retry.attempts = outcome.attempts + 1
                if retry.status == "failed" and outcome.error:
                    retry.error = f"{outcome.error}; retry: {retry.error}"
                outcome = retry
            _note(index, outcome, done)

    stats.wall_seconds = time.monotonic() - started
    ordered = [outcomes[i] for i in range(len(tasks))]
    for outcome in ordered:
        if outcome.status == "ok":
            stats.ok += 1
            stats.instructions += outcome.instructions
        else:
            stats.failed += 1
        if outcome.cached:
            stats.cache_hits += 1
        stats.sim_seconds += outcome.sim_seconds
    return ordered, stats
