"""``python -m repro.bench`` — run a benchmark roster, emit BENCH_<date>.json.

Examples::

    python -m repro.bench --roster mini --jobs 4
    python -m repro.bench --roster full --configs baseline,bitspec-max \\
        --jobs 8 --cache-dir .benchcache --output BENCH_full.json
    python -m repro.bench --roster mini --jobs 1 --no-cache   # cold reference
    python -m repro.bench --roster full --compare-engines fast,compiled

The emitted JSON is the repo's perf record: wall-clock for the whole
campaign, per-workload simulation time, cache hit rate, and simulated
instructions per second.  See DESIGN.md ("The bench harness") for how to
read it.

``--engine`` runs the whole matrix under one simulation engine
("legacy" / "fast" / "compiled"); engines are bit-identical, so this
changes throughput, not results.  ``--compare-engines`` switches to a
single-process interleaved A/B timing mode (see
:mod:`repro.bench.compare`) and emits a ``compare`` report instead of a
matrix report — this is how the committed engine-speedup BENCH json is
produced.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

from repro.bench.executor import BenchTask, run_matrix
from repro.core.pipeline import CompilerConfig
from repro.eval.harness import BENCHMARKS

#: named workload rosters
ROSTERS = {
    "mini": ("crc32", "sha", "bitcount"),
    "full": tuple(BENCHMARKS),
}

#: named configuration presets available to --configs
CONFIG_FACTORIES = {
    "baseline": CompilerConfig.baseline,
    "bitspec-max": lambda: CompilerConfig.bitspec("max"),
    "bitspec-avg": lambda: CompilerConfig.bitspec("avg"),
    "bitspec-min": lambda: CompilerConfig.bitspec("min"),
    "nospec": CompilerConfig.nospec,
    "thumb": CompilerConfig.thumb,
    "dts": CompilerConfig.dts,
    "dts-bitspec-max": lambda: CompilerConfig.dts_bitspec("max"),
}

DEFAULT_CONFIGS = ("baseline", "bitspec-max", "thumb")
DEFAULT_CACHE_DIR = ".benchcache"


def build_tasks(workloads, configs, seeds, engine=None) -> list[BenchTask]:
    return [
        BenchTask(workload=w, config=c, run_seed=s, engine=engine)
        for w in workloads
        for c in configs
        for s in range(seeds)
    ]


def summarize(outcomes, stats, *, roster, configs, jobs, cache_dir, engine=None) -> dict:
    per_workload: dict = {}
    for o in outcomes:
        row = per_workload.setdefault(
            o.workload,
            {"tasks": 0, "failed": 0, "sim_seconds": 0.0, "instructions": 0},
        )
        row["tasks"] += 1
        row["sim_seconds"] += o.sim_seconds
        if o.status == "ok":
            row["instructions"] += o.instructions
        else:
            row["failed"] += 1
    for row in per_workload.values():
        row["sim_seconds"] = round(row["sim_seconds"], 4)
    return {
        "schema": 1,
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "roster": list(roster),
        "configs": list(configs),
        "engine": engine,
        "jobs": jobs,
        "wall_clock_seconds": round(stats.wall_seconds, 4),
        "cache": {
            "enabled": cache_dir is not None,
            "dir": str(cache_dir) if cache_dir is not None else None,
            "hits": stats.cache_hits,
            "tasks": stats.tasks,
            "hit_rate": round(stats.hit_rate, 4),
        },
        "totals": {
            "tasks": stats.tasks,
            "ok": stats.ok,
            "failed": stats.failed,
            "retried": stats.retried,
            "instructions": stats.instructions,
            "sim_seconds": round(stats.sim_seconds, 4),
            "instructions_per_second": round(stats.instructions_per_second, 1),
        },
        "per_workload": per_workload,
        "tasks": [o.as_dict() for o in outcomes],
    }


def _run_compare(args, workloads, config, engines) -> int:
    from repro.bench.compare import compare_engines

    def ticker(workload, engine, seconds):
        if args.quiet:
            return
        print(f"{workload}/{engine}: {seconds:.3f}s", flush=True)

    body = compare_engines(
        workloads, config, engines, repeats=args.repeats, progress=ticker
    )
    report = {
        "schema": 1,
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "roster": list(workloads),
        **body,
    }
    output = args.output or Path(
        f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    reference = body["reference"]
    agg = body["aggregate"]["engines"]
    for engine in engines:
        line = (
            f"{engine:8s} {agg[engine]['instructions_per_second']:,.0f} inst/s"
        )
        if engine != reference:
            line += f"  ({agg[engine]['speedup']:.2f}x vs {reference})"
        print(line, flush=True)
    print(f"wrote {output}", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Parallel, persistently-cached benchmark runner.",
    )
    parser.add_argument(
        "--roster",
        choices=sorted(ROSTERS),
        default="mini",
        help="named workload roster (default: mini)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload list (overrides --roster)",
    )
    parser.add_argument(
        "--configs",
        default=",".join(DEFAULT_CONFIGS),
        help=f"comma-separated config presets from: {', '.join(sorted(CONFIG_FACTORIES))}",
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--seeds", type=int, default=1, help="run-input seeds per cell"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-task timeout in seconds (0 disables)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(DEFAULT_CACHE_DIR),
        help=f"persistent result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent cache (cold run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="report path (default: BENCH_<date>.json)",
    )
    parser.add_argument("--quiet", action="store_true", help="no per-task ticker")
    parser.add_argument(
        "--engine",
        choices=("legacy", "fast", "compiled", "ooo"),
        default=None,
        help="run the whole matrix under one simulation engine (ooo uses "
        "its own cycle/energy model and a separate disk-cache partition)",
    )
    parser.add_argument(
        "--compare-engines",
        default=None,
        metavar="ENGINES",
        help="comma-separated engine list (first = reference); switches to "
        "single-process interleaved A/B timing and emits a compare report",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing rounds per cell in --compare-engines mode (default: 3)",
    )
    args = parser.parse_args(argv)

    if args.workloads:
        workloads = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    else:
        workloads = ROSTERS[args.roster]
    unknown = [w for w in workloads if w not in BENCHMARKS]
    if unknown:
        parser.error(f"unknown workloads: {', '.join(unknown)}")

    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in config_names if c not in CONFIG_FACTORIES]
    if unknown:
        parser.error(f"unknown configs: {', '.join(unknown)}")
    configs = [CONFIG_FACTORIES[c]() for c in config_names]

    if args.compare_engines:
        engines = tuple(
            e.strip() for e in args.compare_engines.split(",") if e.strip()
        )
        unknown = [e for e in engines if e not in ("legacy", "fast", "compiled", "ooo")]
        if unknown:
            parser.error(f"unknown engines: {', '.join(unknown)}")
        if len(engines) < 2:
            parser.error("--compare-engines needs at least two engines")
        return _run_compare(args, workloads, configs[0], engines)

    cache_dir = None if args.no_cache else args.cache_dir
    tasks = build_tasks(workloads, configs, max(args.seeds, 1), engine=args.engine)

    def ticker(done, total, outcome):
        if args.quiet:
            return
        tag = "hit " if outcome.cached else "run "
        if outcome.status == "failed":
            tag = "FAIL"
        print(
            f"[{done}/{total}] {tag} {outcome.workload}/{outcome.config_name}"
            f" seed={outcome.run_seed} {outcome.sim_seconds:.2f}s"
            + (f"  {outcome.error}" if outcome.error else ""),
            flush=True,
        )

    try:
        outcomes, stats = run_matrix(
            tasks,
            jobs=max(args.jobs, 1),
            cache_dir=cache_dir,
            timeout=args.timeout or None,
            progress=ticker,
        )
    except KeyboardInterrupt:
        # completed RunRecords are already fsync'd in the disk cache —
        # a rerun resumes from them instead of recomputing
        if cache_dir is not None:
            print(
                f"interrupted: partial results are flushed to {cache_dir}; "
                "rerun the same command to resume from the cache",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted: no cache dir configured, partial results "
                "were discarded",
                file=sys.stderr,
            )
        return 130

    report = summarize(
        outcomes,
        stats,
        roster=workloads,
        configs=config_names,
        jobs=max(args.jobs, 1),
        cache_dir=cache_dir,
        engine=args.engine,
    )
    output = args.output or Path(
        f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"{stats.tasks} tasks ({stats.ok} ok, {stats.failed} failed, "
        f"{stats.retried} retried) in {stats.wall_seconds:.1f}s wall on "
        f"{max(args.jobs, 1)} worker(s); cache hit rate "
        f"{100.0 * stats.hit_rate:.0f}%; "
        f"{stats.instructions_per_second:,.0f} simulated inst/s",
        flush=True,
    )
    print(f"wrote {output}", flush=True)
    return 1 if stats.failed else 0


if __name__ == "__main__":
    sys.exit(main())
