"""Interleaved A/B engine comparison (``python -m repro.bench --compare-engines``).

The matrix executor measures campaign throughput — wall clock over a
cached, multi-process fan-out — which is the wrong instrument for
pinning one engine against another: process scheduling and cache hits
swamp the signal.  This module times the simulators directly, in one
process, with the engines *interleaved* per repeat so that machine noise
(frequency scaling, competing load) hits every engine alike instead of
biasing whichever ran last.

Protocol per workload:

1. compile once (memoized via :func:`repro.eval.harness.get_binary`) and
   install the run inputs;
2. warm every engine once — this builds the compiled image / predecode
   tables outside the timed region and cross-checks that all engines
   report identical instruction counts (a cheap standing guard on the
   bit-identity contract; the full guarantee lives in
   ``tests/test_engine_equivalence.py``);
3. ``repeats`` timing rounds, each round running every engine once in
   order; best-of wins per engine.

Speedups are reported against the first engine in ``engines`` (the
reference), per workload and in aggregate (total instructions over total
best-case seconds).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.arch.machine import Machine
from repro.core.pipeline import CompilerConfig, set_global_inputs
from repro.eval.harness import get_binary
from repro.workloads import get_workload


def _time_run(binary, engine: str) -> float:
    started = time.perf_counter()
    Machine(binary.linked, binary.module, engine=engine).run()
    return time.perf_counter() - started


def compare_engines(
    workloads: Sequence[str],
    config: CompilerConfig,
    engines: Sequence[str] = ("fast", "compiled"),
    *,
    repeats: int = 3,
    progress: Optional[Callable[[str, str, float], None]] = None,
) -> dict:
    """Return the comparison report dict (the BENCH json ``compare`` body).

    ``progress(workload, engine, seconds)`` is invoked after each timed
    run (the CLI ticker).
    """
    if len(engines) < 2:
        raise ValueError("need at least two engines to compare")
    reference = engines[0]
    per_workload: dict[str, dict] = {}
    totals = {e: 0.0 for e in engines}
    total_insts = 0

    for name in workloads:
        binary = get_binary(name, config)
        inputs = get_workload(name).inputs("test", 0)
        if inputs:
            set_global_inputs(binary.module, inputs)

        warm = {
            e: Machine(binary.linked, binary.module, engine=e).run()
            for e in engines
        }
        insts = warm[reference].instructions
        for e, sim in warm.items():
            if sim.instructions != insts:
                raise AssertionError(
                    f"{name}: engine {e!r} retired {sim.instructions} "
                    f"instructions, {reference!r} retired {insts}"
                )

        best = {e: float("inf") for e in engines}
        for _ in range(max(repeats, 1)):
            for e in engines:
                seconds = _time_run(binary, e)
                best[e] = min(best[e], seconds)
                if progress is not None:
                    progress(name, e, seconds)

        row: dict = {"instructions": insts, "engines": {}}
        for e in engines:
            row["engines"][e] = {
                "best_seconds": round(best[e], 6),
                "instructions_per_second": round(insts / best[e], 1),
            }
            if e != reference:
                row["engines"][e]["speedup"] = round(best[reference] / best[e], 2)
            totals[e] += best[e]
        per_workload[name] = row
        total_insts += insts

    aggregate: dict = {"instructions": total_insts, "engines": {}}
    for e in engines:
        aggregate["engines"][e] = {
            "best_seconds": round(totals[e], 6),
            "instructions_per_second": round(total_insts / totals[e], 1),
        }
        if e != reference:
            aggregate["engines"][e]["speedup"] = round(
                totals[reference] / totals[e], 2
            )
    return {
        "mode": "engine-compare",
        "config": config.name,
        "engines": list(engines),
        "reference": reference,
        "repeats": max(repeats, 1),
        "per_workload": per_workload,
        "aggregate": aggregate,
    }
