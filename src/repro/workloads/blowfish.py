"""blowfish — 16-round Feistel cipher with Blowfish's F-function shape.

The F-function's byte extracts (``>> 24``, ``(>> 16) & 0xFF``, ...) are the
bitmask-elision pattern RQ3 highlights.  S-boxes and the P-array are derived
from a seeded xorshift stream (identically in MiniC and the oracle) instead
of Blowfish's PI-digit key schedule — same operator mix, fraction of the
setup cost (see DESIGN.md).
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_WORDS = 128  # 64 blocks of two u32

SOURCE = """
u32 sbox[1024];
u32 parr[18];
u32 seed;
u32 data[128];
u32 nwords;
u32 check;

u32 rngstate;

u32 xorshift() {
    u32 x = rngstate;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    rngstate = x;
    return x;
}

void init_tables() {
    rngstate = seed;
    for (u32 i = 0; i < 1024; i += 1) { sbox[i] = xorshift(); }
    for (u32 i = 0; i < 18; i += 1) { parr[i] = xorshift(); }
}

u32 feistel(u32 x) {
    u32 a = x >> 24;
    u32 b = (x >> 16) & 0xFF;
    u32 c = (x >> 8) & 0xFF;
    u32 d = x & 0xFF;
    return ((sbox[a] + sbox[256 + b]) ^ sbox[512 + c]) + sbox[768 + d];
}

void encrypt_block(u32 idx) {
    u32 left = data[idx];
    u32 right = data[idx + 1];
    for (u32 r = 0; r < 16; r += 1) {
        left ^= parr[r];
        right ^= feistel(left);
        u32 t = left;
        left = right;
        right = t;
    }
    u32 t2 = left;
    left = right;
    right = t2;
    right ^= parr[16];
    left ^= parr[17];
    data[idx] = left;
    data[idx + 1] = right;
}

void main() {
    init_tables();
    for (u32 i = 0; i + 1 < nwords; i += 2) { encrypt_block(i); }
    u32 c = 0;
    for (u32 i = 0; i < nwords; i += 1) { c ^= data[i]; }
    check = c;
    out(c);
    out(data[0]);
    out(data[1]);
}
"""


def _feistel_tables(seed: int):
    rng = XorShift(seed)
    sbox = [rng.next() for _ in range(1024)]
    parr = [rng.next() for _ in range(18)]
    return sbox, parr


def _encrypt(sbox, parr, left, right):
    def f(x):
        a, b = x >> 24, (x >> 16) & 0xFF
        c, d = (x >> 8) & 0xFF, x & 0xFF
        return (((sbox[a] + sbox[256 + b]) & 0xFFFFFFFF) ^ sbox[512 + c]) + sbox[768 + d] & 0xFFFFFFFF

    for r in range(16):
        left ^= parr[r]
        right ^= f(left) & 0xFFFFFFFF
        right &= 0xFFFFFFFF
        left, right = right, left
    left, right = right, left
    right ^= parr[16]
    left ^= parr[17]
    return left & 0xFFFFFFFF, right & 0xFFFFFFFF


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xB70F, kind, seed))
    words = {"test": 96, "train": 48, "alt": 128}[kind]
    data = [rng.next() for _ in range(words)]
    return {"data": data, "nwords": words, "seed": 0x3243F6A8 ^ seed}


def reference(inputs: dict) -> list:
    sbox, parr = _feistel_tables(inputs["seed"])
    data = list(inputs["data"][: inputs["nwords"]])
    for i in range(0, len(data) - 1, 2):
        data[i], data[i + 1] = _encrypt(sbox, parr, data[i], data[i + 1])
    check = 0
    for w in data:
        check ^= w
    return [check, data[0], data[1]]


WORKLOAD = register(
    Workload(
        name="blowfish",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="Feistel cipher with Blowfish's byte-extract F-function",
    )
)
