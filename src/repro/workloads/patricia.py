"""patricia — PATRICIA trie insert/lookup over 32-bit keys (IP addresses).

Pointer-free formulation: node fields live in parallel index arrays, as an
embedded system without malloc would lay them out.  Node indices and bit
positions are tiny; the keys themselves are full 32-bit words.
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_NODES = 128
N_KEYS = 80

SOURCE = """
u32 keys[96];
u32 nkeys;
u32 node_key[128];
u32 node_bit[128];
u32 node_left[128];
u32 node_right[128];
u32 node_count;
u32 found_count;

u32 bit_of(u32 key, u32 bit) {
    // 1-based bit index; bit 1 is the MSB (the header keeps sentinel 0)
    return (key >> (32 - bit)) & 1;
}

u32 lookup(u32 key) {
    // walk until a back edge (upward link)
    u32 parent = 0;
    u32 current = node_left[0];
    while (node_bit[current] > node_bit[parent]) {
        parent = current;
        if (bit_of(key, node_bit[current])) {
            current = node_right[current];
        } else {
            current = node_left[current];
        }
    }
    return current;
}

void insert(u32 key) {
    u32 best = lookup(key);
    if (node_key[best] == key) { return; }
    // first differing bit (1-based from the MSB)
    u32 diff = node_key[best] ^ key;
    u32 bit = 1;
    while (bit <= 32 && !((diff >> (32 - bit)) & 1)) { bit += 1; }
    // find insertion point
    u32 parent = 0;
    u32 current = node_left[0];
    while (node_bit[current] > node_bit[parent] && node_bit[current] < bit) {
        parent = current;
        if (bit_of(key, node_bit[current])) {
            current = node_right[current];
        } else {
            current = node_left[current];
        }
    }
    u32 fresh = node_count;
    node_count += 1;
    node_key[fresh] = key;
    node_bit[fresh] = bit;
    if (bit_of(key, bit)) {
        node_left[fresh] = current;
        node_right[fresh] = fresh;
    } else {
        node_left[fresh] = fresh;
        node_right[fresh] = current;
    }
    if (parent == 0) {
        node_left[0] = fresh;
    } else if (bit_of(key, node_bit[parent])) {
        node_right[parent] = fresh;
    } else {
        node_left[parent] = fresh;
    }
}

void main() {
    // header node 0: bit 0 sentinel pointing to itself
    node_key[0] = 0;
    node_bit[0] = 0;
    node_left[0] = 0;
    node_right[0] = 0;
    node_count = 1;
    for (u32 i = 0; i < nkeys; i += 1) { insert(keys[i]); }
    u32 hits = 0;
    for (u32 i = 0; i < nkeys; i += 1) {
        u32 node = lookup(keys[i]);
        if (node_key[node] == keys[i]) { hits += 1; }
    }
    found_count = hits;
    out(hits);
    out(node_count);
}
"""


class _PyPatricia:
    """Python mirror of the index-based PATRICIA trie above."""

    def __init__(self) -> None:
        self.key = [0]
        self.bit = [0]
        self.left = [0]
        self.right = [0]

    def _bit_of(self, key: int, bit: int) -> int:
        return (key >> (32 - bit)) & 1

    def lookup(self, key: int) -> int:
        parent = 0
        current = self.left[0]
        while self.bit[current] > self.bit[parent]:
            parent = current
            current = (
                self.right[current]
                if self._bit_of(key, self.bit[current])
                else self.left[current]
            )
        return current

    def insert(self, key: int) -> None:
        best = self.lookup(key)
        if self.key[best] == key:
            return
        diff = self.key[best] ^ key
        bit = 1
        while bit <= 32 and not ((diff >> (32 - bit)) & 1):
            bit += 1
        parent = 0
        current = self.left[0]
        while self.bit[current] > self.bit[parent] and self.bit[current] < bit:
            parent = current
            current = (
                self.right[current]
                if self._bit_of(key, self.bit[current])
                else self.left[current]
            )
        fresh = len(self.key)
        self.key.append(key)
        self.bit.append(bit)
        if self._bit_of(key, bit):
            self.left.append(current)
            self.right.append(fresh)
        else:
            self.left.append(fresh)
            self.right.append(current)
        if parent == 0:
            self.left[0] = fresh
        elif self._bit_of(key, self.bit[parent]):
            self.right[parent] = fresh
        else:
            self.left[parent] = fresh


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0x9A7, kind, seed))
    count = {"test": 80, "train": 48, "alt": 72}[kind]
    # IP-like keys with clustered prefixes (duplicates included)
    prefixes = [rng.next() & 0xFFFF0000 for _ in range(8)]
    keys = [
        prefixes[rng.below(len(prefixes))] | rng.below(512) for _ in range(count)
    ]
    return {"keys": keys, "nkeys": count}


def reference(inputs: dict) -> list:
    trie = _PyPatricia()
    keys = inputs["keys"][: inputs["nkeys"]]
    for key in keys:
        trie.insert(key)
    hits = sum(1 for key in keys if trie.key[trie.lookup(key)] == key)
    return [hits, len(trie.key)]


WORKLOAD = register(
    Workload(
        name="patricia",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="PATRICIA trie insert/lookup over IP-like keys",
    )
)
