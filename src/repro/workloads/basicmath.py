"""basicmath — integer math kernels.

MiBench's basicmath is floating-point (cubic roots, deg↔rad); the machine
has no FPU, so this is the integer-fixed-point substitution documented in
DESIGN.md: Newton integer square roots, binary GCDs, fixed-point angle
conversion and cube-root bracketing — the same mix of short loops around
modest-magnitude arithmetic.
"""

from __future__ import annotations

import math

from repro.workloads.base import Workload, XorShift, mix_seed, register

N_VALUES = 64

SOURCE = """
u32 values[64];
u32 nvalues;
u32 results[4];

u32 isqrt(u32 x) {
    if (x < 2) { return x; }
    u32 r = x;
    u32 y = (r + 1) / 2;
    while (y < r) {
        r = y;
        y = (r + x / r) / 2;
    }
    return r;
}

u32 gcd(u32 a, u32 b) {
    while (b != 0) {
        u32 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

u32 icbrt(u32 x) {
    u32 lo = 0;
    u32 hi = 255;
    while (lo < hi) {
        u32 mid = (lo + hi + 1) / 2;
        if (mid * mid * mid <= x) { lo = mid; }
        else { hi = mid - 1; }
    }
    return lo;
}

u32 deg_to_rad_q10(u32 deg) {
    // rad = deg * pi/180; q10 fixed point, pi/180*1024 = 17.87 -> 18/1024+err
    // use (deg * 18317) >> 10 approximating pi/180 * 2^20 / 2^10
    return (deg * 18) - (deg >> 3);
}

void main() {
    u32 s0 = 0; u32 s1 = 0; u32 s2 = 0; u32 s3 = 0;
    for (u32 i = 0; i < nvalues; i += 1) {
        u32 v = values[i];
        s0 += isqrt(v);
        s2 += icbrt(v);
    }
    for (u32 i = 0; i + 1 < nvalues; i += 2) {
        s1 += gcd(values[i] | 1, values[i + 1] | 1);
    }
    for (u32 d = 0; d < 360; d += 7) {
        s3 += deg_to_rad_q10(d);
    }
    results[0] = s0; results[1] = s1; results[2] = s2; results[3] = s3;
    out(s0); out(s1); out(s2); out(s3);
}
"""


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xBA51C, kind, seed))
    count = {"test": 64, "train": 40, "alt": 64}[kind]
    if kind == "alt":
        values = [rng.below(4000) for _ in range(count)]
    else:
        values = [rng.next() & 0xFFFFFF for _ in range(count)]
    return {"values": values, "nvalues": count}


def _isqrt(x: int) -> int:
    if x < 2:
        return x
    r = x
    y = (r + 1) // 2
    while y < r:
        r = y
        y = (r + x // r) // 2
    return r


def _icbrt(x: int) -> int:
    lo, hi = 0, 255
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid * mid * mid <= x:
            lo = mid
        else:
            hi = mid - 1
    return lo


def reference(inputs: dict) -> list:
    values = inputs["values"][: inputs["nvalues"]]
    s0 = sum(_isqrt(v) for v in values) & 0xFFFFFFFF
    s1 = 0
    for i in range(0, len(values) - 1, 2):
        s1 += math.gcd(values[i] | 1, values[i + 1] | 1)
    s1 &= 0xFFFFFFFF
    s2 = sum(_icbrt(v) for v in values) & 0xFFFFFFFF
    s3 = sum((d * 18 - (d >> 3)) & 0xFFFFFFFF for d in range(0, 360, 7)) & 0xFFFFFFFF
    return [s0, s1, s2, s3]


WORKLOAD = register(
    Workload(
        name="basicmath",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="integer sqrt/cbrt/gcd/angle kernels (FP substitution)",
    )
)
