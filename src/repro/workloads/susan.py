"""susan — smallest-univalue-segment image kernels: smoothing, edges,
corners (scaled-down masks over a 24×24 8-bit image; DESIGN.md).

Pixels and brightness-LUT entries are bytes; the accumulators stay small.
susan-corners keeps a couple of genuinely wide accumulators around, the
paper's example of a few wide variables poisoning basic-block-granularity
coercion (Fig 1d) while per-variable speculation is unaffected.
"""

from __future__ import annotations

import math

from repro.workloads.base import Workload, XorShift, mix_seed, register

DIM = 24
LUT_SIZE = 511


def _brightness_lut(threshold: int) -> list:
    lut = []
    for delta in range(-255, 256):
        value = int(round(100.0 * math.exp(-((delta / threshold) ** 6))))
        lut.append(min(value, 255))
    return lut


def make_image(rng: XorShift, *, amplitude: int = 255) -> list:
    """A synthetic scene: gradient + rectangles + blobs + mild noise."""
    img = [0] * (DIM * DIM)
    gx = rng.below(5) + 1
    gy = rng.below(5) + 1
    for y in range(DIM):
        for x in range(DIM):
            img[y * DIM + x] = (x * gx + y * gy) % (amplitude + 1)
    for _ in range(3):
        x0, y0 = rng.below(DIM - 6), rng.below(DIM - 6)
        w, h = 3 + rng.below(6), 3 + rng.below(6)
        shade = rng.below(amplitude + 1)
        for y in range(y0, min(DIM, y0 + h)):
            for x in range(x0, min(DIM, x0 + w)):
                img[y * DIM + x] = shade
    for _ in range(DIM * 2):
        pos = rng.below(DIM * DIM)
        img[pos] = (img[pos] + rng.below(16)) % (amplitude + 1)
    return img


_COMMON = """
u8 image[576];
u8 lut[511];
u32 dim;
u32 result;
"""

SMOOTHING_SOURCE = _COMMON + """
u8 smoothed[576];

void main() {
    u32 d = dim;
    for (u32 y = 1; y < d - 1; y += 1) {
        for (u32 x = 1; x < d - 1; x += 1) {
            u32 center = image[y * 24 + x];
            u32 total = 0;
            u32 weight = 0;
            for (u32 dy = 0; dy < 3; dy += 1) {
                for (u32 dx = 0; dx < 3; dx += 1) {
                    u32 pix = image[(y + dy - 1) * 24 + (x + dx - 1)];
                    u32 w = lut[pix - center + 255];
                    total += w * pix;
                    weight += w;
                }
            }
            if (weight != 0) { smoothed[y * 24 + x] = total / weight; }
            else { smoothed[y * 24 + x] = (u8)center; }
        }
    }
    u32 c = 0;
    for (u32 i = 0; i < d * 24; i += 1) {
        c = (c * 31 + smoothed[i]) & 0xFFFFFF;
    }
    result = c;
    out(c);
}
"""

EDGES_SOURCE = _COMMON + """
u8 response[576];

void main() {
    u32 d = dim;
    u32 max_n = 900;
    u32 edge_count = 0;
    for (u32 y = 2; y < d - 2; y += 1) {
        for (u32 x = 2; x < d - 2; x += 1) {
            u32 center = image[y * 24 + x];
            u32 n = 0;
            for (u32 dy = 0; dy < 5; dy += 1) {
                for (u32 dx = 0; dx < 5; dx += 1) {
                    u32 pix = image[(y + dy - 2) * 24 + (x + dx - 2)];
                    n += lut[pix - center + 255];
                }
            }
            u8 r = 0;
            if (n < max_n) { r = (u8)((max_n - n) / 4); }
            response[y * 24 + x] = r;
            if (r > 0) { edge_count += 1; }
        }
    }
    u32 c = 0;
    for (u32 i = 0; i < d * 24; i += 1) {
        c = (c * 31 + response[i]) & 0xFFFFFF;
    }
    result = c;
    out(c);
    out(edge_count);
}
"""

CORNERS_SOURCE = _COMMON + """
u8 corners[576];

void main() {
    u32 d = dim;
    u32 max_n = 900;
    u32 corner_thresh = 450;
    u32 corner_count = 0;
    u32 total_response = 0;   // wide accumulator (Fig 1d narrative)
    u32 weighted_pos = 0;     // wide accumulator
    for (u32 y = 2; y < d - 2; y += 1) {
        for (u32 x = 2; x < d - 2; x += 1) {
            u32 center = image[y * 24 + x];
            u32 n = 0;
            for (u32 dy = 0; dy < 5; dy += 1) {
                for (u32 dx = 0; dx < 5; dx += 1) {
                    u32 pix = image[(y + dy - 2) * 24 + (x + dx - 2)];
                    n += lut[pix - center + 255];
                }
            }
            u8 r = 0;
            if (n < corner_thresh) {
                r = (u8)((corner_thresh - n) / 2);
                corner_count += 1;
                total_response += (corner_thresh - n) * (corner_thresh - n);
                weighted_pos += (y * 24 + x) * (corner_thresh - n);
            }
            corners[y * 24 + x] = r;
        }
    }
    u32 c = 0;
    for (u32 i = 0; i < d * 24; i += 1) {
        c = (c * 31 + corners[i]) & 0xFFFFFF;
    }
    result = c ^ (total_response & 0xFFFF) ^ (weighted_pos & 0xFF);
    out(result);
    out(corner_count);
}
"""


def _make_inputs(kind: str, seed: int, threshold: int) -> dict:
    rng = XorShift(mix_seed(0x505A, kind, seed))
    amplitude = {"test": 255, "train": 255, "alt": 90}[kind]
    image = make_image(rng, amplitude=amplitude)
    return {
        "image": image,
        "lut": _brightness_lut(threshold),
        "dim": DIM,
    }


def _usan(image: list, lut: list, x: int, y: int, radius: int) -> int:
    center = image[y * DIM + x]
    n = 0
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            pix = image[(y + dy) * DIM + (x + dx)]
            n += lut[pix - center + 255]
    return n


def _ref_smoothing(inputs: dict) -> list:
    image, lut = inputs["image"], inputs["lut"]
    smoothed = [0] * (DIM * DIM)
    for y in range(1, DIM - 1):
        for x in range(1, DIM - 1):
            center = image[y * DIM + x]
            total = weight = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    pix = image[(y + dy) * DIM + (x + dx)]
                    w = lut[pix - center + 255]
                    total += w * pix
                    weight += w
            smoothed[y * DIM + x] = (total // weight if weight else center) & 0xFF
    check = 0
    for v in smoothed:
        check = (check * 31 + v) & 0xFFFFFF
    return [check]


def _ref_edges(inputs: dict) -> list:
    image, lut = inputs["image"], inputs["lut"]
    response = [0] * (DIM * DIM)
    count = 0
    for y in range(2, DIM - 2):
        for x in range(2, DIM - 2):
            n = _usan(image, lut, x, y, 2)
            r = ((900 - n) // 4) & 0xFF if n < 900 else 0
            response[y * DIM + x] = r
            if r > 0:
                count += 1
    check = 0
    for v in response:
        check = (check * 31 + v) & 0xFFFFFF
    return [check, count]


def _ref_corners(inputs: dict) -> list:
    image, lut = inputs["image"], inputs["lut"]
    corners = [0] * (DIM * DIM)
    count = 0
    total_response = 0
    weighted_pos = 0
    for y in range(2, DIM - 2):
        for x in range(2, DIM - 2):
            n = _usan(image, lut, x, y, 2)
            if n < 450:
                corners[y * DIM + x] = ((450 - n) // 2) & 0xFF
                count += 1
                total_response = (total_response + (450 - n) * (450 - n)) & 0xFFFFFFFF
                weighted_pos = (weighted_pos + (y * DIM + x) * (450 - n)) & 0xFFFFFFFF
    check = 0
    for v in corners:
        check = (check * 31 + v) & 0xFFFFFF
    result = check ^ (total_response & 0xFFFF) ^ (weighted_pos & 0xFF)
    return [result, count]


WORKLOAD_SMOOTHING = register(
    Workload(
        name="susan-smoothing",
        source=SMOOTHING_SOURCE,
        make_inputs=lambda kind, seed=0: _make_inputs(kind, seed, 30),
        reference=_ref_smoothing,
        description="brightness-weighted 3x3 smoothing",
    )
)

WORKLOAD_EDGES = register(
    Workload(
        name="susan-edges",
        source=EDGES_SOURCE,
        make_inputs=lambda kind, seed=0: _make_inputs(kind, seed, 20),
        reference=_ref_edges,
        description="USAN edge response over a 5x5 mask",
    )
)

WORKLOAD_CORNERS = register(
    Workload(
        name="susan-corners",
        source=CORNERS_SOURCE,
        make_inputs=lambda kind, seed=0: _make_inputs(kind, seed, 20),
        reference=_ref_corners,
        description="USAN corner response with wide accumulators",
    )
)
