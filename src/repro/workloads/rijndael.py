"""rijndael — AES-128 encryption with word-packed columns.

The Gladman-style u32-column formulation: SubBytes/ShiftRows gather bytes
with ``(w >> k) & 0xFF`` extracts and MixColumns runs on packed words with
``xtime`` masks — the hottest bitmask-elision target in the paper (removing
that optimization costs rijndael 33.4% — RQ3).
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_BLOCKS = 6

# FIPS-197 S-box.
SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

_SBOX_INIT = ",".join(str(v) for v in SBOX)
_RCON_INIT = ",".join(str(v) for v in RCON)

SOURCE = f"""
u8 sbox[256] = {{{_SBOX_INIT}}};
u8 rcon[10] = {{{_RCON_INIT}}};
u8 key[16];
u32 blocks[24];
u32 nblocks;
u32 rk[44];
u32 check;
""" + """
u32 sub_word(u32 w) {
    return (u32)sbox[w & 0xFF] | ((u32)sbox[(w >> 8) & 0xFF] << 8)
         | ((u32)sbox[(w >> 16) & 0xFF] << 16)
         | ((u32)sbox[(w >> 24) & 0xFF] << 24);
}

void expand_key() {
    for (u32 i = 0; i < 4; i += 1) {
        rk[i] = (u32)key[4 * i] | ((u32)key[4 * i + 1] << 8)
              | ((u32)key[4 * i + 2] << 16) | ((u32)key[4 * i + 3] << 24);
    }
    for (u32 i = 4; i < 44; i += 1) {
        u32 t = rk[i - 1];
        if (i % 4 == 0) {
            t = (t >> 8) | (t << 24);
            t = sub_word(t);
            t = t ^ (u32)rcon[i / 4 - 1];
        }
        rk[i] = rk[i - 4] ^ t;
    }
}

u32 xt(u32 x) {
    return ((x << 1) ^ ((x >> 7) * 0x1B)) & 0xFF;
}

u32 mix_column(u32 a) {
    u32 a0 = a & 0xFF;
    u32 a1 = (a >> 8) & 0xFF;
    u32 a2 = (a >> 16) & 0xFF;
    u32 a3 = (a >> 24) & 0xFF;
    u32 m0 = xt(a0) ^ (xt(a1) ^ a1) ^ a2 ^ a3;
    u32 m1 = a0 ^ xt(a1) ^ (xt(a2) ^ a2) ^ a3;
    u32 m2 = a0 ^ a1 ^ xt(a2) ^ (xt(a3) ^ a3);
    u32 m3 = (xt(a0) ^ a0) ^ a1 ^ a2 ^ xt(a3);
    return m0 | (m1 << 8) | (m2 << 16) | (m3 << 24);
}

u32 c0; u32 c1; u32 c2; u32 c3;

void sub_shift() {
    u32 t0 = (u32)sbox[c0 & 0xFF] | ((u32)sbox[(c1 >> 8) & 0xFF] << 8)
           | ((u32)sbox[(c2 >> 16) & 0xFF] << 16)
           | ((u32)sbox[(c3 >> 24) & 0xFF] << 24);
    u32 t1 = (u32)sbox[c1 & 0xFF] | ((u32)sbox[(c2 >> 8) & 0xFF] << 8)
           | ((u32)sbox[(c3 >> 16) & 0xFF] << 16)
           | ((u32)sbox[(c0 >> 24) & 0xFF] << 24);
    u32 t2 = (u32)sbox[c2 & 0xFF] | ((u32)sbox[(c3 >> 8) & 0xFF] << 8)
           | ((u32)sbox[(c0 >> 16) & 0xFF] << 16)
           | ((u32)sbox[(c1 >> 24) & 0xFF] << 24);
    u32 t3 = (u32)sbox[c3 & 0xFF] | ((u32)sbox[(c0 >> 8) & 0xFF] << 8)
           | ((u32)sbox[(c1 >> 16) & 0xFF] << 16)
           | ((u32)sbox[(c2 >> 24) & 0xFF] << 24);
    c0 = t0; c1 = t1; c2 = t2; c3 = t3;
}

void encrypt_block(u32 b) {
    c0 = blocks[b] ^ rk[0];
    c1 = blocks[b + 1] ^ rk[1];
    c2 = blocks[b + 2] ^ rk[2];
    c3 = blocks[b + 3] ^ rk[3];
    for (u32 round = 1; round < 10; round += 1) {
        sub_shift();
        c0 = mix_column(c0) ^ rk[4 * round];
        c1 = mix_column(c1) ^ rk[4 * round + 1];
        c2 = mix_column(c2) ^ rk[4 * round + 2];
        c3 = mix_column(c3) ^ rk[4 * round + 3];
    }
    sub_shift();
    blocks[b] = c0 ^ rk[40];
    blocks[b + 1] = c1 ^ rk[41];
    blocks[b + 2] = c2 ^ rk[42];
    blocks[b + 3] = c3 ^ rk[43];
}

void main() {
    expand_key();
    for (u32 b = 0; b + 3 < nblocks * 4; b += 4) { encrypt_block(b); }
    u32 c = 0;
    for (u32 i = 0; i < nblocks * 4; i += 1) { c ^= blocks[i]; }
    check = c;
    out(c);
    out(blocks[0]);
    out(blocks[1]);
}
"""


# -- Python oracle ----------------------------------------------------------


def _xt(x: int) -> int:
    return ((x << 1) ^ ((x >> 7) * 0x1B)) & 0xFF


def _sub_word(w: int) -> int:
    return (
        SBOX[w & 0xFF]
        | (SBOX[(w >> 8) & 0xFF] << 8)
        | (SBOX[(w >> 16) & 0xFF] << 16)
        | (SBOX[(w >> 24) & 0xFF] << 24)
    )


def _expand_key(key: list) -> list:
    rk = [
        key[4 * i] | key[4 * i + 1] << 8 | key[4 * i + 2] << 16 | key[4 * i + 3] << 24
        for i in range(4)
    ]
    for i in range(4, 44):
        t = rk[i - 1]
        if i % 4 == 0:
            t = ((t >> 8) | (t << 24)) & 0xFFFFFFFF
            t = _sub_word(t) ^ RCON[i // 4 - 1]
        rk.append(rk[i - 4] ^ t)
    return rk


def _mix_column(a: int) -> int:
    a0, a1 = a & 0xFF, (a >> 8) & 0xFF
    a2, a3 = (a >> 16) & 0xFF, (a >> 24) & 0xFF
    m0 = _xt(a0) ^ (_xt(a1) ^ a1) ^ a2 ^ a3
    m1 = a0 ^ _xt(a1) ^ (_xt(a2) ^ a2) ^ a3
    m2 = a0 ^ a1 ^ _xt(a2) ^ (_xt(a3) ^ a3)
    m3 = (_xt(a0) ^ a0) ^ a1 ^ a2 ^ _xt(a3)
    return m0 | (m1 << 8) | (m2 << 16) | (m3 << 24)


def _sub_shift(c: list) -> list:
    out = []
    for i in range(4):
        out.append(
            SBOX[c[i] & 0xFF]
            | (SBOX[(c[(i + 1) % 4] >> 8) & 0xFF] << 8)
            | (SBOX[(c[(i + 2) % 4] >> 16) & 0xFF] << 16)
            | (SBOX[(c[(i + 3) % 4] >> 24) & 0xFF] << 24)
        )
    return out


def encrypt_block_words(words: list, rk: list) -> list:
    c = [words[i] ^ rk[i] for i in range(4)]
    for rnd in range(1, 10):
        c = _sub_shift(c)
        c = [_mix_column(c[i]) ^ rk[4 * rnd + i] for i in range(4)]
    c = _sub_shift(c)
    return [c[i] ^ rk[40 + i] for i in range(4)]


def aes128_encrypt(block16: bytes, key16: bytes) -> bytes:
    """FIPS-197 AES-128 ECB on one block (column-word packing)."""
    words = [
        int.from_bytes(block16[4 * i : 4 * i + 4], "little") for i in range(4)
    ]
    rk = _expand_key(list(key16))
    out = encrypt_block_words(words, rk)
    return b"".join(w.to_bytes(4, "little") for w in out)


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xAE5, kind, seed))
    blocks = {"test": 5, "train": 3, "alt": 6}[kind]
    words = [rng.next() for _ in range(blocks * 4)]
    key = rng.bytes(16)
    return {"blocks": words, "nblocks": blocks, "key": key}


def reference(inputs: dict) -> list:
    rk = _expand_key(inputs["key"])
    words = list(inputs["blocks"][: inputs["nblocks"] * 4])
    for b in range(0, len(words), 4):
        words[b : b + 4] = encrypt_block_words(words[b : b + 4], rk)
    check = 0
    for w in words:
        check ^= w
    return [check, words[0], words[1]]


WORKLOAD = register(
    Workload(
        name="rijndael",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="AES-128 with word-packed columns (bitmask-heavy)",
    )
)
