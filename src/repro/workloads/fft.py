"""fft — radix-2 decimation-in-time FFT in Q14 fixed point (N = 64).

MiBench's FFT is floating point; this is the fixed-point substitution
(DESIGN.md): identical butterfly structure, twiddle factors injected as
Q14 integer tables, products scaled with arithmetic shifts.  Signed 32-bit
throughout — mostly unsqueezable, like the paper's FFT column.
"""

from __future__ import annotations

import math

from repro.workloads.base import Workload, XorShift, mix_seed, register

N = 64
Q = 14
SCALE = 1 << Q

SOURCE = """
s32 re[64];
s32 im[64];
s32 tw_cos[32];
s32 tw_sin[32];
u32 npoints;
u32 outcheck;

void fft() {
    u32 n = npoints;
    // bit-reversal permutation
    u32 j = 0;
    for (u32 i = 0; i < n - 1; i += 1) {
        if (i < j) {
            s32 tr = re[i]; re[i] = re[j]; re[j] = tr;
            s32 ti = im[i]; im[i] = im[j]; im[j] = ti;
        }
        u32 m = n >> 1;
        while (m >= 1 && j >= m) {
            j -= m;
            m >>= 1;
        }
        j += m;
    }
    // butterflies
    u32 len = 2;
    while (len <= n) {
        u32 half = len >> 1;
        u32 step = n / len;
        for (u32 base = 0; base < n; base += len) {
            u32 k = 0;
            for (u32 off = 0; off < half; off += 1) {
                s32 wr = tw_cos[k];
                s32 wi = tw_sin[k];
                u32 a = base + off;
                u32 b = a + half;
                s32 xr = (s32)((re[b] * wr - im[b] * wi) >> 14);
                s32 xi = (s32)((re[b] * wi + im[b] * wr) >> 14);
                re[b] = re[a] - xr;
                im[b] = im[a] - xi;
                re[a] = re[a] + xr;
                im[a] = im[a] + xi;
                k += step;
            }
        }
        len <<= 1;
    }
}

void main() {
    fft();
    u32 c = 0;
    for (u32 i = 0; i < npoints; i += 1) {
        c = (c * 31 + (u32)re[i] + (u32)im[i]) & 0xFFFFFF;
    }
    outcheck = c;
    out(c);
    out((u32)re[0]);
    out((u32)im[1]);
}
"""


def _twiddles() -> tuple:
    cos_t, sin_t = [], []
    for k in range(N // 2):
        angle = -2.0 * math.pi * k / N
        cos_t.append(int(round(math.cos(angle) * SCALE)))
        sin_t.append(int(round(math.sin(angle) * SCALE)))
    return cos_t, sin_t


def _fft_fixed(re: list, im: list, n: int) -> tuple:
    cos_t, sin_t = _twiddles()

    def wrap(x):
        return ((x + 0x80000000) & 0xFFFFFFFF) - 0x80000000

    # bit reversal (same index walk as the kernel)
    j = 0
    for i in range(n - 1):
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        m = n >> 1
        while m >= 1 and j >= m:
            j -= m
            m >>= 1
        j += m
    length = 2
    while length <= n:
        half = length >> 1
        step = n // length
        for base in range(0, n, length):
            k = 0
            for off in range(half):
                wr, wi = cos_t[k], sin_t[k]
                a, b = base + off, base + off + half
                xr = wrap(wrap(re[b] * wr - im[b] * wi) >> 14)
                xi = wrap(wrap(re[b] * wi + im[b] * wr) >> 14)
                re[b] = wrap(re[a] - xr)
                im[b] = wrap(im[a] - xi)
                re[a] = wrap(re[a] + xr)
                im[a] = wrap(im[a] + xi)
                k += step
        length <<= 1
    return re, im


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xFF7, kind, seed))
    n = {"test": 64, "train": 32, "alt": 64}[kind]
    # ±2^10 inputs keep |X_k| ≤ 2^16 after the 64-point gain, so Q14
    # products stay inside 32 bits.
    amplitude = 1 << 10 if kind != "alt" else 1 << 7
    re = [(rng.below(2 * amplitude) - amplitude) for _ in range(n)]
    im = [0] * n
    cos_t, sin_t = _twiddles()
    return {
        "re": re,
        "im": im,
        "tw_cos": cos_t,
        "tw_sin": sin_t,
        "npoints": n,
    }


def reference(inputs: dict) -> list:
    n = inputs["npoints"]
    re, im = _fft_fixed(list(inputs["re"][:n]), list(inputs["im"][:n]), n)
    check = 0
    for i in range(n):
        check = (check * 31 + (re[i] & 0xFFFFFFFF) + (im[i] & 0xFFFFFFFF)) & 0xFFFFFF
    return [check, re[0] & 0xFFFFFFFF, im[1] & 0xFFFFFFFF]


WORKLOAD = register(
    Workload(
        name="fft",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="Q14 fixed-point radix-2 FFT (FP substitution)",
    )
)
