"""sha — SHA-1 over pre-padded 64-byte blocks.

The compression function is dominated by genuinely 32-bit rotations and
adds: the paper's example of a workload where static demanded-bits finds
*nothing* while ~42% of dynamic values still fit 8 bits (loop counters,
bytes being packed into words).
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_BLOCKS = 4

SOURCE = """
u8 message[256];
u32 nblocks;
u32 digest[5];
u32 w[80];

u32 rotl(u32 x, u32 n) {
    return (x << n) | (x >> (32 - n));
}

void main() {
    u32 h0 = 0x67452301;
    u32 h1 = 0xEFCDAB89;
    u32 h2 = 0x98BADCFE;
    u32 h3 = 0x10325476;
    u32 h4 = 0xC3D2E1F0;
    for (u32 blk = 0; blk < nblocks; blk += 1) {
        u32 base = blk * 64;
        for (u32 t = 0; t < 16; t += 1) {
            u32 o = base + t * 4;
            w[t] = ((u32)message[o] << 24) | ((u32)message[o + 1] << 16)
                 | ((u32)message[o + 2] << 8) | (u32)message[o + 3];
        }
        for (u32 t = 16; t < 80; t += 1) {
            w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
        }
        u32 a = h0; u32 b = h1; u32 c = h2; u32 d = h3; u32 e = h4;
        for (u32 t = 0; t < 80; t += 1) {
            u32 f = 0;
            u32 k = 0;
            if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999; }
            else if (t < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
            else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
            else { f = b ^ c ^ d; k = 0xCA62C1D6; }
            u32 temp = rotl(a, 5) + f + e + k + w[t];
            e = d; d = c; c = rotl(b, 30); b = a; a = temp;
        }
        h0 += a; h1 += b; h2 += c; h3 += d; h4 += e;
    }
    digest[0] = h0; digest[1] = h1; digest[2] = h2;
    digest[3] = h3; digest[4] = h4;
    out(h0); out(h1); out(h2); out(h3); out(h4);
}
"""


def _sha1_blocks(blocks: bytes) -> list:
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]

    def rotl(x, n):
        return ((x << n) | (x >> (32 - n))) & 0xFFFFFFFF

    for base in range(0, len(blocks), 64):
        w = [
            int.from_bytes(blocks[base + 4 * t : base + 4 * t + 4], "big")
            for t in range(16)
        ]
        for t in range(16, 80):
            w.append(rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f, k = (b & c) | (~b & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            a, b, c, d, e = (
                (rotl(a, 5) + (f & 0xFFFFFFFF) + e + k + w[t]) & 0xFFFFFFFF,
                a,
                rotl(b, 30),
                c,
                d,
            )
        h = [(x + y) & 0xFFFFFFFF for x, y in zip(h, (a, b, c, d, e))]
    return h


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0x5A1, kind, seed))
    blocks = {"test": 3, "train": 2, "alt": 4}[kind]
    message = rng.bytes(blocks * 64)
    return {"message": message, "nblocks": blocks}


def reference(inputs: dict) -> list:
    data = bytes(inputs["message"][: inputs["nblocks"] * 64])
    return _sha1_blocks(data)


WORKLOAD = register(
    Workload(
        name="sha",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="SHA-1 compression over pre-padded blocks",
    )
)
