"""CRC32 — table-driven CRC over variable-length lines.

Mirrors the paper's characterization (§3): the per-line length variable is
``size_t``-typed (u64 here) but almost always fits 8 bits — speculation
handles the occasional long line.  The CRC state itself is genuinely 32-bit.
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_DATA = 4096
MAX_LINES = 48

SOURCE = """
u32 crc_table[256];
u8  data[4096];
u64 line_len[48];
u32 nlines;
u32 checksum;

void build_table() {
    for (u32 n = 0; n < 256; n += 1) {
        u32 c = n;
        for (u32 k = 0; k < 8; k += 1) {
            if (c & 1) { c = 0xEDB88320 ^ (c >> 1); }
            else { c = c >> 1; }
        }
        crc_table[n] = c;
    }
}

u32 crc_of_line(u32 start, u64 len) {
    u32 crc = 0xFFFFFFFF;
    for (u64 i = 0; i < len; i += 1) {
        crc = crc_table[(crc ^ data[start + (u32)i]) & 0xFF] ^ (crc >> 8);
    }
    return ~crc;
}

void main() {
    build_table();
    u32 agg = 0;
    u32 start = 0;
    for (u32 l = 0; l < nlines; l += 1) {
        u64 len = line_len[l];
        agg = agg ^ crc_of_line(start, len);
        start = start + (u32)len;
    }
    checksum = agg;
    out(agg);
}
"""


def _crc32_py(data: list) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (0xEDB88320 ^ (crc >> 1)) if crc & 1 else crc >> 1
    return crc ^ 0xFFFFFFFF


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xC0FFEE, kind, seed))
    if kind == "test":
        # mostly short lines, one outlier past 255 bytes (the paper's CRC32
        # story: average length small, occasional long line misspeculates)
        lengths = [20 + rng.below(120) for _ in range(20)] + [300]
    elif kind == "train":
        lengths = [15 + rng.below(140) for _ in range(16)]
    else:  # alt
        lengths = [5 + rng.below(60) for _ in range(30)]
    total = sum(lengths)
    assert total <= MAX_DATA
    data = rng.bytes(total)
    return {
        "data": data,
        "line_len": lengths,
        "nlines": len(lengths),
    }


def reference(inputs: dict) -> list:
    data = inputs["data"]
    agg = 0
    start = 0
    for length in inputs["line_len"][: inputs["nlines"]]:
        agg ^= _crc32_py(data[start : start + length])
        start += length
    return [agg]


WORKLOAD = register(
    Workload(
        name="crc32",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="table-driven CRC32 over variable-length lines",
    )
)
