"""Workload infrastructure.

A :class:`Workload` bundles MiniC source, input generators for the paper's
three input roles (``test`` = the measured run, ``train`` = the profiling
run, ``alt`` = the RQ6 alternate-profile run), and a pure-Python reference
implementation used as the correctness oracle for every compiler
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

INPUT_KINDS = ("test", "train", "alt")

#: stable per-kind seed component (str hash is randomized per process)
KIND_SEED = {"test": 0x1111, "train": 0x2222, "alt": 0x3333}


def mix_seed(base: int, kind: str, seed: int) -> int:
    """Deterministic seed for input generation."""
    return (base ^ KIND_SEED[kind] ^ (seed * 0x9E3779B1)) & 0xFFFFFFFF


class XorShift:
    """Deterministic 32-bit xorshift RNG for input generation."""

    def __init__(self, seed: int = 0x2545F491) -> None:
        self.state = (seed or 1) & 0xFFFFFFFF

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def below(self, bound: int) -> int:
        return self.next() % bound

    def bytes(self, count: int, bound: int = 256) -> list[int]:
        return [self.below(bound) for _ in range(count)]


@dataclass
class Workload:
    """One benchmark: source + inputs + reference oracle."""

    name: str
    source: str
    make_inputs: Callable[[str, int], dict]
    reference: Callable[[dict], list]
    description: str = ""
    #: RQ7 variant source with all integer variables widened to 64 bits
    wide_source: Optional[str] = None

    def inputs(self, kind: str = "test", seed: int = 0) -> dict:
        if kind not in INPUT_KINDS:
            raise ValueError(f"unknown input kind {kind!r}")
        return self.make_inputs(kind, seed)

    def expected_output(self, inputs: dict) -> list:
        return self.reference(inputs)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> dict[str, Workload]:
    _ensure_loaded()
    return dict(_REGISTRY)


def workload_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


_LOADED = False


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Import for registration side effects.
    from repro.workloads import (  # noqa: F401
        basicmath,
        bitcount,
        blowfish,
        crc32,
        dijkstra,
        fft,
        patricia,
        qsort,
        rijndael,
        sha,
        stringsearch,
        susan,
    )
