"""bitcount — MiBench's bit-counting kernel: several counting strategies
over a pseudo-random word stream (shift loop, Kernighan, nibble table,
byte table, SWAR reduction).  Counts are tiny (≤ 32) — prime BITSPEC fodder.
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

N_WORDS = 192

SOURCE = """
u32 words[192];
u32 nwords;
u8 nibble_table[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};
u32 totals[5];

u32 count_shift(u32 x) {
    u32 c = 0;
    while (x != 0) {
        c += x & 1;
        x >>= 1;
    }
    return c;
}

u32 count_kernighan(u32 x) {
    u32 c = 0;
    while (x != 0) {
        x = x & (x - 1);
        c += 1;
    }
    return c;
}

u32 count_nibbles(u32 x) {
    u32 c = 0;
    for (u32 i = 0; i < 8; i += 1) {
        c += nibble_table[x & 0xF];
        x >>= 4;
    }
    return c;
}

u32 count_bytes(u32 x) {
    u32 c = 0;
    for (u32 i = 0; i < 4; i += 1) {
        u8 b = (u8)(x & 0xFF);
        c += nibble_table[b & 0xF] + nibble_table[(b >> 4) & 0xF];
        x >>= 8;
    }
    return c;
}

u32 count_swar(u32 x) {
    x = x - ((x >> 1) & 0x55555555);
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
    x = (x + (x >> 4)) & 0x0F0F0F0F;
    return (x * 0x01010101) >> 24;
}

void main() {
    u32 t0 = 0; u32 t1 = 0; u32 t2 = 0; u32 t3 = 0; u32 t4 = 0;
    for (u32 i = 0; i < nwords; i += 1) {
        u32 w = words[i];
        t0 += count_shift(w);
        t1 += count_kernighan(w);
        t2 += count_nibbles(w);
        t3 += count_bytes(w);
        t4 += count_swar(w);
    }
    totals[0] = t0; totals[1] = t1; totals[2] = t2;
    totals[3] = t3; totals[4] = t4;
    out(t0); out(t1); out(t2); out(t3); out(t4);
}
"""


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xB17C047, kind, seed))
    if kind == "test":
        words = [rng.next() for _ in range(N_WORDS)]
    elif kind == "train":
        words = [rng.next() for _ in range(128)]
    else:
        # alt input: sparse words (low pop counts)
        words = [rng.next() & rng.next() & rng.next() for _ in range(N_WORDS)]
    return {"words": words, "nwords": len(words)}


def reference(inputs: dict) -> list:
    words = inputs["words"][: inputs["nwords"]]
    total = sum(bin(w).count("1") for w in words)
    return [total] * 5


WORKLOAD = register(
    Workload(
        name="bitcount",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="five bit-counting strategies over a word stream",
    )
)
