"""dijkstra — single-source shortest paths over a dense adjacency matrix.

Distances stay small on the provided graphs while the sentinel INF is a
full-width constant — the pattern compare elimination (§3.2.4) thrives on:
``dist[v] < INF`` folds to the speculation outcome of the squeezed distance.
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_NODES = 24
INF = 0xFFFFFF

SOURCE = """
u32 adj[576];
u32 nnodes;
u32 dist[24];
u32 visited[24];
u32 result;

void dijkstra(u32 src) {
    for (u32 i = 0; i < nnodes; i += 1) {
        dist[i] = 0xFFFFFF;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (u32 round = 0; round < nnodes; round += 1) {
        u32 best = 0xFFFFFF;
        u32 u = nnodes;
        for (u32 i = 0; i < nnodes; i += 1) {
            if (!visited[i] && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u == nnodes) { return; }
        visited[u] = 1;
        for (u32 v = 0; v < nnodes; v += 1) {
            u32 w = adj[u * 24 + v];
            if (w != 0 && !visited[v]) {
                u32 cand = dist[u] + w;
                if (cand < dist[v]) { dist[v] = cand; }
            }
        }
    }
}

void main() {
    u32 agg = 0;
    for (u32 s = 0; s < 4; s += 1) {
        dijkstra(s);
        for (u32 i = 0; i < nnodes; i += 1) {
            if (dist[i] != 0xFFFFFF) { agg += dist[i]; }
        }
    }
    result = agg;
    out(agg);
}
"""


def _gen_graph(rng: XorShift, nodes: int, max_weight: int) -> list:
    adj = [0] * (MAX_NODES * MAX_NODES)
    for u in range(nodes):
        for v in range(nodes):
            if u != v and rng.below(100) < 35:
                adj[u * MAX_NODES + v] = 1 + rng.below(max_weight)
    return adj


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0xD1285, kind, seed))
    if kind == "test":
        nodes, weight = 20, 20
    elif kind == "train":
        nodes, weight = 16, 20
    else:
        nodes, weight = 22, 60
    return {"adj": _gen_graph(rng, nodes, weight), "nnodes": nodes}


def reference(inputs: dict) -> list:
    adj = inputs["adj"]
    nodes = inputs["nnodes"]
    agg = 0
    for src in range(4):
        dist = [INF] * nodes
        visited = [False] * nodes
        dist[src] = 0
        for _ in range(nodes):
            best, u = INF, nodes
            for i in range(nodes):
                if not visited[i] and dist[i] < best:
                    best, u = dist[i], i
            if u == nodes:
                break
            visited[u] = True
            for v in range(nodes):
                w = adj[u * MAX_NODES + v]
                if w and not visited[v] and dist[u] + w < dist[v]:
                    dist[v] = dist[u] + w
        agg += sum(d for d in dist if d != INF)
    return [agg & 0xFFFFFFFF]


WORKLOAD = register(
    Workload(
        name="dijkstra",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="all-pairs-lite shortest paths on a dense graph",
    )
)


#: RQ7 variant: all integer variables at 64 bits.
WIDE_SOURCE = (
    SOURCE.replace("u32 adj", "u64 adj")
    .replace("u32 nnodes", "u64 nnodes")
    .replace("u32 dist", "u64 dist")
    .replace("u32 visited", "u64 visited")
    .replace("u32 result", "u64 result")
    .replace("void dijkstra(u32 src)", "void dijkstra(u64 src)")
    .replace("for (u32 ", "for (u64 ")
    .replace("u32 best", "u64 best")
    .replace("u32 u =", "u64 u =")
    .replace("u32 w =", "u64 w =")
    .replace("u32 cand", "u64 cand")
    .replace("u32 agg", "u64 agg")
    .replace("adj[u * 24 + v]", "adj[(u32)(u * 24 + v)]")
    .replace("dist[i]", "dist[(u32)i]")
    .replace("visited[i]", "visited[(u32)i]")
    .replace("dist[src]", "dist[(u32)src]")
    .replace("dist[u]", "dist[(u32)u]")
    .replace("dist[v]", "dist[(u32)v]")
    .replace("visited[u]", "visited[(u32)u]")
    .replace("visited[v]", "visited[(u32)v]")
    .replace("out(agg)", "out((u32)agg)")
)
WORKLOAD.wide_source = WIDE_SOURCE
