"""qsort — recursive quicksort (Hoare partition) over a word array.

Indices fit 8 bits while element values are full 32-bit words; recursion
makes this the paper's worst case for misspeculation cost (RQ2's qsort
anomaly: the partition loop re-executes after a misspeculation).
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_ELEMS = 192

SOURCE = """
u32 arr[192];
u32 nelems;
u32 check;

void sort(u32 lo, u32 hi) {
    if (lo >= hi) { return; }
    u32 pivot = arr[(lo + hi) / 2];
    u32 i = lo;
    u32 j = hi;
    while (i <= j) {
        while (arr[i] < pivot) { i += 1; }
        while (arr[j] > pivot) { j -= 1; }
        if (i <= j) {
            u32 t = arr[i];
            arr[i] = arr[j];
            arr[j] = t;
            i += 1;
            if (j == 0) { break; }
            j -= 1;
        }
    }
    if (j > lo) { sort(lo, j); }
    if (i < hi) { sort(i, hi); }
}

void main() {
    if (nelems > 1) { sort(0, nelems - 1); }
    u32 c = 0;
    for (u32 k = 0; k < nelems; k += 1) {
        c = (c * 31 + arr[k]) & 0xFFFFFF;
    }
    check = c;
    out(c);
    out(arr[0]);
    out(arr[nelems - 1]);
}
"""


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0x9504, kind, seed))
    sizes = {"test": 180, "train": 96, "alt": 150}
    count = sizes[kind]
    if kind == "alt":
        values = [rng.below(256) for _ in range(count)]  # narrow values
    else:
        values = [rng.next() & 0xFFFFF for _ in range(count)]
    return {"arr": values, "nelems": count}


def reference(inputs: dict) -> list:
    values = sorted(inputs["arr"][: inputs["nelems"]])
    check = 0
    for v in values:
        check = (check * 31 + v) & 0xFFFFFF
    return [check, values[0], values[-1]]


WORKLOAD = register(
    Workload(
        name="qsort",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="recursive quicksort over 32-bit words",
    )
)
