"""stringsearch — Boyer–Moore–Horspool over short strings (paper Listing 1).

Faithful to the paper's case study: lengths and positions are ``size_t``
(u64 here) although patterns are ≤ 12 bytes and haystacks ≤ 56 — so the hot
loop runs entirely at 8 bits once BITSPEC squeezes it, with 64-bit pair
arithmetic on the baseline.
"""

from __future__ import annotations

from repro.workloads.base import Workload, XorShift, mix_seed, register

MAX_TEXT = 1536
MAX_PATS = 12
PAT_AREA = 16  # bytes reserved per pattern

SOURCE = """
u8 text[1536];
u64 text_len;
u8 pats[192];
u64 pat_len[12];
u32 npats;
u32 shift_table[256];
u32 hits;

u64 search(u32 pat_base, u64 patlen) {
    u64 found = 0;
    for (u32 i = 0; i < 256; i += 1) { shift_table[i] = patlen; }
    for (u64 j = 0; j + 1 < patlen; j += 1) {
        shift_table[pats[pat_base + (u32)j]] = patlen - 1 - j;
    }
    u64 pos = patlen - 1;
    while (pos < text_len) {
        u64 k = 0;
        while (k < patlen &&
               pats[pat_base + (u32)(patlen - 1 - k)] == text[(u32)(pos - k)]) {
            k += 1;
        }
        if (k == patlen) {
            found += 1;
            pos += patlen;
        } else {
            pos += shift_table[text[(u32)pos]];
        }
    }
    return found;
}

void main() {
    u32 total = 0;
    for (u32 p = 0; p < npats; p += 1) {
        total += (u32)search(p * 16, pat_len[p]);
    }
    hits = total;
    out(total);
}
"""

_WORDS = [b"the", b"and", b"search", b"bitwidth", b"energy", b"tiny",
          b"register", b"spec", b"width", b"pack", b"slice", b"loop"]


def make_inputs(kind: str, seed: int = 0) -> dict:
    rng = XorShift(mix_seed(0x57161, kind, seed))
    sizes = {"test": 1400, "train": 800, "alt": 1200}
    text_len = sizes[kind]
    # text: lowercase letters and spaces with planted words
    text = bytearray()
    while len(text) < text_len:
        if rng.below(100) < 30:
            text.extend(_WORDS[rng.below(len(_WORDS))])
        else:
            text.append(97 + rng.below(26))
        if rng.below(100) < 18:
            text.append(32)
    text = text[:text_len]
    if kind == "alt":
        patterns = [b"zjq", b"energy", b"loop", b"xx"]
    else:
        patterns = [b"the", b"search", b"bitwidth", b"energy", b"slice", b"qzk"]
    pats = [0] * (MAX_PATS * PAT_AREA)
    pat_len = [0] * MAX_PATS
    for i, pattern in enumerate(patterns):
        for j, byte in enumerate(pattern):
            pats[i * PAT_AREA + j] = byte
        pat_len[i] = len(pattern)
    return {
        "text": list(text),
        "text_len": len(text),
        "pats": pats,
        "pat_len": pat_len,
        "npats": len(patterns),
    }


def reference(inputs: dict) -> list:
    text = bytes(inputs["text"][: inputs["text_len"]])
    total = 0
    for p in range(inputs["npats"]):
        patlen = inputs["pat_len"][p]
        pattern = bytes(
            inputs["pats"][p * PAT_AREA : p * PAT_AREA + patlen]
        )
        # Horspool with the same skip-on-match behaviour as the kernel.
        shift = {b: patlen for b in range(256)}
        for j in range(patlen - 1):
            shift[pattern[j]] = patlen - 1 - j
        pos = patlen - 1
        found = 0
        while pos < len(text):
            k = 0
            while k < patlen and pattern[patlen - 1 - k] == text[pos - k]:
                k += 1
            if k == patlen:
                found += 1
                pos += patlen
            else:
                pos += shift[text[pos]]
        total += found
    return [total & 0xFFFFFFFF]


WORKLOAD = register(
    Workload(
        name="stringsearch",
        source=SOURCE,
        make_inputs=make_inputs,
        reference=reference,
        description="Boyer-Moore-Horspool multi-pattern search (Listing 1)",
    )
)


#: RQ7 variant: every integer variable forced to 64 bits (the paper's
#: "modify the original C code to use 64 bits for all integer variables").
WIDE_SOURCE = SOURCE.replace("u32 shift_table", "u64 shift_table").replace(
    "u32 npats", "u64 npats"
).replace("u32 hits", "u64 hits").replace(
    "u64 search(u32 pat_base", "u64 search(u64 pat_base"
).replace("u32 total = 0", "u64 total = 0").replace(
    "for (u32 p = 0", "for (u64 p = 0"
).replace("for (u32 i = 0", "for (u64 i = 0").replace(
    "total += (u32)search(p * 16, pat_len[p])", "total += search(p * 16, pat_len[p])"
).replace("pats[pat_base + (u32)j]", "pats[(u32)(pat_base + j)]").replace(
    "out(total)", "out((u32)total)"
)
WORKLOAD.wide_source = WIDE_SOURCE
