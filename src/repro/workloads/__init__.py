"""MiBench-like workloads (see DESIGN.md for fidelity notes)."""

from repro.workloads.base import (
    Workload,
    XorShift,
    all_workloads,
    get_workload,
    mix_seed,
    register,
    workload_names,
)

__all__ = [
    "Workload",
    "XorShift",
    "all_workloads",
    "get_workload",
    "mix_seed",
    "register",
    "workload_names",
]
