"""Request schema: validation, canonicalization, content addressing.

A serve request is one JSON document (the spirit of selfspec-calculator's
validated ``model.yaml`` / ``hardware.yaml`` contract): MiniC source text
plus a configuration section — either a named preset or explicit DSE
knobs — plus optional profile/run input bindings and report options.

:func:`validate_request` checks the document against
:data:`REQUEST_SCHEMA` and returns its *canonical* form: defaults filled
in, knobs fully resolved, deterministic field order.  Validation failures
raise :class:`RequestValidationError` carrying one structured
``{"path", "message"}`` entry per problem — the server surfaces them
verbatim in the 400 error body.

:func:`request_key` is the content address of a canonical request — a
SHA-256 over the source text, the **resolved**
:meth:`repro.core.pipeline.CompilerConfig.fingerprint` (so a preset and
its equivalent knob spelling share one cache entry), the input bindings,
the report options, the report schema version and the energy-model stamp
(:func:`repro.bench.cache.energy_model_stamp`).  It doubles as the job id:
identical submissions are idempotent by construction.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import replace

from repro.arch.machine import ENGINES
from repro.arch.widths import SLICE_WIDTHS
from repro.core.pipeline import CompilerConfig
from repro.dse.space import OP_SETS, SpecPoint
from repro.profiler.selection import SQUEEZABLE_BINOPS

#: bump when the report document layout changes — invalidates cached reports
REPORT_SCHEMA = 1

#: named configuration presets accepted by ``config.preset``
#: (the same names ``python -m repro.bench --configs`` understands)
PRESETS = (
    "baseline",
    "bitspec-max",
    "bitspec-avg",
    "bitspec-min",
    "nospec",
    "thumb",
    "dts",
    "dts-bitspec-max",
)

HEURISTICS = ("max", "avg", "min")

_TENANT_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

MAX_SOURCE_BYTES = 256 * 1024
MAX_INPUT_GLOBALS = 64
MAX_INPUT_VALUES = 4096

#: sweepable knob defaults (mirrors :class:`repro.dse.space.SpecPoint`
#: plus the two compile-mode fields serve adds on top)
_KNOB_DEFAULTS = {
    "slice_width": 8,
    "heuristic": "max",
    "squeeze_ops": "all",
    "min_hotness": 0.0,
    "confidence_margin": 0,
    "dts": False,
    "dts_alpha": 1.3,
    "dts_bitwidth_aware": False,
    "l1_kb": 8,
    "l1_ways": 4,
    "l2_kb": 256,
    "l2_ways": 8,
    "max_spec_regions": 0,
}

#: machine-readable schema document, served at ``GET /v1/schema`` and
#: mirrored prose-side in docs/serve.md
REQUEST_SCHEMA = {
    "schema": REPORT_SCHEMA,
    "type": "object",
    "required": ["source"],
    "properties": {
        "tenant": {
            "type": "string",
            "pattern": _TENANT_RE.pattern,
            "default": "anonymous",
        },
        "source": {
            "type": "string",
            "description": "MiniC program text (must define main)",
            "maxBytes": MAX_SOURCE_BYTES,
        },
        "engine": {
            "enum": list(ENGINES),
            "description": "simulation engine preference; never partitions "
            "the cache and never changes the report body (the report's "
            "cycles/energy are defined under the in-order timing model; "
            "'ooo' additionally cross-checks the out-of-order engine's "
            "committed state before the body is emitted)",
        },
        "config": {
            "type": "object",
            "description": "either {'preset': name} or explicit knobs; "
            "'strict' is allowed in both spellings",
            "properties": {
                "preset": {"enum": list(PRESETS)},
                "strict": {"type": "boolean", "default": False},
                "slice_width": {"enum": sorted(SLICE_WIDTHS)},
                "heuristic": {"enum": list(HEURISTICS)},
                "squeeze_ops": {
                    "oneOf": [
                        {"enum": sorted(OP_SETS)},
                        {"type": "array", "items": {"enum": sorted(SQUEEZABLE_BINOPS)}},
                    ]
                },
                "min_hotness": {"type": "number", "minimum": 0.0, "maximum": 1.0},
                "confidence_margin": {"type": "integer", "minimum": 0, "maximum": 31},
                "dts": {"type": "boolean"},
                "dts_alpha": {"type": "number", "minimum": 1.0, "maximum": 3.0},
                "dts_bitwidth_aware": {"type": "boolean"},
                "l1_kb": {"type": "integer", "minimum": 1},
                "l1_ways": {"type": "integer", "minimum": 1},
                "l2_kb": {"type": "integer", "minimum": 1},
                "l2_ways": {"type": "integer", "minimum": 1},
                "max_spec_regions": {"type": "integer", "minimum": 0},
            },
        },
        "inputs": {
            "type": "object",
            "description": "global-name → int | [int] bindings",
            "properties": {
                "profile": {"type": "object"},
                "run": {"type": "object"},
            },
        },
        "report": {
            "type": "object",
            "properties": {
                "attribution": {"type": "boolean", "default": True},
                "pareto": {"type": "boolean", "default": True},
                "top": {"type": "integer", "minimum": 1, "maximum": 100, "default": 10},
            },
        },
    },
}


class RequestValidationError(Exception):
    """The request document failed schema validation."""

    def __init__(self, errors: list) -> None:
        self.errors = list(errors)
        super().__init__(
            "; ".join(f"{e['path']}: {e['message']}" for e in self.errors)
        )


def _err(errors: list, path: str, message: str) -> None:
    errors.append({"path": path, "message": message})


def _validate_inputs(section, path: str, errors: list) -> dict:
    if not isinstance(section, dict):
        _err(errors, path, f"expected an object, got {type(section).__name__}")
        return {}
    if len(section) > MAX_INPUT_GLOBALS:
        _err(errors, path, f"more than {MAX_INPUT_GLOBALS} input globals")
        return {}
    out = {}
    for name in sorted(section, key=str):
        value = section[name]
        if not isinstance(name, str) or not _IDENT_RE.match(name):
            _err(errors, f"{path}.{name}", "not a valid global identifier")
            continue
        values = value if isinstance(value, list) else [value]
        if len(values) > MAX_INPUT_VALUES:
            _err(errors, f"{path}.{name}", f"more than {MAX_INPUT_VALUES} values")
            continue
        bad = [
            v for v in values
            if not isinstance(v, int) or isinstance(v, bool)
            or not (-(1 << 64) < v < (1 << 64))
        ]
        if bad:
            _err(
                errors,
                f"{path}.{name}",
                f"values must be integers with |v| < 2**64, got {bad[0]!r}",
            )
            continue
        out[name] = value if isinstance(value, list) else value
    return out


def _validate_config(section, errors: list) -> dict:
    path = "config"
    if not isinstance(section, dict):
        _err(errors, path, f"expected an object, got {type(section).__name__}")
        return {"preset": "bitspec-max", "strict": False}
    strict = section.get("strict", False)
    if not isinstance(strict, bool):
        _err(errors, f"{path}.strict", "expected a boolean")
        strict = False
    extra = set(section) - {"preset", "strict"} - set(_KNOB_DEFAULTS)
    if extra:
        _err(errors, path, f"unknown knobs: {sorted(extra)}")
    if "preset" in section:
        knobs = set(section) & set(_KNOB_DEFAULTS)
        if knobs:
            _err(
                errors,
                path,
                f"'preset' and explicit knobs are mutually exclusive "
                f"(got knobs {sorted(knobs)})",
            )
        preset = section["preset"]
        if preset not in PRESETS:
            _err(
                errors,
                f"{path}.preset",
                f"unknown preset {preset!r}; valid: {', '.join(PRESETS)}",
            )
            preset = "bitspec-max"
        return {"preset": preset, "strict": strict}

    knobs = dict(_KNOB_DEFAULTS)
    for knob in sorted(set(section) & set(_KNOB_DEFAULTS)):
        value = section[knob]
        kpath = f"{path}.{knob}"
        default = _KNOB_DEFAULTS[knob]
        if knob == "slice_width":
            if value not in SLICE_WIDTHS:
                _err(errors, kpath, f"{value!r} is not one of {sorted(SLICE_WIDTHS)}")
                continue
        elif knob == "heuristic":
            if value not in HEURISTICS:
                _err(errors, kpath, f"{value!r} is not one of {list(HEURISTICS)}")
                continue
        elif knob == "squeeze_ops":
            if isinstance(value, str):
                if value not in OP_SETS:
                    _err(errors, kpath, f"{value!r} is not one of {sorted(OP_SETS)}")
                    continue
            elif isinstance(value, list):
                bad = [op for op in value if op not in SQUEEZABLE_BINOPS]
                if bad or not value:
                    _err(
                        errors,
                        kpath,
                        f"ops must be a non-empty subset of "
                        f"{sorted(SQUEEZABLE_BINOPS)}, got {value!r}",
                    )
                    continue
                value = sorted(set(value))
            else:
                _err(errors, kpath, "expected an op-set name or a list of ops")
                continue
        elif isinstance(default, bool):
            if not isinstance(value, bool):
                _err(errors, kpath, "expected a boolean")
                continue
        elif isinstance(default, float):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                _err(errors, kpath, "expected a number")
                continue
            value = float(value)
            lo, hi = (1.0, 3.0) if knob == "dts_alpha" else (0.0, 1.0)
            if not (lo <= value <= hi):
                _err(errors, kpath, f"{value!r} outside [{lo}, {hi}]")
                continue
        else:  # int knobs
            if isinstance(value, bool) or not isinstance(value, int):
                _err(errors, kpath, "expected an integer")
                continue
            zero_ok = knob in ("max_spec_regions", "confidence_margin")
            if value < 0 or (not zero_ok and value < 1):
                _err(errors, kpath, f"{value!r} out of range")
                continue
            if knob == "confidence_margin" and value > 31:
                _err(errors, kpath, f"{value!r} out of range (0..31)")
                continue
        knobs[knob] = value
    knobs["strict"] = strict
    # cache geometry and knob interactions are validated by the config
    # dataclass itself — surface its complaint under the config path
    try:
        build_config(knobs)
    except RequestValidationError:
        raise
    except Exception as exc:
        _err(errors, path, str(exc))
    return knobs


def validate_request(doc) -> dict:
    """Validate ``doc`` and return its canonical form.

    Raises :class:`RequestValidationError` with every problem found (not
    just the first) so a client can fix a bad document in one round trip.
    """
    errors: list = []
    if not isinstance(doc, dict):
        raise RequestValidationError(
            [{"path": "$", "message": "request body must be a JSON object"}]
        )
    unknown = set(doc) - {"tenant", "source", "engine", "config", "inputs", "report"}
    if unknown:
        _err(errors, "$", f"unknown fields: {sorted(unknown)}")

    engine = doc.get("engine")
    if engine is not None and engine not in ENGINES:
        _err(
            errors,
            "engine",
            f"unknown engine {engine!r}; valid: {', '.join(ENGINES)}",
        )
        engine = None

    tenant = doc.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        _err(errors, "tenant", "must match " + _TENANT_RE.pattern)
        tenant = "anonymous"

    source = doc.get("source")
    if not isinstance(source, str) or not source.strip():
        _err(errors, "source", "required: non-empty MiniC source text")
        source = ""
    elif len(source.encode()) > MAX_SOURCE_BYTES:
        _err(errors, "source", f"exceeds {MAX_SOURCE_BYTES} bytes")

    config = _validate_config(doc.get("config", {"preset": "bitspec-max"}), errors)

    inputs_doc = doc.get("inputs", {})
    if not isinstance(inputs_doc, dict):
        _err(errors, "inputs", "expected an object with 'profile'/'run'")
        inputs_doc = {}
    stray = set(inputs_doc) - {"profile", "run"}
    if stray:
        _err(errors, "inputs", f"unknown sections: {sorted(stray)}")
    profile = _validate_inputs(inputs_doc.get("profile", {}), "inputs.profile", errors)
    run = _validate_inputs(inputs_doc.get("run", {}), "inputs.run", errors)

    report_doc = doc.get("report", {})
    if not isinstance(report_doc, dict):
        _err(errors, "report", "expected an object")
        report_doc = {}
    stray = set(report_doc) - {"attribution", "pareto", "top"}
    if stray:
        _err(errors, "report", f"unknown options: {sorted(stray)}")
    attribution = report_doc.get("attribution", True)
    pareto = report_doc.get("pareto", True)
    top = report_doc.get("top", 10)
    if not isinstance(attribution, bool):
        _err(errors, "report.attribution", "expected a boolean")
        attribution = True
    if not isinstance(pareto, bool):
        _err(errors, "report.pareto", "expected a boolean")
        pareto = True
    if isinstance(top, bool) or not isinstance(top, int) or not (1 <= top <= 100):
        _err(errors, "report.top", "expected an integer in 1..100")
        top = 10

    if errors:
        raise RequestValidationError(errors)
    return {
        "tenant": tenant,
        "source": source,
        "engine": engine,
        "config": config,
        "inputs": {"profile": profile, "run": run},
        "report": {"attribution": attribution, "pareto": pareto, "top": top},
    }


def build_config(config_section: dict) -> CompilerConfig:
    """Lower a canonical config section onto a :class:`CompilerConfig`."""
    if "preset" in config_section:
        preset = config_section["preset"]
        factories = {
            "baseline": CompilerConfig.baseline,
            "bitspec-max": lambda: CompilerConfig.bitspec("max"),
            "bitspec-avg": lambda: CompilerConfig.bitspec("avg"),
            "bitspec-min": lambda: CompilerConfig.bitspec("min"),
            "nospec": CompilerConfig.nospec,
            "thumb": CompilerConfig.thumb,
            "dts": CompilerConfig.dts,
            "dts-bitspec-max": lambda: CompilerConfig.dts_bitspec("max"),
        }
        return factories[preset]()
    knobs = {k: v for k, v in config_section.items() if k in _KNOB_DEFAULTS}
    ops = knobs.get("squeeze_ops", "all")
    knobs["squeeze_ops"] = tuple(OP_SETS[ops]) if isinstance(ops, str) else tuple(ops)
    max_spec_regions = knobs.pop("max_spec_regions", 0)
    point = SpecPoint(**knobs)
    return replace(point.to_config(), max_spec_regions=max_spec_regions)


def request_key(canonical: dict) -> str:
    """Content address of one canonical request (also its job id).

    Covers everything that can change the response body: the source, the
    *resolved* config fingerprint (+ strictness), the input bindings, the
    report options, the report schema version and the energy-model stamp.
    Excludes the tenant — tenants submitting identical work share cache
    entries (the multi-tenant storage tier) — and the simulation engine:
    the in-order engines are bit-identical, and the ``ooo`` spelling only
    adds a committed-state cross-check without touching the body, so all
    four spellings must hash to the same key and share one cache entry.
    """
    from repro.bench.cache import energy_model_stamp

    config = build_config(canonical["config"])
    fingerprint = config.fingerprint()
    # squeeze_ops is consumed as a set (pipeline builds a frozenset), so
    # order must not split the content address: preset spellings list it
    # in pipeline order, knob spellings alphabetically
    fingerprint["squeeze_ops"] = sorted(set(fingerprint["squeeze_ops"]))
    basis = {
        "report_schema": REPORT_SCHEMA,
        "source": canonical["source"],
        "config": fingerprint,
        "strict": canonical["config"].get("strict", False),
        "inputs": canonical["inputs"],
        "report": canonical["report"],
        "energy": energy_model_stamp(),
    }
    blob = json.dumps(basis, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
