"""The asyncio multi-tenant compile-and-simulate job server.

One :class:`ReproServer` owns four cooperating pieces:

* an **HTTP front door** — a minimal HTTP/1.1 implementation over
  asyncio streams (stdlib only), one connection per request;
* a **quota gate** (:mod:`repro.serve.quota`) charging every submission
  against its tenant's token bucket at ingress;
* a **coalescing layer**: submissions content-address to a request key
  (:func:`repro.serve.schema.request_key`); a key already in flight
  joins the existing execution's future instead of enqueuing a twin, so
  N identical concurrent submissions cost exactly one compile+simulate
  (observable as ``coalesced`` in ``/v1/stats`` — the load test's gate);
* the **shared storage tier**: completed cacheable envelopes persist in
  a content-addressed :class:`repro.bench.cache.DiskCache`, so a warm
  replay (same process or a fresh server on the same directory) returns
  the byte-identical body without touching the worker pool.

With a ``journal_path`` configured, a fifth piece makes the async-job
lifecycle **durable**: every admission, start, and completion is
append-fsynced to a write-ahead journal (:mod:`repro.serve.journal`),
and :meth:`ReproServer.start` replays it — completed jobs keep
resolving with byte-identical bodies, incomplete ones are re-enqueued.

Backpressure is queue-depth based: when ``max_queue`` executions are in
flight, new *work* is rejected 503 (``queue-full``) — cache hits and
coalesced joins still succeed, because they add no load.  The
determinism contract (docs/serve.md) covers response **bodies**; the
``X-Repro-Source`` header (``executed`` / ``cache`` / ``coalesced``) and
``/v1/stats`` are deliberately outside it.
"""

from __future__ import annotations

import asyncio
import json
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.pool import WorkerPool
from repro.serve.quota import QuotaRegistry
from repro.serve.report import error_envelope
from repro.serve.schema import (
    REQUEST_SCHEMA,
    RequestValidationError,
    request_key,
    validate_request,
)

#: every error code the server can emit → its HTTP status.
#: docs/serve.md documents each one; tests/test_docs.py enforces that.
ERROR_CODES = {
    "invalid-json": 400,
    "invalid-request": 400,
    "not-found": 404,
    "job-not-found": 404,
    "method-not-allowed": 405,
    "job-pending": 409,
    "payload-too-large": 413,
    "compile-error": 422,
    "input-error": 422,
    "execution-error": 422,
    "quota-exceeded": 429,
    "internal-error": 500,
    "queue-full": 503,
    "execution-timeout": 504,
}

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_JOB_PATH = re.compile(r"^/v1/jobs/([0-9a-f]{64})(/report)?$")


def canonical_body(doc: dict) -> bytes:
    """The one true JSON encoding of a response body.

    Sorted keys, two-space indent, trailing newline, ASCII-only — every
    byte a pure function of the document, which is what makes the
    byte-identical replay gate meaningful.
    """
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode()


@dataclass
class ServeConfig:
    """Everything a :class:`ReproServer` can be told at construction."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the server
    #: worker processes; 0 = inline thread mode (tests / dev)
    workers: int = 1
    #: per-job SIGALRM timeout in seconds (process workers only)
    timeout: Optional[float] = 120.0
    #: content-addressed report cache directory (None disables persistence)
    cache_dir: Optional[str] = None
    #: in-flight execution cap — beyond it, new work gets 503 queue-full
    max_queue: int = 16
    #: per-tenant token-bucket size (<= 0 disables quotas)
    quota_capacity: float = 60.0
    #: per-tenant bucket refill rate, tokens/second
    quota_refill: float = 20.0
    #: largest accepted request body
    max_body_bytes: int = 1 << 20
    #: completed async-job records kept in memory (oldest evicted first)
    max_jobs: int = 1024
    #: write-ahead job journal file (None disables durability); see
    #: :mod:`repro.serve.journal`
    journal_path: Optional[str] = None


@dataclass
class ServeStats:
    """Monotonic counters behind ``GET /v1/stats``."""

    requests: int = 0
    reports: int = 0
    executed: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    validation_rejections: int = 0
    quota_rejections: int = 0
    backpressure_rejections: int = 0
    compile_rejections: int = 0
    #: completed jobs re-registered from the journal at startup
    recovered_jobs: int = 0
    #: incomplete jobs re-enqueued from the journal at startup
    requeued_jobs: int = 0
    per_tenant: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        data = dict(self.__dict__)
        data["per_tenant"] = dict(sorted(self.per_tenant.items()))
        return data


class ReproServer:
    """The service; ``await start()``, then ``await serve_forever()``."""

    def __init__(self, config: ServeConfig, *, clock=None) -> None:
        self.config = config
        self.stats = ServeStats()
        self.quotas = QuotaRegistry(
            config.quota_capacity, config.quota_refill, clock=clock
        )
        self.pool = WorkerPool(workers=config.workers, timeout=config.timeout)
        self.cache = None
        if config.cache_dir is not None:
            from repro.bench.cache import DiskCache

            self.cache = DiskCache(config.cache_dir)
        #: request key → asyncio.Future resolving to the envelope
        self._inflight: dict = {}
        #: async-job records: key → {"status", "tenant", "envelope"|None}
        self._jobs: OrderedDict = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self.journal = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self._recover_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    def _recover_journal(self) -> None:
        """Replay the write-ahead journal before the listener binds.

        Completed jobs are re-registered so their ids keep resolving
        (cacheable bodies replay byte-identically from the report cache;
        uncacheable envelopes ride in the journal itself).  Incomplete
        jobs — submitted or started, but never completed — are
        re-enqueued verbatim, bypassing the quota gate they already
        passed before the crash.
        """
        if self.config.journal_path is None:
            return
        from repro.serve.journal import JobJournal, scan

        recovered = scan(self.config.journal_path)
        self.journal = JobJournal(self.config.journal_path)
        self.journal.truncate_to_valid()
        for key, job in recovered.jobs.items():
            tenant = job["tenant"] or "anonymous"
            if job["state"] == "done":
                self._record_job(key, tenant)
                record = self._jobs[key]
                record["status"] = "done"
                if job["envelope"] is not None:
                    record["envelope"] = job["envelope"]
                self.stats.recovered_jobs += 1
            elif job["request"] is not None:
                self._requeue(key, job["request"], tenant)

    def _requeue(self, key: str, canonical: dict, tenant: str) -> None:
        if key in self._inflight:
            return
        if self.cache is not None and self.cache.contains(key):
            # crashed between the cache write and the complete record:
            # the answer survived; heal the journal instead of re-running
            self._record_job(key, tenant)
            self._jobs[key]["status"] = "done"
            self.journal.complete(key, cacheable=True)
            self.stats.recovered_jobs += 1
            return
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._record_job(key, tenant)
        loop.create_task(self._run_job(key, canonical, future))
        self.stats.requeued_jobs += 1

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self.pool.close()
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # -- the submission pipeline ----------------------------------------------

    def _error(self, code: str, message: str, **extra) -> dict:
        return error_envelope(code, ERROR_CODES[code], message, **extra)

    async def submit(self, doc, *, wait: bool = True) -> dict:
        """The full ingress pipeline; returns the response envelope.

        ``wait=False`` is the async-jobs path: the envelope is a 202 job
        ticket instead of the report, and the job id is the request key
        (submissions are idempotent — resubmitting returns the same id).
        """
        self.stats.requests += 1
        try:
            canonical = validate_request(doc)
        except RequestValidationError as exc:
            self.stats.validation_rejections += 1
            return self._error(
                "invalid-request",
                "request failed schema validation",
                details=exc.errors,
            )
        tenant = canonical["tenant"]
        self.stats.per_tenant[tenant] = self.stats.per_tenant.get(tenant, 0) + 1

        decision = self.quotas.charge(tenant)
        if not decision.allowed:
            self.stats.quota_rejections += 1
            return self._error(
                "quota-exceeded",
                f"tenant {tenant!r} is over its request quota",
                retry_after_seconds=decision.retry_after,
            )

        key = request_key(canonical)
        envelope, future, source = self._lookup_or_start(key, canonical)
        if not wait:
            return self._job_ticket(key, envelope, future, source)
        if future is not None:
            envelope = await asyncio.shield(future)
        if envelope["kind"] == "error" and envelope["status"] == 422:
            self.stats.compile_rejections += 1
        if envelope["kind"] == "report":
            self.stats.reports += 1
        return dict(envelope, source=source)

    def _lookup_or_start(self, key: str, canonical: dict):
        """(envelope | None, future | None, source) — the coalescing core.

        Exactly one of envelope/future is non-None: an envelope means the
        answer already exists (cache hit or an ingress rejection); a
        future means an execution is in flight — freshly started
        (``source == "executed"``) or joined (``"coalesced"``).
        """
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats.coalesced += 1
            return None, inflight, "coalesced"
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached, None, "cache"
        job = self._jobs.get(key)
        if job is not None and job.get("envelope") is not None:
            # uncacheable outcome (timeout/internal) remembered in memory
            self.stats.cache_hits += 1
            return job["envelope"], None, "cache"
        if len(self._inflight) >= self.config.max_queue:
            self.stats.backpressure_rejections += 1
            return (
                self._error(
                    "queue-full",
                    f"{len(self._inflight)} executions in flight "
                    f"(max_queue={self.config.max_queue}); retry later",
                    cacheable=False,
                ),
                None,
                "rejected",
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._record_job(key, canonical["tenant"])
        if self.journal is not None:
            # write-ahead: the admission is durable before it is scheduled
            self.journal.submit(key, canonical["tenant"], canonical)
        loop.create_task(self._run_job(key, canonical, future))
        return None, future, "executed"

    async def _run_job(self, key: str, canonical: dict, future) -> None:
        if self.journal is not None:
            self.journal.start(key)
        try:
            envelope = await self.pool.execute(canonical, key)
        except Exception as exc:  # worker infrastructure failure
            envelope = self._error(
                "internal-error", f"worker failure: {exc}", cacheable=False
            )
        self.stats.executed += 1
        cached = bool(envelope.get("cacheable")) and self.cache is not None
        if cached:
            self.cache.put(key, envelope)
        if self.journal is not None:
            # after the cache write: a crash in between re-enqueues the
            # job, which deterministically re-produces the same body
            self.journal.complete(key, cacheable=cached, envelope=envelope)
        job = self._jobs.get(key)
        if job is not None:
            job["status"] = "done"
            if not cached:
                job["envelope"] = envelope
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(envelope)

    def _record_job(self, key: str, tenant: str) -> None:
        if key not in self._jobs:
            while len(self._jobs) >= self.config.max_jobs:
                self._jobs.popitem(last=False)
            self._jobs[key] = {"status": "pending", "tenant": tenant, "envelope": None}

    def _job_ticket(self, key: str, envelope, future, source: str) -> dict:
        if (
            envelope is not None
            and envelope["kind"] == "error"
            and envelope["status"] != 422
        ):
            # ingress rejections (quota/backpressure) pass straight through
            return dict(envelope, source=source)
        status = "pending" if future is not None else "done"
        return {
            "status": 202,
            "kind": "job",
            "body": {"job_id": key, "status": status},
            "cacheable": False,
            "source": source,
        }

    def job_status(self, key: str) -> dict:
        if key in self._inflight:
            return {"status": 200, "kind": "job", "body": {"job_id": key, "status": "pending"}, "cacheable": False}
        job = self._jobs.get(key)
        known = job is not None or (
            self.cache is not None and self.cache.contains(key)
        )
        if not known:
            return self._error("job-not-found", f"no job {key}")
        return {
            "status": 200,
            "kind": "job",
            "body": {"job_id": key, "status": "done"},
            "cacheable": False,
        }

    def job_report(self, key: str) -> dict:
        if key in self._inflight:
            return self._error(
                "job-pending", f"job {key} is still executing", cacheable=False
            )
        job = self._jobs.get(key)
        if job is not None and job.get("envelope") is not None:
            return job["envelope"]
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        return self._error("job-not-found", f"no completed job {key}")

    # -- the HTTP front door --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            envelope, extra_headers = await self._handle_request(reader)
        except Exception as exc:
            envelope = self._error("internal-error", str(exc), cacheable=False)
            extra_headers = {}
        try:
            await self._write_response(writer, envelope, extra_headers)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return self._error("invalid-request", "empty request"), {}
        parts = request_line.split()
        if len(parts) < 2:
            return self._error("invalid-request", f"malformed request line: {request_line!r}"), {}
        method, path = parts[0].upper(), parts[1]

        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            return self._error(
                "payload-too-large",
                f"body of {length} bytes exceeds {self.config.max_body_bytes}",
            ), {}
        if length:
            body = await reader.readexactly(length)

        return await self._route(method, path, body)

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed(method, path), {}
            return {"status": 200, "kind": "health", "body": {"status": "ok"}, "cacheable": False}, {}
        if path == "/v1/stats":
            if method != "GET":
                return self._method_not_allowed(method, path), {}
            body_doc = self.stats.as_dict()
            body_doc["inflight"] = len(self._inflight)
            body_doc["quota_tokens"] = self.quotas.snapshot()
            if self.cache is not None:
                body_doc["cache"] = dict(self.cache.stats.__dict__)
            return {"status": 200, "kind": "stats", "body": body_doc, "cacheable": False}, {}
        if path == "/v1/schema":
            if method != "GET":
                return self._method_not_allowed(method, path), {}
            return {"status": 200, "kind": "schema", "body": REQUEST_SCHEMA, "cacheable": False}, {}
        if path == "/v1/reports" or path == "/v1/jobs":
            if method != "POST":
                return self._method_not_allowed(method, path), {}
            try:
                doc = json.loads(body.decode() or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                self.stats.requests += 1
                return self._error("invalid-json", f"body is not valid JSON: {exc}"), {}
            envelope = await self.submit(doc, wait=(path == "/v1/reports"))
            headers = {}
            if "source" in envelope:
                headers["X-Repro-Source"] = envelope["source"]
            if envelope["kind"] == "report":
                headers["X-Repro-Key"] = envelope["body"].get("key", "")
            return envelope, headers
        match = _JOB_PATH.match(path)
        if match:
            if method != "GET":
                return self._method_not_allowed(method, path), {}
            key, want_report = match.group(1), bool(match.group(2))
            return (self.job_report(key) if want_report else self.job_status(key)), {}
        return self._error("not-found", f"no such endpoint: {method} {path}"), {}

    def _method_not_allowed(self, method: str, path: str) -> dict:
        return self._error(
            "method-not-allowed", f"{method} is not supported on {path}",
            cacheable=False,
        )

    async def _write_response(self, writer, envelope: dict, extra_headers: dict) -> None:
        body = canonical_body(envelope["body"])
        status = envelope["status"]
        reason = _REASONS.get(status, "Unknown")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
            **extra_headers,
        }
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        ) + "\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
