"""Bounded worker pool: async facade over the bench multiprocessing stack.

Jobs execute in a ``multiprocessing.Pool`` of at most ``workers``
processes — the same fan-out substrate as :mod:`repro.bench.executor`,
and each job runs under the executor's re-entrancy-safe ``SIGALRM``
scope (:func:`repro.bench.executor._task_alarm`), so a pathological
program cannot wedge a worker forever.  A timeout or an unexpected
worker crash degrades to a structured, **uncacheable** error envelope
(504 / 500): transient outcomes must never poison the content-addressed
report cache.

``workers=0`` selects *inline* mode: jobs run on the event loop's
default thread-pool executor in-process.  That keeps tests and
single-user dev servers free of process-spawn latency; per-job alarms
are unavailable off the main thread, so inline jobs run untimed (the
trade-off is documented in docs/serve.md).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import traceback
from typing import Optional

from repro.bench.executor import _TaskTimeout, _task_alarm
from repro.serve.report import error_envelope, execute_request

_WORKER_TIMEOUT: Optional[float] = None


def _init_worker(timeout: Optional[float]) -> None:
    global _WORKER_TIMEOUT
    _WORKER_TIMEOUT = timeout


def _guarded_execute(canonical: dict, key: str, timeout: Optional[float]) -> dict:
    """Run one job; always returns an envelope, never raises."""
    try:
        with _task_alarm(timeout):
            return execute_request(canonical, key)
    except _TaskTimeout:
        return error_envelope(
            "execution-timeout",
            504,
            f"job exceeded the {timeout:.0f}s worker timeout",
            cacheable=False,
        )
    except Exception as exc:
        return error_envelope(
            "internal-error",
            500,
            "".join(traceback.format_exception_only(type(exc), exc)).strip(),
            cacheable=False,
        )


def _pool_execute(canonical: dict, key: str) -> dict:
    return _guarded_execute(canonical, key, _WORKER_TIMEOUT)


def _inline_execute(canonical: dict, key: str) -> dict:
    # thread context: SIGALRM is main-thread-only, so no alarm here
    return _guarded_execute(canonical, key, None)


class WorkerPool:
    """Async ``execute()`` over a bounded process pool (or inline threads)."""

    def __init__(self, workers: int = 1, timeout: Optional[float] = 120.0) -> None:
        self.workers = workers
        self.timeout = timeout
        self._pool = None
        if workers > 0:
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(timeout,),
            )

    async def execute(self, canonical: dict, key: str) -> dict:
        """Run one job off the event loop; resolves to its envelope."""
        loop = asyncio.get_running_loop()
        if self._pool is None:
            return await loop.run_in_executor(
                None, _inline_execute, canonical, key
            )
        future: asyncio.Future = loop.create_future()

        def _done(result):
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(result)
            )

        def _fail(exc):
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_exception(exc)
            )

        self._pool.apply_async(
            _pool_execute, (canonical, key), callback=_done, error_callback=_fail
        )
        return await future

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
