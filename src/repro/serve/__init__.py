"""repro.serve — async multi-tenant compile-and-simulate service.

A tenant POSTs MiniC source plus a schema-validated config document and
receives a deterministic report: energy, cycles, event counts,
observability attribution, and Pareto position against the DSE smoke
grid.  Everything is stdlib: the HTTP layer is asyncio streams, the
execution tier is the bench multiprocessing executor, and the shared
storage tier is the bench content-addressed disk cache.

The load-bearing invariant is the **determinism contract**: a response
body is a pure function of the request document.  Same request, warm or
cold, any engine, any tenant — byte-identical bytes.  ``python -m
repro.serve load-test`` drives the server with PR 1's fuzz generator and
fails if a single byte drifts or if N identical concurrent submissions
compile more than once (request coalescing).

Layering, bottom to top:

- :mod:`repro.serve.schema` — request validation + the content address
  (``request_key``) that doubles as the job id.
- :mod:`repro.serve.report` — pure request → report-envelope execution.
- :mod:`repro.serve.pool` — bounded worker pool (multiprocessing or
  inline threads) with per-job timeouts.
- :mod:`repro.serve.quota` — per-tenant token buckets.
- :mod:`repro.serve.server` — the asyncio HTTP front end: cache,
  coalescing, backpressure, jobs API.
- :mod:`repro.serve.client` / :mod:`repro.serve.loadtest` — stdlib
  client and the three-phase fuzz load test.

See docs/serve.md for the full API reference and error taxonomy.
"""

from repro.serve.report import execute_request
from repro.serve.schema import (
    REPORT_SCHEMA,
    REQUEST_SCHEMA,
    RequestValidationError,
    request_key,
    validate_request,
)
from repro.serve.server import ERROR_CODES, ReproServer, ServeConfig

__all__ = [
    "ERROR_CODES",
    "REPORT_SCHEMA",
    "REQUEST_SCHEMA",
    "ReproServer",
    "RequestValidationError",
    "ServeConfig",
    "execute_request",
    "request_key",
    "validate_request",
]
