"""The deterministic report builder — one request in, one document out.

:func:`execute_request` is the pure worker function behind the service:
it takes a canonical request (see :mod:`repro.serve.schema`) and returns
an *envelope* ``{"status", "kind", "body", "cacheable"}`` where ``body``
is either the report document or a structured error.  It never raises on
a bad program — frontend failures, input-binding mistakes and runtime
traps all become deterministic 422-class error bodies, built on the same
structured-diagnostic shape as :class:`repro.core.pipeline.CompileDiagnostic`
— so the server can cache rejections exactly like successes (same bad
request ⇒ byte-identical error, warm or cold).

Everything in a cacheable body is a pure function of the request and the
repo's code: event counts, energy (fixed float arithmetic), attribution
tallies, Pareto geometry.  No timestamps, no timing, no hostnames — those
live in response *headers* and the ``/v1/stats`` document, which the
determinism contract deliberately excludes (docs/serve.md).
"""

from __future__ import annotations

import hashlib

from repro.arch.energy import compute_energy
from repro.arch.machine import INORDER_ENGINES, MachineError, committed_view
from repro.core.pipeline import compile_binary
from repro.dse.space import PRESETS as DSE_PRESETS
from repro.obs.report import _region_labels
from repro.serve.schema import REPORT_SCHEMA, build_config

#: energy/cycle floats are rounded to this many decimals in the document
#: (display stability; the underlying counters are integer-exact)
_ROUND = 6

#: (label, SpecPoint) rows of the Pareto comparison grid — the DSE smoke
#: preset, so the service's Pareto frame matches ``dse sweep --preset smoke``
PARETO_GRID = tuple(
    (point.label(), point) for point in DSE_PRESETS["smoke"][0].points()
)


def _envelope(status: int, kind: str, body: dict, cacheable: bool = True) -> dict:
    return {"status": status, "kind": kind, "body": body, "cacheable": cacheable}


def error_envelope(
    code: str,
    status: int,
    message: str,
    *,
    details=None,
    diagnostics=None,
    cacheable: bool = True,
    **extra,
) -> dict:
    """A structured error envelope (docs/serve.md error taxonomy)."""
    error = {"code": code, "status": status, "message": message}
    if details is not None:
        error["details"] = details
    if diagnostics is not None:
        error["diagnostics"] = diagnostics
    error.update(extra)
    return _envelope(status, "error", {"error": error}, cacheable)


def _frontend_globals(source: str):
    """Parse just far enough to know the program's global bindings.

    Returns ``{name: capacity}`` or raises the frontend's own error.
    """
    from repro.frontend.parser import parse

    program = parse(source)
    return {g.name: g.array_size for g in program.globals}


def _check_inputs(bindings: dict, capacities: dict, path: str) -> list:
    problems = []
    for name in sorted(bindings):
        if name not in capacities:
            problems.append(
                {"path": f"{path}.{name}", "message": "no such global"}
            )
            continue
        value = bindings[name]
        count = len(value) if isinstance(value, list) else 1
        if count > capacities[name]:
            problems.append(
                {
                    "path": f"{path}.{name}",
                    "message": f"{count} values exceed capacity {capacities[name]}",
                }
            )
    return problems


def _compile_error(stage: str, exc: Exception) -> dict:
    return error_envelope(
        "compile-error",
        422,
        f"compilation failed in {stage}",
        diagnostics=[
            {
                "function": "*",
                "stage": stage,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        ],
    )


def _sim_section(sim) -> dict:
    energy = sim.energy()
    section = {
        "output": list(sim.output),
        "return_value": sim.return_value,
        "instructions": sim.instructions,
        "cycles": sim.cycles,
        "misspeculations": sim.misspeculations,
        "misspec_rate": round(
            sim.misspeculations / sim.instructions if sim.instructions else 0.0,
            9,
        ),
        "branches": sim.branches,
        "taken_branches": sim.taken_branches,
        "loads": sim.loads,
        "stores": sim.stores,
        "spill_loads": sim.spill_loads,
        "spill_stores": sim.spill_stores,
        "copies": sim.copies,
        "class_counts": dict(sim.class_counts),
        "energy_pj": {
            k: round(v, _ROUND) for k, v in energy.as_dict().items()
        },
        "energy_total_pj": round(energy.total, _ROUND),
    }
    dts_energy = getattr(sim, "dts_energy", None)
    if dts_energy is not None:
        section["dts_energy_total_pj"] = round(dts_energy.total, _ROUND)
    return section


def _tally_dict(tally, slice_width: int) -> dict:
    out = {
        "instructions": tally.instructions,
        "cycles": tally.cycles,
        "misspeculations": tally.misspeculations,
        "energy_pj": round(
            compute_energy(tally.counters, slice_bits=slice_width).total, _ROUND
        ),
    }
    if tally.handler_entries:
        out["handler_entries"] = tally.handler_entries
    return out


def _attribution_section(binary, sim, top: int):
    """(section, violations) — per-variable/region/world/handler tallies."""
    from repro.obs.attribution import attribute, check_conservation

    attr = attribute(binary.linked, sim.obs)
    violations = check_conservation(attr, sim)
    width = sim.slice_width

    def _table(groups, key_str=str) -> dict:
        return {key_str(k): _tally_dict(t, width) for k, t in groups.items()}

    by_var = attr.by_variable()
    ranked = sorted(
        by_var.items(),
        key=lambda item: (
            -compute_energy(item[1].counters, slice_bits=width).total,
            item[0],
        ),
    )
    section = {
        "by_variable": {
            (name or "(unattributed)"): _tally_dict(t, width)
            for name, t in ranked[:top]
        },
        "variables_total": len(by_var),
        "by_world": _table(attr.by_world()),
        # raw region ids come from a process-global counter; renumber per
        # function (like repro.obs.report does) so the body stays a pure
        # function of the request no matter what compiled earlier
        "by_region": _table(
            attr.by_region(),
            key_str=lambda k, _labels=_region_labels(attr.by_region()): (
                _labels.get(k, f"{k[0]}#-")
            ),
        ),
        "by_handler": _table(attr.by_handler()),
        "conservation": "ok" if not violations else violations,
    }
    return section, violations


def _pareto_section(canonical: dict, requested_row: dict) -> dict:
    """Run the source over the DSE smoke grid; place the request on it.

    Objectives mirror :data:`repro.dse.analysis.OBJECTIVES` — energy,
    cycles and misspec rate, all minimized.  Grid cells that fail to
    compile or trap are reported ``status: "failed"`` and excluded from
    the domination geometry (deterministically — the same cell fails the
    same way every time).
    """
    source = canonical["source"]
    profile = canonical["inputs"]["profile"]
    run_inputs = canonical["inputs"]["run"]
    rows = []
    for label, point in PARETO_GRID:
        config = point.to_config()
        try:
            binary = compile_binary(
                source, config, profile_inputs=profile, name="request", strict=False
            )
            sim = binary.run(dict(run_inputs))
        except Exception as exc:
            rows.append(
                {
                    "config": label,
                    "status": "failed",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        rows.append(
            {
                "config": label,
                "status": "ok",
                "energy_pj": round(sim.energy().total, _ROUND),
                "cycles": sim.cycles,
                "misspec_rate": round(
                    sim.misspeculations / sim.instructions
                    if sim.instructions
                    else 0.0,
                    9,
                ),
            }
        )

    def _vec(row):
        return (row["energy_pj"], row["cycles"], row["misspec_rate"])

    def _dominates(a, b):
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    pool = [r for r in rows if r["status"] == "ok"] + [requested_row]
    front = [
        r["config"]
        for r in pool
        if not any(
            _dominates(_vec(other), _vec(r)) for other in pool if other is not r
        )
    ]
    dominated_by = sorted(
        r["config"]
        for r in pool
        if r is not requested_row and _dominates(_vec(r), _vec(requested_row))
    )
    return {
        "grid": rows,
        "requested": requested_row,
        "position": {
            "on_front": requested_row["config"] in front,
            "dominated_by": dominated_by,
            "front": sorted(front),
        },
    }


def execute_request(canonical: dict, key: str) -> dict:
    """Compile + simulate one canonical request into a report envelope.

    Deterministic by construction; see the module docstring.  ``key`` is
    the request's content address (:func:`repro.serve.schema.request_key`)
    and is echoed in the report so a client can correlate async jobs.
    """
    source = canonical["source"]
    config_section = canonical["config"]
    strict = config_section.get("strict", False)
    opts = canonical["report"]
    config = build_config(config_section)
    # the engine spelling never reaches the body: report cycles/energy are
    # defined under the in-order timing model, so 'ooo' runs the report sim
    # on the default engine and adds a committed-state cross-check below
    requested_engine = canonical.get("engine")
    sim_engine = requested_engine if requested_engine in INORDER_ENGINES else None
    if sim_engine == "legacy" and opts["attribution"]:
        # same rule as resolve_engine's env defaulting: the legacy
        # interpreter cannot produce a PcSample, and the engines are
        # bit-identical anyway
        sim_engine = "fast"

    # 1. frontend pre-pass: surface parse errors and bad input bindings
    # as their own error classes before burning a full compile
    try:
        capacities = _frontend_globals(source)
    except Exception as exc:
        return _compile_error("frontend", exc)
    problems = _check_inputs(
        canonical["inputs"]["profile"], capacities, "inputs.profile"
    ) + _check_inputs(canonical["inputs"]["run"], capacities, "inputs.run")
    if problems:
        return error_envelope(
            "input-error", 422, "input bindings do not fit the program's globals",
            details=problems,
        )

    # 2. compile (graceful degradation unless the request said strict)
    try:
        binary = compile_binary(
            source,
            config,
            profile_inputs=canonical["inputs"]["profile"],
            name="request",
            strict=strict,
        )
    except Exception as exc:
        return _compile_error("pipeline", exc)

    # 3. simulate (obs-enabled when the report wants attribution)
    try:
        sim = binary.run(
            dict(canonical["inputs"]["run"]),
            obs=opts["attribution"],
            engine=sim_engine,
        )
    except MachineError as exc:
        return error_envelope(
            "execution-error", 422, "the program trapped during simulation",
            diagnostics=[
                {
                    "function": "*",
                    "stage": "simulate",
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            ],
        )

    # 3b. engine='ooo': live four-engine contract check — the out-of-order
    # engine must commit the same architectural state before the (engine-
    # independent) body goes out
    if requested_engine == "ooo":
        try:
            ooo_sim = binary.run(dict(canonical["inputs"]["run"]), engine="ooo")
            diverged = sorted(
                name
                for name, value in committed_view(sim).items()
                if committed_view(ooo_sim)[name] != value
            )
        except MachineError as exc:
            diverged = [f"trap: {type(exc).__name__}: {exc}"]
        if diverged:
            return error_envelope(
                "internal-error",
                500,
                "ooo engine diverged from the committed-state contract",
                details=[
                    {"path": "engine", "message": str(d)} for d in diverged
                ],
                cacheable=False,
            )

    report = {
        "schema": REPORT_SCHEMA,
        "key": key,
        "request": {
            "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
            "config": config.fingerprint(),
            "config_name": config.name,
            "strict": strict,
            "inputs": canonical["inputs"],
            "report": opts,
        },
        "compile": {
            "isa": config.isa,
            "code_size": binary.code_size,
            "delta": binary.linked.delta,
            "binary_fingerprint": binary.fingerprint(),
            "diagnostics": [d.to_dict() for d in binary.diagnostics],
            "fallback_functions": sorted(binary.linked.fallback_functions),
            "pass_stats": binary.pass_stats,
        },
        "result": _sim_section(sim),
    }

    if opts["attribution"]:
        section, violations = _attribution_section(binary, sim, opts["top"])
        if violations:
            # conservation is an internal invariant, never the client's
            # fault; don't cache a body we consider broken
            return error_envelope(
                "internal-error",
                500,
                "attribution conservation violated",
                details=[{"path": "attribution", "message": str(v)} for v in violations],
                cacheable=False,
            )
        report["attribution"] = section

    if opts["pareto"]:
        requested_row = {
            "config": "requested",
            "status": "ok",
            "energy_pj": report["result"]["energy_total_pj"],
            "cycles": report["result"]["cycles"],
            "misspec_rate": report["result"]["misspec_rate"],
        }
        report["pareto"] = _pareto_section(canonical, requested_row)

    return _envelope(200, "report", report)
